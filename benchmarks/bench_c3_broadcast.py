"""C3 — §4.3 ¶2: the broadcast max-rule bound IS achievable.

Shape: on every platform, the optimal fractional packing of spanning
arborescences meets the LP bound *exactly* — the [5] theorem the paper
contrasts with the multicast counterexample.  The packed schedule is also
materialised and validated.
"""

from repro import generators, packing_to_schedule, solve_broadcast
from repro.analysis.reporting import render_table

from conftest import report

PLATFORMS = [
    ("chain", generators.chain(4, link_c=1), "N0"),
    ("fig2", generators.paper_figure2_multicast(), "P0"),
    ("star", generators.star(3, worker_w=[1, 1, 1], link_c=[1, 2, 2]), "M"),
    ("grid2x3", generators.grid2d(2, 3, seed=1), "G0_0"),
    ("random6", generators.random_connected(6, seed=17,
                                            extra_edge_prob=0.15), "R0"),
    ("tree", generators.binary_tree(2, seed=9), "T0"),
]


def run_broadcast_suite():
    rows = []
    for name, platform, source in PLATFORMS:
        sol = solve_broadcast(platform, source)
        sched = packing_to_schedule(platform, sol.packing, source)
        rows.append([
            name,
            sol.lp_bound,
            sol.achieved,
            "yes" if sol.optimal else "NO",
            len(sol.packing),
            sched.period,
        ])
    return rows


def test_c3_broadcast_achievability(benchmark):
    rows = benchmark.pedantic(run_broadcast_suite, rounds=1, iterations=1)
    for name, bound, achieved, optimal, ntrees, period in rows:
        assert optimal == "yes", f"{name}: packing missed the LP bound"
        assert achieved == bound
    report(
        "C3: broadcast — LP bound vs achieved tree packing",
        render_table(
            ["platform", "LP bound", "packing", "bound met?", "#trees",
             "schedule period"],
            rows,
        ),
    )
