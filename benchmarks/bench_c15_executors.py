"""C15 — executor consistency: fluid rates vs whole-task-file events.

The paper argues at two granularities at once: rational *rates* in the LP,
integral *task files* in the schedule.  Our two executors embody the two
views; this benchmark runs both on the same schedules and asserts that

* both settle on the *exact* same steady-state per-period count
  (``T * ntask``), and
* their totals differ only by a bounded transient (the executors allocate
  scarce priming-phase buffers differently — proportionally vs greedily —
  which cannot survive past the priming horizon).
"""

from fractions import Fraction

from repro.core.master_slave import solve_master_slave
from repro.platform import generators
from repro.schedule.reconstruction import reconstruct_schedule
from repro.simulator.event_executor import EventExecutor
from repro.simulator.periodic_runner import PeriodicRunner
from repro.analysis.reporting import render_table

from conftest import report

PLATFORMS = [
    ("star", generators.star(4, master_w=2, worker_w=[1, 2, 3, 4],
                             link_c=[1, 1, 2, 3]), "M"),
    ("fig1", generators.paper_figure1(), "P1"),
    ("grid", generators.grid2d(3, 3, seed=3), "G0_0"),
    ("random", generators.random_connected(10, seed=11,
                                           forwarder_prob=0.2), "R0"),
]

PERIODS = 15


def run_both_executors():
    rows = []
    for name, platform, master in PLATFORMS:
        sched = reconstruct_schedule(solve_master_slave(platform, master))
        fluid = PeriodicRunner(sched).run(PERIODS)
        event = EventExecutor(sched).run(PERIODS)
        event.trace.validate("one-port")
        target = Fraction(sched.tasks_per_period())
        prime = platform.num_nodes  # generous priming horizon
        steady_agree = all(
            Fraction(e) == f == target
            for e, f in zip(event.completed_per_period[prime:],
                            fluid.completed_per_period[prime:])
        )
        transient_gap = abs(
            Fraction(event.total_completed) - fluid.total_completed
        )
        rows.append([
            name,
            float(fluid.total_completed),
            event.total_completed,
            len(event.messages),
            "yes" if steady_agree else "NO",
            float(transient_gap / target),  # gap in periods-worth of work
        ])
    return rows


def test_c15_executor_consistency(benchmark):
    rows = benchmark.pedantic(run_both_executors, rounds=1, iterations=1)
    for name, fluid_total, event_total, n_messages, agree, gap in rows:
        assert agree == "yes", name
        # the executors' totals differ by less than two periods of work
        assert gap < 2, name
    report(
        "C15: fluid vs whole-task execution over "
        f"{PERIODS} periods (identical steady state; transient gap in "
        "periods-worth of work)",
        render_table(
            ["platform", "fluid total", "event total", "#messages moved",
             "steady agree?", "transient gap"],
            rows,
        ),
    )
