"""C11 — §5.1: communication-model ablation.

Shape: send-or-receive <= one-port <= multiport(2) <= multiport(4) on
every platform; relay-heavy platforms suffer most under send-or-receive
(forwarders time-share their single port); extra ports only help while
links are not individually saturated.
"""

from fractions import Fraction

from repro._rational import INF
from repro import (
    generators,
    solve_master_slave,
    solve_master_slave_multiport,
    solve_master_slave_send_or_receive,
)
from repro.platform.graph import Platform
from repro.analysis.reporting import render_table

from conftest import report


def relay_chain():
    g = Platform("relay-chain")
    g.add_node("N0", 1)
    g.add_node("N1", INF)
    g.add_node("N2", 1)
    g.add_edge("N0", "N1", 1)
    g.add_edge("N1", "N2", 1)
    return g


PLATFORMS = [
    ("star", generators.star(3, master_w=1, worker_w=[1, 1, 1],
                             link_c=[1, 1, 1]), "M"),
    ("relay-chain", relay_chain(), "N0"),
    ("grid", generators.grid2d(2, 3, seed=1), "G0_0"),
    ("random", generators.random_connected(7, seed=13), "R0"),
]


def run_port_model_suite():
    rows = []
    for name, platform, master in PLATFORMS:
        sor = solve_master_slave_send_or_receive(platform, master).throughput
        one = solve_master_slave(platform, master).throughput
        mp2 = solve_master_slave_multiport(platform, master, 2).throughput
        mp4 = solve_master_slave_multiport(platform, master, 4).throughput
        rows.append([name, sor, one, mp2, mp4])
    return rows


def test_c11_port_models(benchmark):
    rows = benchmark.pedantic(run_port_model_suite, rounds=2, iterations=1)
    for name, sor, one, mp2, mp4 in rows:
        assert sor <= one <= mp2 <= mp4, name
    by_name = {r[0]: r for r in rows}
    # the forwarder chain: sor strictly hurts (1.5 vs 2)
    assert by_name["relay-chain"][1] < by_name["relay-chain"][2]
    # the homogeneous star: multiport strictly helps at the master
    assert by_name["star"][3] > by_name["star"][2]
    report(
        "C11: throughput under the section 5.1 communication models",
        render_table(
            ["platform", "send-or-receive", "one-port (paper)",
             "multiport(2)", "multiport(4)"],
            rows,
        ),
    )
