"""S2 — sharded broker: cache-capacity scaling across 1/2/4/8 shards.

The scenario is the ROADMAP's "platform corpus too large for one host":
a Zipf-distributed request stream (the bench_s1 mix as the hot head,
weight-scaled platform variants as the long tail) whose working set
exceeds one shard's ``SolutionCache`` budget.  Per-shard resources are
held fixed — every shard brings its own cache, incremental solver and
(in process mode) its own CPU — and the shard count scales:

* **1 shard** (the unsharded baseline): the corpus thrashes the cache,
  a large fraction of requests re-solve cold;
* **N shards**: consistent-hash routing splits the corpus, aggregate
  capacity grows to ``N x cache_size``, misses collapse.

Measured per (shard count, shard mode): sustained req/s over the
steady-state stream (after an untimed priming pass), the stream hit
rate, and exactness — every result is asserted ``Fraction``-identical
to an unsharded reference broker, in thread *and* process mode (the
process mode round-trips each request through the PR 2 wire codec).

Thread shards share the GIL, so on a single core both modes scale
through capacity alone; process shards additionally parallelise the
CPU-bound LP solves across cores when the host has them, at the price
of one IPC round-trip per request (visible in the hit-dominated tail).

Asserted shape: >= 2x mixed-workload req/s at 4 shards vs the 1-shard
baseline, in both shard modes.  Emits ``BENCH_sharding.json`` at the
repo root.  Run standalone::

    python benchmarks/bench_s2_sharding.py [--smoke] [--out FILE]

or through pytest (``pytest benchmarks/bench_s2_sharding.py -s``).
"""

from __future__ import annotations

import argparse
import json
import random
import time
from fractions import Fraction
from pathlib import Path

from repro.service import Broker, ShardedBroker, SolveRequest

from bench_s1_service import _zipf_request_pool

ZIPF_EXPONENT = 0.75  # flat enough that the tail matters


def _variant(request: SolveRequest, index: int) -> SolveRequest:
    """A weight-scaled (topology-preserving) variant with a fresh
    fingerprint; ``index`` makes each variant's scaling distinct."""
    compute = Fraction(index + 2, index + 3)
    comm = Fraction(index + 3, index + 4)
    return SolveRequest(
        problem=request.problem,
        platform=request.platform.scale(compute=compute, comm=comm),
        source=request.source,
        targets=request.targets,
        dag=request.dag,
        options=request.option_dict(),
    )


def build_corpus(size: int) -> list:
    """The bench_s1 Zipf pool as the hot head + weight variants as the
    long tail (cheap LP families only, so cold cost stays comparable)."""
    corpus = list(_zipf_request_pool())
    bases = [r for r in corpus
             if r.problem == "master-slave" and len(r.platform.nodes()) <= 8]
    index = 0
    while len(corpus) < size:
        corpus.append(_variant(bases[index % len(bases)], index))
        index += 1
    return corpus[:size]


def zipf_sequence(corpus: list, n_requests: int, seed: int = 1) -> list:
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** ZIPF_EXPONENT
               for rank in range(len(corpus))]
    return rng.choices(corpus, weights=weights, k=n_requests)


def reference_throughputs(corpus: list) -> dict:
    """fingerprint -> exact throughput from one big unsharded broker."""
    from repro.service import SolutionCache

    with Broker(executor="sync",
                cache=SolutionCache(max_size=2 * len(corpus))) as broker:
        return {req.fingerprint(): broker.solve(req).throughput
                for req in corpus}


def run_config(
    mode: str,
    shards: int,
    corpus: list,
    sequence: list,
    cache_size: int,
    reference: dict,
) -> dict:
    with ShardedBroker(shards=shards, shard_mode=mode,
                       cache_size=cache_size, workers=1) as sharded:
        for request in corpus:  # untimed priming pass
            sharded.solve(request)
        before = sharded.snapshot()["cache"]
        start = time.perf_counter()
        results = [sharded.solve(request) for request in sequence]
        elapsed = time.perf_counter() - start
        after = sharded.snapshot()["cache"]
    for result in results:  # bit-identical to the unsharded broker
        expected = reference[result.fingerprint]
        assert result.throughput == expected, (
            f"{mode}x{shards}: {result.fingerprint[:12]} returned "
            f"{result.throughput}, reference {expected}"
        )
    hits = after["hits"] - before["hits"]
    misses = after["misses"] - before["misses"]
    return {
        "mode": mode,
        "shards": shards,
        "aggregate_cache_entries": shards * cache_size,
        "elapsed_seconds": elapsed,
        "requests_per_second": len(sequence) / elapsed,
        "stream_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        "stream_misses": misses,
    }


# ----------------------------------------------------------------------
def run(smoke: bool = False) -> dict:
    # the corpus fits the aggregate cache at 4 shards (4 x 32 = 128) but
    # thrashes a single shard's 32 entries — the "corpus too large for
    # one host" scenario the sharding exists for
    corpus_size = 40 if smoke else 128
    n_requests = 120 if smoke else 600
    cache_size = 12 if smoke else 32
    shard_counts = [1, 2] if smoke else [1, 2, 4, 8]

    corpus = build_corpus(corpus_size)
    sequence = zipf_sequence(corpus, n_requests)
    reference = reference_throughputs(corpus)

    configs = []
    for mode in ("thread", "process"):
        for shards in shard_counts:
            configs.append(run_config(mode, shards, corpus, sequence,
                                      cache_size, reference))

    baseline = next(c for c in configs
                    if c["mode"] == "thread" and c["shards"] == 1)
    for config in configs:
        config["speedup_vs_1shard"] = (
            config["requests_per_second"] / baseline["requests_per_second"]
        )

    report = {
        "benchmark": "S2 sharding",
        "quick": smoke,
        "corpus_size": corpus_size,
        "requests": n_requests,
        "per_shard_cache_entries": cache_size,
        "zipf_exponent": ZIPF_EXPONENT,
        "baseline_rps": baseline["requests_per_second"],
        "configs": configs,
        "exactness": "all results Fraction-identical to unsharded broker",
    }
    if not smoke:
        speedups = {
            c["mode"]: c["speedup_vs_1shard"]
            for c in configs if c["shards"] == 4
        }
        report["speedup_at_4_shards"] = speedups
        for mode, speedup in speedups.items():
            assert speedup >= 2.0, (
                f"{mode} shards: only {speedup:.2f}x at 4 shards vs the "
                f"1-shard baseline (need >= 2x)"
            )
    return report


def test_s2_sharding(capsys):
    """Pytest entry point (smoke mode; run the script for full numbers)."""
    report = run(smoke=True)
    with capsys.disabled():
        print("\n==== S2: sharded broker ====")
        print(json.dumps(report, indent=2))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small corpus, 1/2 shards, no scaling "
                             "assertion (CI smoke run)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: repo-root "
                             "BENCH_sharding.json)")
    args = parser.parse_args(argv)
    report = run(smoke=args.smoke)
    out = Path(args.out) if args.out else (
        Path(__file__).resolve().parent.parent / "BENCH_sharding.json"
    )
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
