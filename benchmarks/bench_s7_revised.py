"""S7 — revised simplex: sparse LU + eta-file updates vs the dense tableau.

Measures, on the paper's Figure 1 platform, heterogeneous stars, depth-3
trees and large random connected platforms:

* cold solve cost — the same two-phase pivot sequence priced through
  FTRAN/BTRAN on a Markowitz-ordered sparse LU (revised engine) vs the
  O(m*n)-per-pivot dense tableau, asserted ``Fraction``-identical in
  objective *and* per-variable values (both engines replay the same
  pivots, so cold solves land on the same vertex);
* warm re-solve factorisation economy — weight-drift mutations through
  :class:`IncrementalSolver`: one LU refactorisation per basis restart
  (plus rare eta-overflow refactorisations), asserted far below the
  pivot count a cold solve would pay, with zero basis fallbacks;
* the factorisation counters themselves (eta length, FTRAN/BTRAN ops,
  LU fill) as exposed through ``WarmSolveStats``.

Emits ``BENCH_revised.json`` at the repo root.  Run standalone::

    python benchmarks/bench_s7_revised.py [--smoke] [--out FILE]

Asserted shape: every engine comparison is Fraction-identical with an
identical pivot count; the revised engine's cold solves are >= 1.5x
faster than the tableau in aggregate on the large-platform suite; warm
refactorisations stay at ~1 per re-solve and well under the cold pivot
bill; ``basis_fallbacks`` stays 0 on the warm workload.
"""

from __future__ import annotations

import argparse
import json
import random
import time
from fractions import Fraction
from pathlib import Path

from repro import generators
from repro.core.master_slave import build_ssms_lp
from repro.lp import SimplexInstance
from repro.platform.graph import Platform
from repro.service import EndpointMetrics, IncrementalSolver
from repro._rational import INF, is_infinite


def _percentile(samples, p):
    em = EndpointMetrics("bench", reservoir_size=max(len(samples), 1))
    for s in samples:
        em.observe(s)
    return em.percentile(p)


def _drift(platform: Platform, rng: random.Random) -> Platform:
    """A weight-drift mutation: every node/edge weight moves by an
    independent rational factor in [3/4, 5/4] — same topology, moved
    weights, i.e. the regime where the retained basis stays optimal or
    nearly so."""
    out = Platform(platform.name)
    for spec in platform._nodes.values():  # noqa: SLF001 — bench helper
        if is_infinite(spec.w):
            out.add_node(spec.name, INF)
        else:
            out.add_node(spec.name,
                         spec.w * Fraction(rng.randint(12, 20), 16))
    for spec in platform.edges():
        out.add_edge(spec.src, spec.dst,
                     spec.c * Fraction(rng.randint(12, 20), 16))
    return out


def _timed_cold(lp, engine: str, reps: int):
    """Best-of-``reps`` cold solve latency plus the solution and the
    instance of the last rep (for pivot/factor counters)."""
    best = None
    for _ in range(reps):
        inst = SimplexInstance(lp, engine=engine)
        start = time.perf_counter()
        sol = inst.solve()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, sol, inst


# ----------------------------------------------------------------------
def bench_cold_engines(smoke: bool) -> dict:
    """Cold solves on both engines: exact parity, latency, speedup."""
    reps = 2 if smoke else 3
    small = {
        "paper_figure1": (generators.paper_figure1(), "P1"),
        "star8": (generators.star(8, worker_w=list(range(1, 9)),
                                  link_c=[1] * 8), "M"),
        "binary_tree3": (generators.binary_tree(3, seed=1), "T0"),
    }
    sizes = (20, 30) if smoke else (20, 40, 60)
    large = {
        f"random_connected{n}": (generators.random_connected(n, seed=7),
                                 f"R0_{n}")
        for n in sizes
    }
    out = {}
    large_revised = large_tableau = 0.0
    for name, (platform, _tag) in {**small, **large}.items():
        master = sorted(platform._nodes)[0]  # noqa: SLF001 — bench helper
        lp, _handles = build_ssms_lp(platform, master)
        rev_s, rev_sol, rev_inst = _timed_cold(lp, "revised", reps)
        tab_s, tab_sol, tab_inst = _timed_cold(lp, "tableau", reps)
        # both engines follow the same pivot rules over exact Fractions:
        # identical objective, identical vertex, identical pivot count
        assert rev_sol.objective == tab_sol.objective, name
        assert rev_sol.values == tab_sol.values, name
        assert rev_inst.last_pivots == tab_inst.last_pivots, (
            f"{name}: pivot sequences diverged "
            f"({rev_inst.last_pivots} vs {tab_inst.last_pivots})"
        )
        fs = rev_inst.last_factor_stats
        out[name] = {
            "rows": len(lp.constraints),
            "columns": len(lp.variables),
            "pivots": rev_inst.last_pivots,
            "revised_ms": rev_s * 1e3,
            "tableau_ms": tab_s * 1e3,
            "speedup": tab_s / rev_s,
            "refactorisations": fs["refactorisations"],
            "eta_len_max": fs["eta_len_max"],
            "ftran_ops": fs["ftran_ops"],
            "btran_ops": fs["btran_ops"],
            "lu_fill_ratio": (fs["lu_nnz"] / fs["lu_basis_nnz"]
                              if fs["lu_basis_nnz"] else 0.0),
        }
        if name in large:
            large_revised += rev_s
            large_tableau += tab_s
    speedup = large_tableau / large_revised
    # the acceptance bar: the eta-file engine must beat the dense
    # tableau by >= 1.5x in aggregate on the large-platform suite
    assert speedup >= 1.5, (
        f"large-platform cold speedup {speedup:.2f}x below the 1.5x bar "
        f"(revised {large_revised * 1e3:.1f} ms, "
        f"tableau {large_tableau * 1e3:.1f} ms)"
    )
    out["large_suite"] = {
        "platforms": sorted(large),
        "revised_total_ms": large_revised * 1e3,
        "tableau_total_ms": large_tableau * 1e3,
        "speedup": speedup,
    }
    return out


# ----------------------------------------------------------------------
def bench_warm_refactorisation(smoke: bool) -> dict:
    """Warm re-solves: refactorisation economy vs the cold pivot bill."""
    rounds = 6 if smoke else 30
    rng = random.Random(20040427)
    platforms = {
        "paper_figure1": generators.paper_figure1(),
        "binary_tree3": generators.binary_tree(3, seed=1),
        "star8": generators.star(8, worker_w=list(range(1, 9)),
                                 link_c=[1] * 8),
    }
    out = {}
    for name, base in platforms.items():
        master = sorted(base._nodes)[0]  # noqa: SLF001 — bench helper
        inc = IncrementalSolver()
        inc.solve_master_slave(base, master)  # prime the hot model
        primed = inc.stats.refactorisations
        warm_lat = []
        cold_pivots = 0
        for _ in range(rounds):
            mutated = _drift(base, rng)
            start = time.perf_counter()
            warm = inc.solve_master_slave(mutated, master)
            warm_lat.append(time.perf_counter() - start)
            # the cold bill this mutation would have paid, for the
            # refactorisations-vs-pivots comparison (and exactness)
            lp, _handles = build_ssms_lp(mutated, master)
            cold_sol = SimplexInstance(lp).solve()
            cold_pivots += cold_sol.pivots
            assert warm.throughput == cold_sol.objective, name
        stats = inc.stats
        assert stats.warm_solves == rounds and stats.basis_fallbacks == 0, (
            f"{name}: warm path not taken on every mutation: "
            f"{stats.as_dict()}"
        )
        warm_refactors = stats.refactorisations - primed
        # one LU per basis restart plus the odd eta-overflow refactor —
        # and far below what the cold pivot sequences would have cost
        assert warm_refactors <= 2 * rounds, (
            f"{name}: {warm_refactors} refactorisations for {rounds} "
            f"warm re-solves"
        )
        assert warm_refactors * 4 <= cold_pivots, (
            f"{name}: refactorisations ({warm_refactors}) not well under "
            f"the cold pivot bill ({cold_pivots})"
        )
        out[name] = {
            "mutations": rounds,
            "warm_p50_ms": _percentile(warm_lat, 50) * 1e3,
            "warm_pivots": stats.warm_pivots,
            "cold_pivots_equivalent": cold_pivots,
            "refactorisations": warm_refactors,
            "refactorisations_per_resolve": warm_refactors / rounds,
            "eta_len_max": stats.eta_len_max,
            "ftran_ops": stats.ftran_ops,
            "btran_ops": stats.btran_ops,
            "lu_fill_ratio": (stats.lu_fill_nnz / stats.lu_basis_nnz
                              if stats.lu_basis_nnz else 0.0),
            "basis_fallbacks": stats.basis_fallbacks,
        }
    return out


# ----------------------------------------------------------------------
def run(smoke: bool = False) -> dict:
    return {
        "benchmark": "S7 revised simplex",
        "smoke": smoke,
        "cold_engines": bench_cold_engines(smoke),
        "warm_refactorisation": bench_warm_refactorisation(smoke),
    }


def test_s7_revised(capsys):
    """Pytest entry point (smoke mode; run the script for full numbers)."""
    report = run(smoke=True)
    with capsys.disabled():
        print("\n==== S7: revised simplex ====")
        print(json.dumps(report, indent=2))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="smaller rounds (CI smoke run)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: repo-root "
                             "BENCH_revised.json)")
    args = parser.parse_args(argv)
    report = run(smoke=args.smoke)
    out = Path(args.out) if args.out else (
        Path(__file__).resolve().parent.parent / "BENCH_revised.json"
    )
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
