"""C4 — §4.1: the weighted edge colouring yields a *compact* schedule.

Shape: the number of matchings stays O(|E| + p) even as the period T
explodes (here driven to ~10^12 by adversarial rational rates), i.e. the
schedule description is polynomial in the platform size although log T is
what's polynomial in the problem size.
"""

from fractions import Fraction
import random

from repro.schedule.edge_coloring import verify_coloring, weighted_edge_coloring
from repro.analysis.reporting import render_table

from conftest import report


def adversarial_instance(n, seed):
    """Random bipartite communication graph with coprime-denominator
    weights, forcing a massive lcm period."""
    rng = random.Random(seed)
    primes = [7, 11, 13, 17, 19, 23, 29, 31]
    edges = []
    for u in range(n):
        for v in range(n):
            if rng.random() < 0.6:
                p = primes[(u * n + v) % len(primes)]
                edges.append(
                    (f"s{u}", f"r{v}",
                     Fraction(rng.randint(1, 10 ** 9), p))
                )
    return edges


def run_coloring_suite():
    rows = []
    for n in (3, 5, 8, 12):
        edges = adversarial_instance(n, seed=n)
        slices = weighted_edge_coloring(edges)
        verify_coloring(edges, slices)
        total = sum((s.duration for s in slices), start=Fraction(0))
        rows.append([
            n, len(edges), len(slices),
            len(edges) + 2 * n,           # the bound
            float(total),
        ])
    return rows


def test_c4_edge_coloring_compactness(benchmark):
    rows = benchmark.pedantic(run_coloring_suite, rounds=2, iterations=1)
    for n, n_edges, n_slices, bound, total in rows:
        assert n_slices <= bound
    report(
        "C4: weighted edge colouring — slices vs the |E| + 2p bound",
        render_table(
            ["side size", "|E|", "#slices", "bound |E|+2p",
             "schedule length"],
            rows,
        ),
    )
