"""A4 — study: why heterogeneity-aware allocation matters (the "why").

Fix the platform's total compute power and total bandwidth, then spread
worker speeds further and further apart.  Shape: the LP (which allocates
work where it pays) holds its throughput nearly constant, while blind
round-robin degrades with the spread — quantifying the paper's opening
argument that heterogeneity is what makes naive scheduling fail.
"""

from fractions import Fraction

from repro.baselines.greedy import run_demand_driven
from repro.core.master_slave import solve_master_slave
from repro.platform import generators
from repro.analysis.reporting import render_table

from conftest import report


def heterogeneous_star(spread: int):
    """4 workers whose speeds spread by ``spread`` around the same total.

    Harmonic capacities: sum(1/w) is held at 2 while the w's separate.
    spread=0: all w = 2.  spread=k: w = (2/(1+d), 2/(1-d)) pairs.
    """
    d = Fraction(spread, 10)
    w_fast = 2 / (1 + d)
    w_slow = 2 / (1 - d) if d < 1 else Fraction(10**6)
    return generators.star(
        4, master_w=Fraction(10**6),  # master barely computes: isolate workers
        worker_w=[w_fast, w_fast, w_slow, w_slow],
        link_c=[1, 1, 1, 1],
    )


def run_heterogeneity_sweep():
    rows = []
    for spread in (0, 3, 6, 9):
        platform = heterogeneous_star(spread)
        lp = solve_master_slave(platform, "M").throughput
        horizon = 300
        rr = run_demand_driven(platform, "M", horizon, policy="round-robin")
        bw = run_demand_driven(platform, "M", horizon, policy="bandwidth")
        rows.append([
            f"{spread}/10",
            float(lp),
            float(bw.rate),
            float(rr.rate),
            float(rr.rate / lp) if lp else 0.0,
        ])
    return rows


def test_a4_heterogeneity(benchmark):
    rows = benchmark.pedantic(run_heterogeneity_sweep, rounds=1, iterations=1)
    lp_values = [r[1] for r in rows]
    rr_eff = [r[4] for r in rows]
    # the LP's throughput is stable under the spread (port-bound at 1,
    # workers' harmonic capacity held constant)
    assert max(lp_values) - min(lp_values) <= 0.3 * max(lp_values)
    # round-robin holds while the slow workers still absorb their equal
    # share (w_slow <= 4), then collapses once they saturate: the final
    # spread costs it at least 30% of the optimum
    for prev, nxt in zip(rr_eff, rr_eff[1:]):
        assert nxt <= prev + 0.02  # non-increasing up to discretisation
    assert rr_eff[-1] < 0.7 * rr_eff[0]
    report(
        "A4: fixed total capacity, growing heterogeneity spread",
        render_table(
            ["spread", "LP", "demand-driven(bw)", "round-robin",
             "RR efficiency"],
            rows,
        ),
    )
