"""C6 — §5.2: start-up costs amortised by period grouping.

Shape: with m = ceil(sqrt(n/ntask)) groups, T(n)/Topt(n) decreases
monotonically to 1, the excess fits under C/sqrt(n) with a bounded
constant, and the measured ratio respects the paper's closed-form bound.
"""

import math
from fractions import Fraction

from repro import (
    asymptotic_ratio_bound,
    generators,
    grouped_schedule_makespan,
    reconstruct_schedule,
    solve_master_slave,
)
from repro.analysis.bounds import fit_sqrt_constant
from repro.analysis.reporting import render_table

from conftest import report


def run_startup_sweep():
    platform = generators.star(3, master_w=2, worker_w=[1, 2, 4],
                               link_c=[1, 2, 3])
    sol = solve_master_slave(platform, "M")
    sched = reconstruct_schedule(sol)
    startups = {e: Fraction(2) for e in sched.messages}
    rows = []
    ratios = []
    for n in (100, 1_000, 10_000, 100_000, 1_000_000):
        analysis = grouped_schedule_makespan(sched, startups, n)
        bound = asymptotic_ratio_bound(sched, startups, n)
        rows.append([
            n, analysis.m, float(analysis.ratio), float(bound),
        ])
        ratios.append((n, analysis.ratio))
    return rows, fit_sqrt_constant(ratios)


def test_c6_startup_amortisation(benchmark):
    rows, sqrt_constant = benchmark.pedantic(
        run_startup_sweep, rounds=2, iterations=1
    )
    ratio_values = [r[2] for r in rows]
    assert ratio_values == sorted(ratio_values, reverse=True)
    assert ratio_values[-1] < 1.01
    for n, m, ratio, bound in rows:
        assert ratio <= bound + 0.02
        # m follows the paper's sqrt rule
        assert abs(m - math.isqrt(math.ceil(n / float(rows[0][2])))) <= m
    assert sqrt_constant < 100  # the 1 + C/sqrt(n) constant stays bounded
    report(
        "C6: start-up grouping — T(n)/Topt(n) with m = ceil(sqrt(n/ntask))"
        f"   [fitted C in 1 + C/sqrt(n): {sqrt_constant:.2f}]",
        render_table(
            ["n tasks", "m groups", "measured ratio", "paper bound"],
            rows,
        ),
    )
