"""C2 — §3.2 + §4.1: pipelined scatter bound and its reconstruction.

Shape: the SSPS LP optimum is realised exactly by the reconstructed
periodic schedule (integral per-period message counts, one-port-valid
slices, per-commodity routes delivering TP*T messages each period).
"""

from fractions import Fraction

from repro import generators, reconstruct_schedule, solve_scatter
from repro.analysis.reporting import render_table

from conftest import report

CASES = [
    ("fig2", generators.paper_figure2_multicast(), "P0", ["P5", "P6"]),
    ("star", generators.star(4, worker_w=[1, 1, 1, 1],
                             link_c=[1, 2, 2, 4]), "M",
     ["W1", "W2", "W3", "W4"]),
    ("grid", generators.grid2d(2, 3, seed=1), "G0_0",
     ["G1_2", "G0_2", "G1_0"]),
    ("chain", generators.chain(4, link_c=1), "N0", ["N1", "N2", "N3"]),
]


def run_scatter_suite():
    rows = []
    for name, platform, source, targets in CASES:
        sol = solve_scatter(platform, source, targets)
        sched = reconstruct_schedule(sol)
        per_period = sol.throughput * sched.period
        route_ok = all(
            sum((r for _, r in sched.routes[str(k)]), start=Fraction(0))
            == per_period
            for k in targets
        )
        rows.append([
            name,
            len(targets),
            sol.throughput,
            sched.period,
            len(sched.slices),
            "yes" if route_ok else "NO",
        ])
    return rows


def test_c2_scatter(benchmark):
    rows = benchmark.pedantic(run_scatter_suite, rounds=2, iterations=1)
    for name, ntargets, tp, period, slices, routes_ok in rows:
        assert tp > 0
        assert routes_ok == "yes"
    # the known closed forms
    by_name = {r[0]: r for r in rows}
    assert by_name["fig2"][2] == Fraction(1, 2)
    assert by_name["star"][2] == Fraction(1, 9)   # TP*(1+2+2+4) <= 1
    assert by_name["chain"][2] == Fraction(1, 3)  # 3 commodities on hop 1
    report(
        "C2: pipelined scatter — LP bound realised by the schedule",
        render_table(
            ["platform", "#targets", "TP", "period", "#slices",
             "routes deliver TP*T"],
            rows,
        ),
    )
