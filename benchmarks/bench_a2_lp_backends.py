"""A2 — ablation: exact rational simplex vs floating-point HiGHS.

Design choice: the default backend is our exact simplex because the period
construction (lcm of denominators) needs true rationals; scipy's HiGHS is
kept for large sweeps.  Shape: both agree on the objective to float
precision at every size; the exact backend's cost grows with platform size
but stays laptop-trivial for the sizes the paper's algorithms target.
"""

import time
from fractions import Fraction

from repro.core.master_slave import solve_master_slave
from repro.platform import generators
from repro.analysis.reporting import render_table

from conftest import report

SIZES = (6, 10, 14, 18)


def run_backend_comparison():
    rows = []
    for n in SIZES:
        platform = generators.random_connected(n, seed=n)
        t0 = time.perf_counter()
        exact = solve_master_slave(platform, "R0", backend="exact")
        t_exact = time.perf_counter() - t0
        t0 = time.perf_counter()
        approx = solve_master_slave(platform, "R0", backend="scipy")
        t_scipy = time.perf_counter() - t0
        rows.append([
            n,
            platform.num_edges,
            float(exact.throughput),
            abs(float(exact.throughput) - float(approx.throughput)),
            t_exact * 1000,
            t_scipy * 1000,
        ])
    return rows


def test_a2_lp_backends(benchmark):
    rows = benchmark.pedantic(run_backend_comparison, rounds=1, iterations=1)
    for n, edges, tp, gap, t_exact, t_scipy in rows:
        assert gap < 1e-7  # backends agree
        assert t_exact < 30_000  # exact stays tractable (ms)
    report(
        "A2: exact simplex vs HiGHS on random platforms",
        render_table(
            ["nodes", "edges", "ntask", "|objective gap|",
             "exact (ms)", "scipy (ms)"],
            rows,
        ),
    )
