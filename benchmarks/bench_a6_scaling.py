"""A6 — scaling: the whole pipeline is polynomial in the platform size.

Section 3.1 promises rational optima "in polynomial time (polynomial in
|V| + |E|)" and section 4.1 a polynomial-size schedule description.  This
benchmark runs LP -> period -> colouring -> reconstruction -> 5 simulated
periods across growing random platforms and records wall time and artefact
sizes; the assertions pin the *structural* polynomial bounds (slice count,
route count), the timing table documents the practical constants.
"""

import time
from fractions import Fraction

from repro.core.master_slave import solve_master_slave
from repro.platform import generators
from repro.schedule.reconstruction import reconstruct_schedule
from repro.simulator.periodic_runner import PeriodicRunner
from repro.analysis.reporting import render_table

from conftest import report

SIZES = (6, 10, 14, 18, 24)


def run_scaling_sweep():
    rows = []
    for n in SIZES:
        platform = generators.random_connected(n, seed=7 * n + 1)
        t0 = time.perf_counter()
        sol = solve_master_slave(platform, "R0")
        t_lp = time.perf_counter() - t0
        t0 = time.perf_counter()
        sched = reconstruct_schedule(sol)
        t_rec = time.perf_counter() - t0
        t0 = time.perf_counter()
        PeriodicRunner(sched).run(5)
        t_sim = time.perf_counter() - t0
        rows.append([
            n,
            platform.num_edges,
            len(sched.slices),
            platform.num_edges + 2 * n,        # the structural bound
            len(sched.routes.get("task", [])),
            t_lp * 1000,
            t_rec * 1000,
            t_sim * 1000,
        ])
    return rows


def test_a6_pipeline_scaling(benchmark):
    rows = benchmark.pedantic(run_scaling_sweep, rounds=1, iterations=1)
    for n, edges, slices, bound, routes, t_lp, t_rec, t_sim in rows:
        assert slices <= bound
        assert routes <= edges  # flow decomposition bound
        assert t_lp + t_rec + t_sim < 60_000  # stays laptop-trivial (ms)
    report(
        "A6: pipeline scaling on random platforms",
        render_table(
            ["nodes", "edges", "#slices", "bound", "#routes",
             "LP (ms)", "reconstruct (ms)", "simulate (ms)"],
            rows,
        ),
    )
