"""Benchmark-suite configuration.

Each benchmark regenerates one paper artefact (figure or claim — see
DESIGN.md's experiment index) and *asserts the paper's qualitative shape*
(who wins, by roughly what factor, where crossovers fall) while
pytest-benchmark records the runtimes.  Run with::

    pytest benchmarks/ --benchmark-only -s

to see the reproduced rows/series next to the timing table.
"""

import pytest


def report(title: str, text: str) -> None:
    """Print a labelled block (visible with -s / on failure)."""
    print(f"\n==== {title} ====")
    print(text)
