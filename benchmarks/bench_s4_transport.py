"""S4 — shard transport: TCP vs pipe vs thread, batching, failover.

The multi-host question: what does putting a shard behind a TCP socket
cost, and what does the supervision layer buy?  Three measurements over
one mixed workload (the bench_s1 request pool):

* **transport comparison** — the same 2-shard ring as ``thread`` shards
  (in-process), ``pipe`` shards (local worker processes) and ``tcp``
  shards (real ``shard-serve`` subprocesses), measuring sustained
  req/s on a hit-heavy steady state plus the per-backend round-trip
  latency from the broker's own ``transport.*`` metrics.  Every result
  is asserted ``Fraction``-identical to an unsharded reference broker.

* **batched dispatch over TCP** — ``solve_batch`` ships each shard its
  whole sub-batch as ONE ``solve_many`` frame; compared with per-item
  ``solve`` round-trips (the network analogue of the PR 4 pipe-batching
  win).  Reported as round-trips per request and batched vs unbatched
  throughput.

* **kill-a-shard failover** — a 2-TCP-shard ring loses one server to
  SIGKILL mid-stream; the run must complete every request exactly
  (failover to the surviving shard), and the report carries the
  supervision counters (``shard_failures`` / ``failovers``) plus the
  number of requests answered after the kill.  No lost requests is an
  assertion, not an observation.

Asserted shape: all three transports exact; TCP batching strictly fewer
round-trips than per-item dispatch; failover completes the stream.
Emits ``BENCH_transport.json`` at the repo root.  Run standalone::

    python benchmarks/bench_s4_transport.py [--smoke] [--out FILE]

or through pytest (``pytest benchmarks/bench_s4_transport.py -s``).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

from repro.service import Broker, ShardedBroker, SolutionCache

from bench_s1_service import _zipf_request_pool

REPO_ROOT = Path(__file__).resolve().parent.parent


# ----------------------------------------------------------------------
# shard-serve subprocess management
# ----------------------------------------------------------------------
def _free_port() -> int:
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def start_shard_server(port: int) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "shard-serve", "--port", str(port)],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.time() + 30
    while time.time() < deadline:
        try:
            socket.create_connection(("127.0.0.1", port), timeout=0.2).close()
            return process
        except OSError:
            time.sleep(0.1)
    process.kill()
    raise RuntimeError(f"shard-serve on :{port} never became reachable")


def stop(process: subprocess.Popen) -> None:
    if process.poll() is None:
        process.terminate()
        try:
            process.wait(timeout=5)
        except subprocess.TimeoutExpired:  # pragma: no cover
            process.kill()
            process.wait()


# ----------------------------------------------------------------------
# workload
# ----------------------------------------------------------------------
def build_workload(n_requests: int) -> list:
    pool = list(_zipf_request_pool())
    return [pool[i % len(pool)] for i in range(n_requests)]


def reference_throughputs(requests: list) -> dict:
    with Broker(executor="sync",
                cache=SolutionCache(max_size=4 * len(requests))) as broker:
        return {r.fingerprint(): broker.solve(r).throughput
                for r in requests}


def _assert_exact(results, reference, label: str) -> None:
    for result in results:
        expected = reference[result.fingerprint]
        assert result.throughput == expected, (
            f"{label}: {result.fingerprint[:12]} returned "
            f"{result.throughput}, reference {expected}"
        )


# ----------------------------------------------------------------------
# 1) transport comparison
# ----------------------------------------------------------------------
def _sharded_for(transport: str, servers: list) -> ShardedBroker:
    if transport == "thread":
        return ShardedBroker(shards=2, shard_mode="thread", workers=1)
    if transport == "pipe":
        return ShardedBroker(shards=2, shard_mode="process")
    return ShardedBroker(
        shards=0,
        shard_addresses=[f"127.0.0.1:{port}" for _proc, port in servers],
        health_interval=0,
    )


def run_transport_comparison(sequence: list, reference: dict,
                             servers: list) -> list:
    configs = []
    for transport in ("thread", "pipe", "tcp"):
        with _sharded_for(transport, servers) as sharded:
            for request in sequence:  # untimed priming pass
                sharded.solve(request)
            start = time.perf_counter()
            results = [sharded.solve(request) for request in sequence]
            elapsed = time.perf_counter() - start
            _assert_exact(results, reference, transport)
            endpoints = sharded.snapshot()["metrics"]["endpoints"]
            rtt = endpoints.get(f"transport.{transport}", {})
            configs.append({
                "transport": transport,
                "shards": 2,
                "requests": len(sequence),
                "elapsed_seconds": elapsed,
                "requests_per_second": len(sequence) / elapsed,
                "round_trip_p50_ms": (rtt.get("p50_seconds") or 0) * 1e3,
                "round_trip_p99_ms": (rtt.get("p99_seconds") or 0) * 1e3,
            })
        if transport == "tcp":
            # the TCP run warmed the servers' caches; restart them so the
            # following sections start from a clean slate
            for index, (process, port) in enumerate(servers):
                stop(process)
                servers[index] = (start_shard_server(port), port)
    return configs


# ----------------------------------------------------------------------
# 2) batched solve_many over TCP
# ----------------------------------------------------------------------
def run_tcp_batching(sequence: list, reference: dict, servers: list,
                     batch_size: int) -> dict:
    addresses = [f"127.0.0.1:{port}" for _proc, port in servers]
    with ShardedBroker(shards=0, shard_addresses=addresses,
                       health_interval=0) as sharded:
        for request in sequence:
            sharded.solve(request)  # prime
        before = sharded.ipc_round_trips
        start = time.perf_counter()
        unbatched = [sharded.solve(request) for request in sequence]
        unbatched_elapsed = time.perf_counter() - start
        unbatched_trips = sharded.ipc_round_trips - before
        _assert_exact(unbatched, reference, "tcp-unbatched")

        before = sharded.ipc_round_trips
        start = time.perf_counter()
        batched = []
        for offset in range(0, len(sequence), batch_size):
            batched.extend(
                sharded.solve_batch(sequence[offset:offset + batch_size])
            )
        batched_elapsed = time.perf_counter() - start
        batched_trips = sharded.ipc_round_trips - before
        _assert_exact(batched, reference, "tcp-batched")
    assert batched_trips < unbatched_trips, (
        f"solve_many over TCP used {batched_trips} round-trips vs "
        f"{unbatched_trips} unbatched — batching is not batching"
    )
    return {
        "batch_size": batch_size,
        "requests": len(sequence),
        "unbatched_round_trips": unbatched_trips,
        "batched_round_trips": batched_trips,
        "round_trips_per_request_batched": batched_trips / len(sequence),
        "unbatched_rps": len(sequence) / unbatched_elapsed,
        "batched_rps": len(sequence) / batched_elapsed,
        "rps_gain": unbatched_elapsed / batched_elapsed,
    }


# ----------------------------------------------------------------------
# 3) kill-a-shard failover
# ----------------------------------------------------------------------
def run_failover(sequence: list, reference: dict, servers: list) -> dict:
    addresses = [f"127.0.0.1:{port}" for _proc, port in servers]
    with ShardedBroker(shards=0, shard_addresses=addresses,
                       health_interval=0) as sharded:
        completed = []
        kill_at = len(sequence) // 3
        killed_pid = None
        start = time.perf_counter()
        for index, request in enumerate(sequence):
            if index == kill_at:
                process, _port = servers[0]
                killed_pid = process.pid
                process.send_signal(signal.SIGKILL)
                process.wait()
            completed.append(sharded.solve(request))
        elapsed = time.perf_counter() - start
        _assert_exact(completed, reference, "failover")
        assert len(completed) == len(sequence), "requests were lost"
        health = sharded.shard_health()
    assert health["shard_failures"] >= 1 and health["failovers"] >= 1, (
        f"the kill was never noticed: {health}"
    )
    return {
        "requests": len(sequence),
        "killed_after": kill_at,
        "killed_pid": killed_pid,
        "completed": len(completed),
        "lost": len(sequence) - len(completed),
        "elapsed_seconds": elapsed,
        "shard_failures": health["shard_failures"],
        "failovers": health["failovers"],
        "surviving_shards": sum(1 for s in health["shards"] if s["active"]),
    }


# ----------------------------------------------------------------------
def run(smoke: bool = False) -> dict:
    n_requests = 60 if smoke else 400
    batch_size = 12 if smoke else 32

    sequence = build_workload(n_requests)
    reference = reference_throughputs(sequence)

    ports = [_free_port(), _free_port()]
    servers = [(start_shard_server(port), port) for port in ports]
    try:
        configs = run_transport_comparison(sequence, reference, servers)
        batching = run_tcp_batching(sequence, reference, servers,
                                    batch_size)
        failover = run_failover(sequence, reference, servers)
    finally:
        for process, _port in servers:
            stop(process)

    thread_rps = next(c["requests_per_second"] for c in configs
                      if c["transport"] == "thread")
    for config in configs:
        config["rps_vs_thread"] = (config["requests_per_second"]
                                   / thread_rps)
    return {
        "benchmark": "S4 shard transport",
        "quick": smoke,
        "requests": n_requests,
        "transports": configs,
        "tcp_batching": batching,
        "failover": failover,
        "exactness": "all results Fraction-identical to unsharded broker "
                     "on every transport, including after the kill",
    }


def test_s4_transport(capsys):
    """Pytest entry point (smoke mode; run the script for full numbers)."""
    report = run(smoke=True)
    with capsys.disabled():
        print("\n==== S4: shard transport ====")
        print(json.dumps(report, indent=2))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small stream (CI smoke run)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: repo-root "
                             "BENCH_transport.json)")
    args = parser.parse_args(argv)
    report = run(smoke=args.smoke)
    out = Path(args.out) if args.out else (
        REPO_ROOT / "BENCH_transport.json"
    )
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
