"""S5 — observability: tracing overhead, capture behaviour, exposition.

Measures, on the BENCH_service mixed Zipf workload (the same request
pool and distribution as ``bench_s1_service.py``):

* per-request latency with tracing **off** (no trace store) vs **on**
  (every request captured into a :class:`TraceStore`) — p50 overhead
  must stay under 5%;
* the raw cost of one trace skeleton (trace + three spans + capture),
  i.e. the absolute price a request pays;
* slow-trace capture: with a tight threshold the slow ring retains the
  outliers while fast requests churn through the recent ring;
* Prometheus text exposition latency for a populated snapshot.

Overhead is measured with interleaved off/on repetitions (off, on, off,
on, …) so clock drift and cache warm-up hit both modes equally, and the
reported p50s are medians across repetitions.

Emits ``BENCH_obs.json`` at the repo root.  Run standalone::

    python benchmarks/bench_s5_observability.py [--smoke] [--out FILE]

or through pytest (``pytest benchmarks/bench_s5_observability.py -s``).
``--smoke`` shrinks the request counts for CI and relaxes the overhead
assertion (tiny samples on shared runners are too noisy to gate on).
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import time
from pathlib import Path

from repro import Broker, SolveRequest, generators
from repro.service import (
    TraceStore,
    handle_request,
    render_prometheus,
    request_to_dict,
    span,
    start_trace,
)

from bench_s1_service import _percentile, _zipf_request_pool


def _zipf_envelopes(n_requests: int, seed: int = 1) -> list:
    pool = [{"op": "solve", "request": request_to_dict(req)}
            for req in _zipf_request_pool()]
    rng = random.Random(seed)
    weights = [1.0 / (r + 1) ** 1.1 for r in range(len(pool))]
    return rng.choices(pool, weights=weights, k=n_requests)


def bench_overhead(smoke: bool) -> dict:
    """Tracing off vs on, interleaved request by request on the Zipf mix.

    Two identical brokers serve the same request stream; each request is
    timed once untraced and once traced, back to back, so clock drift
    and scheduler noise (which on shared runners dwarf the ~10us cost
    of a span tree) cancel instead of biasing one mode.
    """
    n_requests = 150 if smoke else 600
    repetitions = 2 if smoke else 5
    envelopes = _zipf_envelopes(n_requests)

    p50s = {"off": [], "on": []}
    p99s = {"off": [], "on": []}
    for _ in range(repetitions):
        store = TraceStore(capacity=n_requests)
        offs, ons = [], []
        with Broker(executor="sync") as b_off, \
                Broker(executor="sync") as b_on:
            for env in envelopes:
                start = time.perf_counter()
                out_off = handle_request(b_off, env)
                offs.append(time.perf_counter() - start)
                start = time.perf_counter()
                out_on = handle_request(b_on, env, trace_store=store)
                ons.append(time.perf_counter() - start)
                assert out_off["ok"] and out_on["ok"]
        assert store.captured == n_requests  # every request left a trace
        p50s["off"].append(_percentile(offs, 50))
        p50s["on"].append(_percentile(ons, 50))
        p99s["off"].append(_percentile(offs, 99))
        p99s["on"].append(_percentile(ons, 99))

    off_p50 = statistics.median(p50s["off"])
    on_p50 = statistics.median(p50s["on"])
    overhead = on_p50 / off_p50 - 1

    limit = 0.25 if smoke else 0.05
    assert overhead < limit, (
        f"tracing p50 overhead {overhead * 100:.1f}% (limit {limit:.0%})"
    )
    return {
        "requests_per_run": n_requests,
        "repetitions": repetitions,
        "p50_off_us": off_p50 * 1e6,
        "p50_on_us": on_p50 * 1e6,
        "p99_off_us": statistics.median(p99s["off"]) * 1e6,
        "p99_on_us": statistics.median(p99s["on"]) * 1e6,
        "p50_overhead_percent": overhead * 100,
        "limit_percent": limit * 100,
    }


def bench_trace_cost(smoke: bool) -> dict:
    """Absolute price of one captured trace skeleton (no solving)."""
    rounds = 5_000 if smoke else 20_000
    store = TraceStore(capacity=64)
    start = time.perf_counter()
    for _ in range(rounds):
        with start_trace("request.solve", store=store):
            with span("engine.run") as sp:
                with span("cache.lookup"):
                    pass
                sp.annotate(cached=True, warm=False)
    per_trace = (time.perf_counter() - start) / rounds
    assert store.captured == rounds
    return {"rounds": rounds, "per_trace_us": per_trace * 1e6}


def bench_slow_capture(smoke: bool) -> dict:
    """A flood of fast requests cannot evict the slow outliers."""
    fig1 = generators.paper_figure1()
    req = SolveRequest(problem="master-slave", platform=fig1, master="P1")
    env = {"op": "solve", "request": request_to_dict(req)}
    flood = 100 if smoke else 400
    store = TraceStore(capacity=8, slow_capacity=8, slow_threshold=0.0005)

    with Broker(executor="sync", incremental=False) as broker:
        # The cold solve is well over the (deliberately tiny) threshold …
        cold = handle_request(broker, env, trace_store=store)
        slow_id = cold["trace_id"]
        # … then a flood of sub-threshold cache hits churns the ring.
        fast_below = 0
        for _ in range(flood):
            out = handle_request(broker, env, trace_store=store)
            trace = store.get(out["trace_id"])
            if trace is not None and not trace.slow:
                fast_below += 1
    kept = store.get(slow_id)
    assert kept is not None and kept.slow, "slow trace was evicted"
    snap = store.snapshot()
    assert snap["captured"] == flood + 1
    return {
        "flood_requests": flood,
        "slow_trace_kept": True,
        "slow_captured": snap["slow_captured"],
        "recent_ring": snap["stored"],
    }


def bench_prometheus(smoke: bool) -> dict:
    """Render latency of the Prometheus text view on a live snapshot."""
    envelopes = _zipf_envelopes(100 if smoke else 300)
    rounds = 200 if smoke else 1_000
    store = TraceStore()
    with Broker(executor="sync") as broker:
        for env in envelopes:
            handle_request(broker, env, trace_store=store)
        snapshot = handle_request(broker, {"op": "metrics"},
                                  trace_store=store)
    start = time.perf_counter()
    for _ in range(rounds):
        text = render_prometheus(snapshot)
    per_render = (time.perf_counter() - start) / rounds
    assert "repro_requests_total" in text
    assert "repro_traces_captured_total" in text
    return {
        "render_p50_estimate_us": per_render * 1e6,
        "exposition_bytes": len(text.encode()),
        "exposition_lines": len(text.splitlines()),
    }


# ----------------------------------------------------------------------
def run(smoke: bool = False) -> dict:
    return {
        "benchmark": "S5 observability",
        "smoke": smoke,
        "overhead": bench_overhead(smoke),
        "trace_cost": bench_trace_cost(smoke),
        "slow_capture": bench_slow_capture(smoke),
        "prometheus": bench_prometheus(smoke),
    }


def test_s5_observability(capsys):
    """Pytest entry point (smoke mode; run the script for full numbers)."""
    report = run(smoke=True)
    with capsys.disabled():
        print("\n==== S5: observability ====")
        print(json.dumps(report, indent=2))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="smaller rounds + relaxed overhead gate (CI)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: repo-root "
                             "BENCH_obs.json)")
    args = parser.parse_args(argv)
    report = run(smoke=args.smoke)
    out = Path(args.out) if args.out else (
        Path(__file__).resolve().parent.parent / "BENCH_obs.json"
    )
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
