"""S3 — the first-class warm path: basis restarts and batched shard IPC.

Measures, on weight-drift mutations of the paper's Figure 1 platform and
a wider heterogeneous star:

* cold solve cost — LP assembly + two-phase simplex (latency and pivots);
* basis-restart warm re-solve cost — coefficients patched in place, the
  pivot phase restarted from the retained optimal basis (latency and
  pivots), asserted ``Fraction``-identical to the cold solve of every
  mutated platform and *strictly cheaper in pivots* in aggregate;
* ``solve_many`` batching on process shards — one pipe round-trip per
  shard per batch instead of one per request, asserted exact against the
  unsharded broker and strictly fewer IPC round-trips.

Emits ``BENCH_warm.json`` at the repo root.  Run standalone::

    python benchmarks/bench_s3_warm.py [--smoke] [--out FILE]

Asserted shape: every compared result is Fraction-identical; warm
re-solves use strictly fewer pivots than cold solves (p50 and total) at
a p50 latency no worse than the cold solve's (and within the ~4 ms warm
re-solve budget of BENCH_service.json); ``solve_many`` cuts process-shard
IPC round-trips per batched request; 6 of 10 registered problems declare
``warm_resolve``.
"""

from __future__ import annotations

import argparse
import json
import random
import time
from fractions import Fraction
from pathlib import Path

from repro import generators
from repro.core.master_slave import build_ssms_lp, package_ssms_solution
from repro.lp import SimplexInstance
from repro.platform.graph import Platform
from repro.problems import MasterSlaveSpec, registered_problems, resolve
from repro.service import EndpointMetrics, IncrementalSolver
from repro.service.broker import Broker, SolveRequest
from repro.service.sharding import ShardedBroker
from repro._rational import INF, is_infinite


def _percentile(samples, p):
    em = EndpointMetrics("bench", reservoir_size=max(len(samples), 1))
    for s in samples:
        em.observe(s)
    return em.percentile(p)


def _drift(platform: Platform, rng: random.Random) -> Platform:
    """A weight-drift mutation: every node/edge weight moves by an
    independent rational factor in [3/4, 5/4] — the monitoring-layer
    regime the warm path is built for (same topology, moved weights)."""
    out = Platform(platform.name)
    for spec in platform._nodes.values():  # noqa: SLF001 — bench helper
        if is_infinite(spec.w):
            out.add_node(spec.name, INF)
        else:
            out.add_node(spec.name,
                         spec.w * Fraction(rng.randint(12, 20), 16))
    for spec in platform.edges():
        out.add_edge(spec.src, spec.dst,
                     spec.c * Fraction(rng.randint(12, 20), 16))
    return out


# ----------------------------------------------------------------------
def bench_basis_restart(smoke: bool) -> dict:
    """Warm basis restart vs cold solve: pivots and latency, exactness."""
    rounds = 8 if smoke else 40
    rng = random.Random(20040427)
    platforms = {
        "paper_figure1": (generators.paper_figure1(), "P1"),
        "binary_tree3": (generators.binary_tree(3, seed=1), "T0"),
    }
    out = {}
    for name, (base, master) in platforms.items():
        inc = IncrementalSolver()
        inc.solve_master_slave(base, master)  # prime the hot model
        # the PRE-refactor warm path measured side by side: a second hot
        # model whose re-solves patch coefficients but run the cold pivot
        # sequence every time (assembly skipped, no basis reuse) — the
        # ~4 ms "current warm re-solve" baseline the restart must beat
        legacy_lp, legacy_handles = build_ssms_lp(base, master)
        from repro.core.master_slave import patch_ssms_coefficients

        restart_lat, restart_piv = [], []
        legacy_lat, legacy_piv = [], []
        cold_lat, cold_piv = [], []
        for _ in range(rounds):
            mutated = _drift(base, rng)
            before = inc.stats.warm_pivots
            start = time.perf_counter()
            warm = inc.solve_master_slave(mutated, master)
            restart_lat.append(time.perf_counter() - start)
            restart_piv.append(inc.stats.warm_pivots - before)

            start = time.perf_counter()
            patch_ssms_coefficients(legacy_lp, legacy_handles, mutated,
                                    master)
            legacy_sol = SimplexInstance(legacy_lp).solve()
            legacy = package_ssms_solution(mutated, master, legacy_sol,
                                           legacy_handles)
            legacy_lat.append(time.perf_counter() - start)
            legacy_piv.append(legacy_sol.pivots)

            # the full cold path — assemble, two-phase solve, package —
            # i.e. what this request would cost without any hot state
            start = time.perf_counter()
            lp, handles = build_ssms_lp(mutated, master)
            cold_sol = SimplexInstance(lp).solve()
            cold = package_ssms_solution(mutated, master, cold_sol, handles)
            cold_lat.append(time.perf_counter() - start)
            cold_piv.append(cold_sol.pivots)

            # exactness: identical Fraction throughput on every mutation
            assert warm.throughput == cold.throughput == legacy.throughput, (
                f"{name}: warm {warm.throughput} != cold {cold.throughput}"
            )
        stats = inc.stats
        assert stats.warm_solves == rounds and stats.basis_fallbacks == 0, (
            f"{name}: warm path not taken on every mutation: "
            f"{stats.as_dict()}"
        )
        total_warm, total_cold = sum(restart_piv), sum(cold_piv)
        p50_warm = _percentile(restart_piv, 50)
        p50_cold = _percentile(cold_piv, 50)
        assert total_warm < total_cold and p50_warm < p50_cold, (
            f"{name}: basis restart must pivot strictly less than cold "
            f"(total {total_warm} vs {total_cold}, p50 {p50_warm} vs "
            f"{p50_cold})"
        )
        warm_p50_ms = _percentile(restart_lat, 50) * 1e3
        legacy_p50_ms = _percentile(legacy_lat, 50) * 1e3
        cold_p50_ms = _percentile(cold_lat, 50) * 1e3
        assert warm_p50_ms <= cold_p50_ms, (
            f"{name}: warm p50 {warm_p50_ms:.2f} ms slower than cold "
            f"{cold_p50_ms:.2f} ms"
        )
        # the acceptance bar: at or below the coefficient-patch-only
        # warm re-solve this PR replaces (~4 ms on the reference box)
        assert warm_p50_ms <= legacy_p50_ms * 1.05, (
            f"{name}: basis restart p50 {warm_p50_ms:.2f} ms regressed "
            f"past the patch-only warm re-solve ({legacy_p50_ms:.2f} ms)"
        )
        out[name] = {
            "mutations": rounds,
            "cold_p50_ms": cold_p50_ms,
            "cold_p99_ms": _percentile(cold_lat, 99) * 1e3,
            "patch_only_warm_p50_ms": legacy_p50_ms,
            "warm_p50_ms": warm_p50_ms,
            "warm_p99_ms": _percentile(restart_lat, 99) * 1e3,
            "cold_pivots_p50": p50_cold,
            "patch_only_pivots_p50": _percentile(legacy_piv, 50),
            "warm_pivots_p50": p50_warm,
            "cold_pivots_total": total_cold,
            "warm_pivots_total": total_warm,
            "pivot_savings": 1 - total_warm / total_cold,
            "phase1_skips": stats.phase1_skips,
            "basis_restarts": stats.basis_restarts,
        }
    return out


# ----------------------------------------------------------------------
def _batch_corpus(size: int) -> list:
    """A Zipf-repeating request mix over distinct star platforms."""
    distinct = [
        SolveRequest(problem="master-slave",
                     platform=generators.star(
                         n, worker_w=list(range(1, n + 1)), link_c=[1] * n),
                     master="M")
        for n in range(2, 10)
    ]
    rng = random.Random(1)
    weights = [1.0 / (r + 1) ** 1.1 for r in range(len(distinct))]
    return rng.choices(distinct, weights=weights, k=size)


def bench_solve_many(smoke: bool) -> dict:
    """Batched vs unbatched process-shard dispatch: IPC and throughput."""
    n_requests = 48 if smoke else 192
    batch_size = 16 if smoke else 32
    shards = 2
    sequence = _batch_corpus(n_requests)

    with Broker(executor="sync") as ref_broker:
        reference = [ref_broker.solve(r).throughput for r in sequence]

    with ShardedBroker(shards=shards, shard_mode="process") as broker:
        start = time.perf_counter()
        unbatched = [broker.solve(r) for r in sequence]
        unbatched_elapsed = time.perf_counter() - start
        unbatched_ipc = broker.ipc_round_trips
    assert [r.throughput for r in unbatched] == reference

    with ShardedBroker(shards=shards, shard_mode="process") as broker:
        start = time.perf_counter()
        batched = []
        for lo in range(0, n_requests, batch_size):
            batched.extend(broker.solve_batch(sequence[lo:lo + batch_size]))
        batched_elapsed = time.perf_counter() - start
        batched_ipc = broker.ipc_round_trips
    assert [r.throughput for r in batched] == reference

    assert batched_ipc < unbatched_ipc, (
        f"solve_many must cut IPC round-trips "
        f"({batched_ipc} vs {unbatched_ipc})"
    )
    # one solve round-trip per shard per batch (+ nothing per request)
    assert batched_ipc <= shards * -(-n_requests // batch_size)
    return {
        "requests": n_requests,
        "batch_size": batch_size,
        "shards": shards,
        "unbatched_ipc_round_trips": unbatched_ipc,
        "batched_ipc_round_trips": batched_ipc,
        "ipc_per_request_unbatched": unbatched_ipc / n_requests,
        "ipc_per_request_batched": batched_ipc / n_requests,
        "unbatched_requests_per_second": n_requests / unbatched_elapsed,
        "batched_requests_per_second": n_requests / batched_elapsed,
        "batching_speedup": unbatched_elapsed / batched_elapsed,
        "exactness_checked": len(reference),
    }


# ----------------------------------------------------------------------
def warm_capability_coverage() -> dict:
    """Which registered problems declare warm_resolve (6 of 10 expected)."""
    warm = sorted(p for p in registered_problems()
                  if resolve(p).capabilities.warm_resolve)
    assert len(warm) == 6, f"expected 6 warm-capable problems, got {warm}"
    # one warm re-solve sanity pass through the generic incremental path
    g = generators.star(3, bidirectional=True)
    inc = IncrementalSolver()
    inc.solve_spec(MasterSlaveSpec(platform=g, master="M"))
    mutated = MasterSlaveSpec(platform=g.scale(compute=Fraction(5, 4)),
                              master="M")
    _sol, was_warm = inc.solve_spec_ex(mutated)
    assert was_warm and inc.stats.basis_restarts == 1
    return {
        "registered_problems": len(registered_problems()),
        "warm_capable": warm,
    }


# ----------------------------------------------------------------------
def run(smoke: bool = False) -> dict:
    return {
        "benchmark": "S3 warm path",
        "smoke": smoke,
        "coverage": warm_capability_coverage(),
        "basis_restart": bench_basis_restart(smoke),
        "solve_many": bench_solve_many(smoke),
    }


def test_s3_warm(capsys):
    """Pytest entry point (smoke mode; run the script for full numbers)."""
    report = run(smoke=True)
    with capsys.disabled():
        print("\n==== S3: warm path ====")
        print(json.dumps(report, indent=2))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="smaller rounds (CI smoke run)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: repo-root "
                             "BENCH_warm.json)")
    args = parser.parse_args(argv)
    report = run(smoke=args.smoke)
    out = Path(args.out) if args.out else (
        Path(__file__).resolve().parent.parent / "BENCH_warm.json"
    )
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
