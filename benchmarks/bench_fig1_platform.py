"""F1 — Figure 1: the example platform and its steady-state operation.

The paper's Figure 1 shows the node/edge-weighted platform graph that all
of section 3 quantifies.  This benchmark rebuilds it, solves SSMS(G),
reconstructs the periodic schedule and prints the full artefact.
"""

from repro import PeriodicRunner, generators, reconstruct_schedule, solve_master_slave
from repro.analysis.reporting import render_table

from conftest import report


def fig1_pipeline():
    platform = generators.paper_figure1()
    solution = solve_master_slave(platform, "P1")
    schedule = reconstruct_schedule(solution)
    result = PeriodicRunner(schedule).run(10)
    return platform, solution, schedule, result


def test_fig1_platform_and_schedule(benchmark):
    platform, solution, schedule, result = benchmark.pedantic(
        fig1_pipeline, rounds=3, iterations=1
    )
    # the platform of Figure 1
    assert platform.num_nodes == 6 and platform.num_edges == 14
    # steady state primes and holds the LP rate
    assert result.completed_per_period[-1] == (
        solution.throughput * schedule.period
    )
    rows = [
        ["ntask(G) tasks/time-unit", solution.throughput],
        ["period T", schedule.period],
        ["communication slices", len(schedule.slices)],
        ["tasks per period", schedule.tasks_per_period()],
        ["simulated deficit (constant)", result.deficit],
    ]
    report("F1: Figure 1 platform, SSMS solution and periodic schedule",
           platform.describe() + "\n\n"
           + render_table(["quantity", "value"], rows)
           + "\n\n" + schedule.describe())
