"""C1 — §3.1 + §4.1: master-slave steady state vs practical baselines.

Shape to reproduce: the LP bound dominates every executable strategy; the
reconstructed periodic schedule attains it exactly (up to the constant
initialisation deficit); bandwidth-centric demand-driven approaches it;
round-robin trails badly.
"""

from fractions import Fraction

import pytest

from repro import (
    PeriodicRunner,
    generators,
    reconstruct_schedule,
    run_demand_driven,
    solve_master_slave,
)
from repro.analysis.reporting import render_table

from conftest import report

PLATFORMS = [
    ("star", generators.star(4, master_w=2, worker_w=[1, 2, 3, 4],
                             link_c=[1, 1, 2, 3]), "M"),
    ("tree", generators.binary_tree(3, seed=5), "T0"),
    ("grid", generators.grid2d(3, 3, seed=3), "G0_0"),
    ("random", generators.random_connected(9, seed=11), "R0"),
]


def run_comparison():
    rows = []
    for name, platform, master in PLATFORMS:
        sol = solve_master_slave(platform, master)
        sched = reconstruct_schedule(sol)
        periods = max(12, 2 * platform.num_nodes)
        periodic = PeriodicRunner(sched).run(periods)
        horizon = sched.period * periods
        bw = run_demand_driven(platform, master, horizon, policy="bandwidth")
        rr = run_demand_driven(platform, master, horizon,
                               policy="round-robin")
        rows.append([
            name,
            float(sol.throughput),
            float(periodic.achieved_rate),
            float(bw.rate),
            float(rr.rate),
        ])
    return rows


def test_c1_master_slave_comparison(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    for name, lp, periodic, bw, rr in rows:
        # nothing beats the LP bound
        assert periodic <= lp + 1e-12
        assert bw <= lp + 1e-12
        assert rr <= lp + 1e-12
        # the periodic schedule essentially attains it
        assert periodic >= 0.85 * lp
        # demand-driven bandwidth-centric is competitive: near-optimal on
        # genuinely tree-shaped platforms, within a constant factor on
        # general graphs where it only exploits a spanning tree (the very
        # parallelism the LP wins by)
        threshold = 0.80 if name in ("star", "tree") else 0.55
        assert bw >= threshold * lp
        # round-robin is the clear loser (paper's motivation for LP-based
        # allocation under heterogeneity)
        assert rr <= bw + 1e-12
    report(
        "C1: steady-state vs baselines (tasks per time-unit)",
        render_table(
            ["platform", "LP bound", "periodic schedule",
             "demand-driven (bandwidth)", "round-robin"],
            rows,
        ),
    )
