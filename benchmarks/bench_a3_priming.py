"""A3 — ablation: initialisation length vs platform depth.

Section 4.2: "we need a fixed number of periods (no more than the depth of
the platform graph) to reach the steady-state".  After cycle cancellation
the executed schedules should prime within roughly the depth of the task
*routes* (which can exceed the BFS depth when cancellation reroutes flow,
but stays bounded by the platform size).

Shape: priming periods <= max route hops + 1 <= platform size, on every
family.
"""

from repro.core.master_slave import solve_master_slave
from repro.platform import generators
from repro.schedule.reconstruction import reconstruct_schedule
from repro.simulator.periodic_runner import PeriodicRunner, steady_state_reached_after
from repro.analysis.reporting import render_table

from conftest import report

PLATFORMS = [
    ("star", generators.star(5, worker_w=[1, 2, 3, 4, 5],
                             link_c=[1, 1, 2, 2, 3]), "M"),
    ("chain-6", generators.chain(6, node_w=2, link_c=1), "N0"),
    ("tree-d3", generators.binary_tree(3, seed=5), "T0"),
    ("grid-4x4", generators.grid2d(4, 4, seed=9), "G0_0"),
    ("random-12", generators.random_connected(12, seed=4), "R0"),
]


def run_priming_measurements():
    rows = []
    for name, platform, master in PLATFORMS:
        sol = solve_master_slave(platform, master)
        sched = reconstruct_schedule(sol)
        res = PeriodicRunner(sched).run(platform.num_nodes + 4)
        primed = steady_state_reached_after(res)
        depth = platform.depth_from(master)
        max_hops = max(
            (len(path) - 1
             for path, _ in sched.routes.get("task", [((master,), 0)])),
            default=0,
        )
        rows.append([name, depth, max_hops, primed, platform.num_nodes])
    return rows


def test_a3_priming_depth(benchmark):
    rows = benchmark.pedantic(
        run_priming_measurements, rounds=1, iterations=1
    )
    for name, depth, hops, primed, n in rows:
        assert primed <= hops + 1, name
        assert primed <= n, name
    report(
        "A3: periods needed to reach the steady state",
        render_table(
            ["platform", "BFS depth", "max route hops", "primed after",
             "num nodes"],
            rows,
        ),
    )
