"""F3a/F3b/F3c — Figures 3(a), 3(b), 3(c): the max-LP multicast flows.

Regenerates the per-edge message rates of the optimal max-rule LP solution:
1/2 per printed edge towards P5 (3a) and towards P6 (3b), and the
superposed distinct-message load per edge (3c) — including the shared
source edges where the two targets' copies coincide.
"""

from fractions import Fraction

from repro.core.multicast import analyze_figure2
from repro.analysis.reporting import render_edge_flows

from conftest import report


def test_fig3_flows(benchmark):
    rep = benchmark.pedantic(analyze_figure2, rounds=3, iterations=1)

    # Figure 3(a): six edges at rate 1/2 towards P5
    assert set(rep.flows_p5) == {
        ("P0", "P1"), ("P1", "P5"),
        ("P0", "P2"), ("P2", "P3"), ("P3", "P4"), ("P4", "P5"),
    }
    assert all(v == Fraction(1, 2) for v in rep.flows_p5.values())

    # Figure 3(b): six edges at rate 1/2 towards P6
    assert set(rep.flows_p6) == {
        ("P0", "P1"), ("P1", "P3"), ("P3", "P4"), ("P4", "P6"),
        ("P0", "P2"), ("P2", "P6"),
    }
    assert all(v == Fraction(1, 2) for v in rep.flows_p6.values())

    # Figure 3(c): totals — shared at the source, additive elsewhere
    assert rep.total_flows[("P0", "P1")] == Fraction(1, 2)
    assert rep.total_flows[("P0", "P2")] == Fraction(1, 2)
    assert rep.total_flows[("P3", "P4")] == 1

    report(
        "F3a: messages targeting P5",
        render_edge_flows(rep.flows_p5),
    )
    report(
        "F3b: messages targeting P6",
        render_edge_flows(rep.flows_p6),
    )
    report(
        "F3c: total distinct messages per edge",
        render_edge_flows(rep.total_flows),
    )
