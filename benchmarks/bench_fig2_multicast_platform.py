"""F2 — Figure 2: the multicast counterexample platform.

Rebuilds the seven-node platform with the printed edge costs (eight unit
edges plus P3->P4 at cost 2) and verifies the structural facts the section
4.3 narrative depends on: the four named routes exist and the max-rule LP
admits throughput exactly 1.
"""

from repro import generators
from repro.core.multicast import multicast_bounds

from conftest import report


def build_and_bound():
    platform = generators.paper_figure2_multicast()
    sum_lp, max_lp = multicast_bounds(platform, "P0", ["P5", "P6"])
    return platform, sum_lp, max_lp


def test_fig2_platform(benchmark):
    platform, sum_lp, max_lp = benchmark.pedantic(
        build_and_bound, rounds=3, iterations=1
    )
    assert platform.num_nodes == 7
    assert platform.num_edges == 9
    assert platform.c("P3", "P4") == 2
    assert max_lp == 1          # the figure's "one message per time-unit"
    for path in [
        ["P0", "P1", "P5"],                    # label a -> P5
        ["P0", "P2", "P3", "P4", "P5"],        # label b -> P5
        ["P0", "P1", "P3", "P4", "P6"],        # route r1 (label a) -> P6
        ["P0", "P2", "P6"],                    # route r2 (label b) -> P6
    ]:
        for a, b in zip(path, path[1:]):
            assert platform.has_edge(a, b)
    report("F2: Figure 2 platform", platform.describe()
           + f"\n\nmax-rule LP bound = {max_lp} (the paper's 'throughput "
             f"of one message per time-unit')\nsum-rule LP = {sum_lp}")
