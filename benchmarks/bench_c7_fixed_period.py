"""C7 — §5.4: fixed-length periods approach the optimum.

Shape: rounding the optimal rational activities down to a fixed period tau
loses at most (#routes+1)/tau of throughput, so the achieved rate climbs
to ntask(G) as tau grows.
"""

from fractions import Fraction

from repro import generators, solve_master_slave, throughput_vs_period
from repro.schedule.fixed_period import rounding_loss_bound
from repro.analysis.reporting import render_table

from conftest import report


def run_fixed_period_sweep():
    platform = generators.grid2d(3, 3, seed=3)
    sol = solve_master_slave(platform, "G0_0")
    taus = [5, 20, 80, 320, 1280]
    series = throughput_vs_period(sol, taus)
    rows = []
    for (tau, tp) in series:
        loss = sol.throughput - tp
        rows.append([
            int(tau), float(tp), float(sol.throughput),
            float(loss), float(rounding_loss_bound(sol, tau)),
        ])
    return rows


def test_c7_fixed_period_convergence(benchmark):
    rows = benchmark.pedantic(run_fixed_period_sweep, rounds=2, iterations=1)
    losses = [r[3] for r in rows]
    assert losses == sorted(losses, reverse=True)
    assert losses[-1] < 0.01
    for tau, tp, opt, loss, bound in rows:
        assert loss <= bound + 1e-12
        assert tp <= opt
    report(
        "C7: throughput under fixed periods (grid 3x3)",
        render_table(
            ["tau", "throughput(tau)", "optimum", "loss", "loss bound"],
            rows,
        ),
    )
