"""C13 — §6: the open problem — collections of Laplace task graphs.

The paper closes by asking for the complexity of the optimal steady-state
throughput for DAGs with exponentially many simple paths (the Laplace
graph), conjecturing NP-hardness.  We probe the question in polynomial
time and surface a precise structural finding:

* the rate-relaxation LP gives an upper bound;
* the *colocated* strategy (run whole instances where their input lands;
  equivalently SSMS on the aggregated task of work ``n^2``) gives a lower
  bound;
* with **uniform capabilities** (every node can run every type, related
  speeds) the two coincide on every platform we test — the bracket closes,
  because splitting an instance only ever adds communication;
* under **specialisation** (per-type affinities, the unrelated extension)
  colocation is impossible and the LP relaxation is all that remains —
  the regime where the conjectured hardness must live.

Shape: path counts explode (binomial(2n-2, n-1)); both bounds stay
polynomial; gap 1.0 uniformly, specialised bound strictly above what any
single node can do.
"""

from fractions import Fraction

from repro._rational import INF
from repro.core.dag import TaskGraph, solve_dag_collection
from repro.core.master_slave import solve_master_slave
from repro.platform import generators
from repro.analysis.reporting import render_table

from conftest import report


def colocated_lower_bound(platform, master, dag) -> Fraction:
    total_work = sum(
        (w for t, w in dag.types.items() if w > 0), start=Fraction(0)
    )
    scaled = platform.scale(compute=total_work)
    return solve_master_slave(scaled, master).throughput


def checkerboard_affinity(platform, dag):
    """Even-parity cells only on even workers, odd on odd — colocation
    becomes impossible because no node may run a whole instance."""
    affinity = {}
    workers = [n for n in platform.nodes()]
    for t in dag.real_types():
        i, j = (int(x) for x in t[1:].split("_"))
        parity = (i + j) % 2
        for idx, node in enumerate(workers):
            if node == "M":
                continue
            if idx % 2 != parity:
                affinity[(node, t)] = INF
        affinity[("M", t)] = INF  # the master only feeds inputs
    return affinity


def run_laplace_bracket():
    # bidirectional links so specialised intermediate files can route
    # back through the master between worker groups
    platform = generators.star(4, master_w=2, worker_w=[1, 2, 3, 4],
                               link_c=[1, 1, 2, 2], bidirectional=True)
    rows = []
    for n in (2, 3, 4):
        dag = TaskGraph.laplace(n)
        paths = dag.count_simple_paths("l0_0", f"l{n - 1}_{n - 1}")
        upper = solve_dag_collection(platform, dag, "M").throughput
        lower = colocated_lower_bound(platform, "M", dag)
        rows.append([
            f"{n}x{n} uniform", paths, float(lower), float(upper),
            float(upper / lower) if lower else float("nan"),
        ])
    # the specialised regime (n = 2): colocation impossible
    dag2 = TaskGraph.laplace(2)
    affinity = checkerboard_affinity(platform, dag2)
    specialised = solve_dag_collection(
        platform, dag2, "M", affinity=affinity
    ).throughput
    rows.append(["2x2 specialised", 2, None, float(specialised), None])
    return rows, specialised


def test_c13_laplace_bracket(benchmark):
    rows, specialised = benchmark.pedantic(
        run_laplace_bracket, rounds=1, iterations=1
    )
    uniform_rows = [r for r in rows if r[2] is not None]
    # exponential path growth: 2, 6, 20
    assert [r[1] for r in uniform_rows] == [2, 6, 20]
    # THE finding: under uniform capabilities the bracket closes exactly
    for label, paths, lower, upper, gap in uniform_rows:
        assert abs(gap - 1.0) < 1e-12, label
    # specialisation keeps a positive (but now unverifiable) LP bound
    assert specialised > 0
    report(
        "C13: the section 6 open problem, bracketed "
        "(uniform capabilities close the gap; specialisation reopens it)",
        render_table(
            ["workload", "simple paths", "colocated lower",
             "rate-LP upper", "gap"],
            [[r[0], r[1],
              "-" if r[2] is None else r[2],
              r[3],
              "-" if r[4] is None else r[4]] for r in rows],
        ),
    )
