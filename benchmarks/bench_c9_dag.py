"""C9 — §4.2: collections of identical DAGs (mixed data/task parallelism).

Shape: the DAG framework strictly generalises master-slave (degenerate DAG
gives exactly ntask(G)); pipelines map stages across nodes; heavier
inter-stage files throttle throughput; fork-join width trades against the
platform's compute capacity.
"""

from fractions import Fraction

from repro import TaskGraph, generators, ntask, solve_dag_collection
from repro.analysis.reporting import render_table

from conftest import report


def run_dag_suite():
    star = generators.star(4, master_w=2, worker_w=[1, 2, 3, 4],
                           link_c=[1, 1, 2, 3])
    chain_platform = generators.chain(3, node_w=1, link_c=1)
    rows = []

    degenerate = TaskGraph.single_task()
    rows.append([
        "single task on star (== SSMS)",
        solve_dag_collection(star, degenerate, "M").throughput,
        ntask(star, "M"),
    ])

    pipeline = TaskGraph.chain([1, 1, 1], [1, 1])
    rows.append([
        "3-stage pipeline on 3-chain",
        solve_dag_collection(chain_platform, pipeline, "N0").throughput,
        Fraction(1),
    ])

    bulky = TaskGraph.chain([1, 1, 1], [5, 5])
    rows.append([
        "3-stage pipeline, 5x heavier inter-stage files",
        solve_dag_collection(chain_platform, bulky, "N0").throughput,
        None,
    ])

    light_input = TaskGraph.single_task(work=1, input_size=1)
    rows.append([
        "single task on 3-chain, input size 1",
        solve_dag_collection(chain_platform, light_input, "N0").throughput,
        None,
    ])

    heavy_input = TaskGraph.single_task(work=1, input_size=5)
    rows.append([
        "single task on 3-chain, input size 5",
        solve_dag_collection(chain_platform, heavy_input, "N0").throughput,
        None,
    ])

    fj2 = TaskGraph.fork_join(2, branch_work=2)
    rows.append([
        "fork-join (2 branches, work 2) on star",
        solve_dag_collection(star, fj2, "M").throughput,
        None,
    ])

    fj4 = TaskGraph.fork_join(4, branch_work=2)
    rows.append([
        "fork-join (4 branches, work 2) on star",
        solve_dag_collection(star, fj4, "M").throughput,
        None,
    ])
    return rows


def test_c9_dag_collections(benchmark):
    rows = benchmark.pedantic(run_dag_suite, rounds=1, iterations=1)
    by_name = {r[0]: r for r in rows}
    # degenerate == SSMS
    r = by_name["single task on star (== SSMS)"]
    assert r[1] == r[2]
    # perfect pipeline
    assert by_name["3-stage pipeline on 3-chain"][1] == 1
    # heavy INTER-STAGE files do NOT throttle: the LP colocates whole
    # pipelines per instance so those files never cross a link — a
    # genuinely non-obvious mixed-parallelism optimisation
    assert (by_name["3-stage pipeline, 5x heavier inter-stage files"][1]
            == by_name["3-stage pipeline on 3-chain"][1])
    # input files that MUST ship to distribute any work do throttle
    assert (by_name["single task on 3-chain, input size 5"][1]
            < by_name["single task on 3-chain, input size 1"][1])
    # wider fork-join does more work per instance: lower instance rate
    assert (by_name["fork-join (4 branches, work 2) on star"][1]
            < by_name["fork-join (2 branches, work 2) on star"][1])
    report(
        "C9: DAG collection throughput (instances per time-unit)",
        render_table(
            ["workload", "throughput", "reference"],
            [[n, t, "" if ref is None else ref] for n, t, ref in rows],
        ),
    )
