"""C5 — §4.2: asymptotic optimality of the reconstructed schedule.

Shape: tasks processed in K periods = K*T*ntask − constant; the constant
(the initialisation deficit) does not grow with K, so the efficiency
ratio climbs to 1 like 1 − C/K.  Also: on finite batches, the steady-state
schedule's makespan converges to the lower bound and stays within a few
percent of the EFT list-scheduling heuristic.
"""

from fractions import Fraction

from repro import (
    PeriodicRunner,
    generators,
    makespan_comparison,
    reconstruct_schedule,
    solve_master_slave,
)
from repro.analysis.bounds import deficit_is_constant, efficiency_series
from repro.analysis.reporting import render_series, render_table

from conftest import report


def run_asymptotics():
    platform = generators.grid2d(3, 3, seed=3)
    sol = solve_master_slave(platform, "G0_0")
    sched = reconstruct_schedule(sol)
    horizons = [4, 8, 16, 32, 64, 128]
    runs = [PeriodicRunner(sched).run(k) for k in horizons]
    series = efficiency_series(runs)
    constant = deficit_is_constant(runs[2:])
    star = generators.star(4, master_w=2, worker_w=[1, 2, 3, 4],
                           link_c=[1, 1, 2, 3])
    batch_rows = makespan_comparison(star, "M", [20, 100, 500])
    return series, constant, runs[-1].deficit, batch_rows


def test_c5_asymptotic_optimality(benchmark):
    series, constant, deficit, batch_rows = benchmark.pedantic(
        run_asymptotics, rounds=1, iterations=1
    )
    # deficit constant across horizons (the strong §4.2 result)
    assert constant
    # efficiency is monotone and ends close to 1
    effs = [float(e) for _, e in series]
    assert effs == sorted(effs)
    assert effs[-1] > 0.97
    # finite batches: both above the bound; the steady-state schedule's
    # overhead (initialisation + partial final period) is asymptotically
    # negligible — by the largest batch it matches EFT within 5%
    for n, eft, ss, lb in batch_rows:
        assert eft >= lb and ss >= lb
    n, eft, ss, lb = batch_rows[-1]
    assert float(ss) <= 1.05 * float(eft)
    report(
        "C5: efficiency(K) -> 1 with a constant deficit "
        f"(deficit = {deficit} tasks at every horizon)",
        render_series(series, "periods K", "tasks done / K*T*ntask")
        + "\n\n"
        + render_table(
            ["batch n", "EFT makespan", "steady-state makespan",
             "bound n/ntask"],
            [[n, float(e), float(s), float(l)]
             for n, e, s, l in batch_rows],
            title="finite batches (star platform)",
        ),
    )
