"""S8 — beating Zipf skew: hot-key replication + broker near-cache.

The scenario is the ROADMAP's "one scorching key melts its shard": a
heavily skewed request stream (Zipf ``s = 1.2``, where the single
hottest platform draws ~20% of all traffic) over a 10k-platform corpus.
Consistent hashing alone pins that hot head to whichever shards own the
fingerprints — the owners saturate while their neighbours idle, and
adding shards stops helping.

Three configurations, per-shard resources held fixed:

* **1 shard, plain** — the unsharded-capacity baseline: the corpus
  thrashes one cache *and* every request funnels through one engine;
* **8 shards, plain** — capacity scales but the hot head still lands
  on its owners (the per-shard load imbalance shows the skew);
* **8 shards, hot-key path** — ``replication_factor=2`` fans hot keys
  to two ring successors with rotating reads, and the broker-front
  near-cache (generation-checked, so staleness is impossible) absorbs
  the hottest head before it ever reaches a shard.

Measured per configuration: sustained req/s over the steady-state
stream (after an untimed priming pass), stream hit rate, per-shard
load imbalance (max/mean of shard-served requests during the timed
stream), near-cache traffic, and exactness — every result is asserted
``Fraction``-identical to an unsharded reference broker, and the
stale-serve count is asserted zero (``near_cache_stale_rejects`` is
reported; with no invalidations in-stream it stays 0 too).

Asserted shape (full mode): >= 4x req/s for 8 hot-key shards vs the
1-shard baseline, load imbalance <= 2x under replication+near-cache,
zero stale serves.  Smoke mode (CI): 2 shards with ``R=2`` + near-cache
on, asserting exactness and that the hottest key's owner serves < 1/2
of the stream.  Emits ``BENCH_skew.json`` at the repo root::

    python benchmarks/bench_s8_skew.py [--smoke] [--out FILE]

or through pytest (``pytest benchmarks/bench_s8_skew.py -s``).
"""

from __future__ import annotations

import argparse
import json
import random
import time
from pathlib import Path

from repro.service import Broker, ShardedBroker, SolutionCache

from bench_s2_sharding import build_corpus

ZIPF_EXPONENT = 1.2  # a scorching head: rank 1 draws ~20% of traffic


def zipf_sequence(corpus: list, n_requests: int, seed: int = 8) -> list:
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** ZIPF_EXPONENT
               for rank in range(len(corpus))]
    return rng.choices(corpus, weights=weights, k=n_requests)


def reference_throughputs(corpus: list) -> dict:
    """fingerprint -> exact throughput from one big unsharded broker."""
    with Broker(executor="sync",
                cache=SolutionCache(max_size=2 * len(corpus))) as broker:
        return {req.fingerprint(): broker.solve(req).throughput
                for req in corpus}


def _stream_shard_loads(before: dict, after: dict) -> dict:
    """Per-shard requests served during the timed stream only."""
    primed = {s["shard"]: s["requests"] for s in before}
    return {s["shard"]: s["requests"] - primed.get(s["shard"], 0)
            for s in after}


def run_config(
    label: str,
    corpus: list,
    sequence: list,
    reference: dict,
    shards: int,
    cache_size: int,
    replication: int,
    near_cache: int,
    hot_threshold: int,
    heat_capacity: int,
) -> dict:
    with ShardedBroker(shards=shards, shard_mode="thread",
                       cache_size=cache_size, workers=1,
                       replication_factor=replication,
                       near_cache_size=near_cache,
                       hot_threshold=hot_threshold,
                       heat_capacity=heat_capacity) as sharded:
        for request in corpus:  # untimed priming pass
            sharded.solve(request)
        snap = sharded.snapshot()
        before_cache, before_shards = snap["cache"], snap["per_shard"]
        start = time.perf_counter()
        results = [sharded.solve(request) for request in sequence]
        elapsed = time.perf_counter() - start
        snap = sharded.snapshot()
        after_cache, after_shards = snap["cache"], snap["per_shard"]
        replication_snap = snap.get("replication")
        hot_primary = sharded.ring.route(corpus[0].fingerprint())
    stale_serves = sum(
        1 for result in results
        if result.throughput != reference[result.fingerprint]
    )
    assert stale_serves == 0, (
        f"{label}: {stale_serves} results diverged from the unsharded "
        f"reference broker"
    )
    hits = after_cache["hits"] - before_cache["hits"]
    misses = after_cache["misses"] - before_cache["misses"]
    loads = _stream_shard_loads(before_shards, after_shards)
    mean_load = sum(loads.values()) / len(loads)
    out = {
        "config": label,
        "shards": shards,
        "replication_factor": replication,
        "near_cache_size": near_cache,
        "elapsed_seconds": elapsed,
        "requests_per_second": len(sequence) / elapsed,
        "stream_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        "stream_misses": misses,
        "stale_serves": stale_serves,
        "shard_load_imbalance": (max(loads.values()) / mean_load
                                 if mean_load else None),
        "hot_shard_stream_share": loads.get(hot_primary, 0) / len(sequence),
    }
    if replication_snap is not None:
        near = replication_snap.get("near_cache") or {}
        out["replicated_puts"] = replication_snap["replicated_puts"]
        out["replica_reads"] = replication_snap["replica_reads"]
        out["near_cache_hits"] = near.get("hits", 0)
        out["near_cache_stale_rejects"] = near.get("stale_rejects", 0)
        assert out["near_cache_stale_rejects"] == 0  # nothing invalidates
    return out


# ----------------------------------------------------------------------
def run(smoke: bool = False) -> dict:
    # per-shard cache ~1/5 of the corpus: one shard thrashes the Zipf
    # tail (LRU churn makes it worse than the top-C optimum), 8 shards
    # hold all of it.  The heat sketch is sized so the space-saving
    # over-estimate floor (~corpus/capacity) stays below the hot
    # threshold — only the genuinely hot head replicates.
    corpus_size = 200 if smoke else 10_000
    n_requests = 600 if smoke else 20_000
    cache_size = 64 if smoke else 2048
    heat_capacity = 128 if smoke else 2048
    hot_threshold = 8
    hot_shards = 2 if smoke else 8

    corpus = build_corpus(corpus_size)
    sequence = zipf_sequence(corpus, n_requests)
    reference = reference_throughputs(corpus)

    common = dict(corpus=corpus, sequence=sequence, reference=reference,
                  cache_size=cache_size, hot_threshold=hot_threshold,
                  heat_capacity=heat_capacity)
    configs = [
        run_config("1-shard plain", shards=1, replication=1,
                   near_cache=0, **common),
        run_config(f"{hot_shards}-shard plain", shards=hot_shards,
                   replication=1, near_cache=0, **common),
        run_config(f"{hot_shards}-shard R=2 + near-cache",
                   shards=hot_shards, replication=2, near_cache=64,
                   **common),
    ]

    baseline, plain, hot = configs
    for config in configs:
        config["speedup_vs_1shard"] = (
            config["requests_per_second"] / baseline["requests_per_second"]
        )

    report = {
        "benchmark": "S8 Zipf skew: hot-key replication + near-cache",
        "quick": smoke,
        "corpus_size": corpus_size,
        "requests": n_requests,
        "per_shard_cache_entries": cache_size,
        "zipf_exponent": ZIPF_EXPONENT,
        "baseline_rps": baseline["requests_per_second"],
        "configs": configs,
        "exactness": "all results Fraction-identical to unsharded broker",
        "stale_serves": 0,
    }
    if smoke:
        # CI gate: the hottest key's owner must not dominate the stream
        # once replication + near-cache are on
        assert hot["hot_shard_stream_share"] < 0.5, (
            f"hot shard served {hot['hot_shard_stream_share']:.0%} of the "
            f"stream with R=2 + near-cache (need < 50%)"
        )
        assert hot["near_cache_hits"] > 0
    else:
        assert hot["speedup_vs_1shard"] >= 4.0, (
            f"hot-key path: only {hot['speedup_vs_1shard']:.2f}x at "
            f"{hot_shards} shards vs the 1-shard baseline (need >= 4x)"
        )
        assert hot["shard_load_imbalance"] <= 2.0, (
            f"hot-key path: {hot['shard_load_imbalance']:.2f}x max/mean "
            f"shard load (need <= 2x)"
        )
        report["speedup_hot_path"] = hot["speedup_vs_1shard"]
        report["imbalance_plain_vs_hot"] = [
            plain["shard_load_imbalance"], hot["shard_load_imbalance"],
        ]
    return report


def test_s8_skew(capsys):
    """Pytest entry point (smoke mode; run the script for full numbers)."""
    report = run(smoke=True)
    with capsys.disabled():
        print("\n==== S8: Zipf skew / hot-key replication ====")
        print(json.dumps(report, indent=2))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small corpus, 2 shards, hot-shard share "
                             "gate only (CI smoke run)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: repo-root "
                             "BENCH_skew.json)")
    args = parser.parse_args(argv)
    report = run(smoke=args.smoke)
    out = Path(args.out) if args.out else (
        Path(__file__).resolve().parent.parent / "BENCH_skew.json"
    )
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
