"""S6 — async multiplexed transport: concurrent in-flight requests vs
the sync one-request-per-socket path, and cross-broker coalescing.

The paper's thesis is throughput over per-request latency; PR 8 rebuilt
the service core on asyncio to make that real at the transport layer.
Two measurements against a real ``shard-serve --async`` subprocess:

* **in-flight scaling** — one warmed shard, one TCP connection, the
  same zipf workload (the bench_s1 pool): the sync :class:`TcpTransport`
  (one request in flight per socket — the pre-PR-8 semantics) vs the
  multiplexed :class:`AsyncTcpTransport` at 1 / 8 / 64 concurrent
  in-flight requests.  Reported: sustained req/s and per-request
  p50/p99 (queueing included — the latency/throughput trade is the
  point).  Every reply is decoded and asserted ``Fraction``-identical
  to an unsharded reference broker.  The full run asserts the
  64-in-flight throughput is at least 2x the sync transport.

* **cross-broker coalescing** — two :class:`ShardedBroker`\\ s
  (``async_transport=True``) hammer ONE fingerprint on one shared
  shard whose single solve worker is parked behind a ``sleep`` op, so
  every request is provably concurrent: the shard must run the engine
  exactly once (counter-asserted), answer every broker
  ``Fraction``-identically, and count the rest in ``shard_coalesced``.

Emits ``BENCH_async.json`` at the repo root.  Run standalone::

    python benchmarks/bench_s6_async.py [--smoke] [--out FILE]

or through pytest (``pytest benchmarks/bench_s6_async.py -s``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.service import (
    Broker,
    ShardedBroker,
    SolutionCache,
    AsyncTcpTransport,
    TcpTransport,
    connect_async,
)
from repro.service.api import request_to_dict
from repro.service.wire import result_from_wire

from bench_s1_service import _zipf_request_pool

REPO_ROOT = Path(__file__).resolve().parent.parent


# ----------------------------------------------------------------------
# async shard-serve subprocess management
# ----------------------------------------------------------------------
def _free_port() -> int:
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def start_async_shard(port: int, solve_workers: int) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "shard-serve", "--async",
         "--port", str(port), "--solve-workers", str(solve_workers)],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.time() + 30
    while time.time() < deadline:
        try:
            socket.create_connection(("127.0.0.1", port), timeout=0.2).close()
            return process
        except OSError:
            time.sleep(0.1)
    process.kill()
    raise RuntimeError(f"shard-serve --async on :{port} never came up")


def stop(process: subprocess.Popen) -> None:
    if process.poll() is None:
        process.terminate()
        try:
            process.wait(timeout=5)
        except subprocess.TimeoutExpired:  # pragma: no cover
            process.kill()
            process.wait()


# ----------------------------------------------------------------------
# workload
# ----------------------------------------------------------------------
def build_workload(n_requests: int):
    pool = list(_zipf_request_pool())
    sequence = [pool[i % len(pool)] for i in range(n_requests)]
    msgs = [({"op": "solve", "fp": r.fingerprint(),
              "request": request_to_dict(r)}, r.fingerprint())
            for r in sequence]
    return pool, msgs


def reference_throughputs(pool) -> dict:
    with Broker(executor="sync",
                cache=SolutionCache(max_size=4 * len(pool))) as broker:
        return {r.fingerprint(): broker.solve(r).throughput for r in pool}


def _check(reply, fp, reference, label: str) -> None:
    assert reply.get("ok"), f"{label}: shard error {reply!r}"
    result = result_from_wire(reply["result"])
    assert result.throughput == reference[fp], (
        f"{label}: {fp[:12]} returned {result.throughput}, "
        f"reference {reference[fp]}"
    )


def _latency_row(label, in_flight, n, elapsed, latencies) -> dict:
    ordered = sorted(latencies)
    return {
        "transport": label,
        "in_flight": in_flight,
        "requests": n,
        "elapsed_seconds": elapsed,
        "requests_per_second": n / elapsed,
        "p50_ms": ordered[len(ordered) // 2] * 1e3,
        "p99_ms": ordered[min(len(ordered) - 1,
                              (len(ordered) * 99) // 100)] * 1e3,
    }


# ----------------------------------------------------------------------
# 1) in-flight scaling on one connection
# ----------------------------------------------------------------------
def run_sync_serial(port, msgs, reference) -> dict:
    transport = TcpTransport("127.0.0.1", port)
    try:
        latencies = []
        start = time.perf_counter()
        for msg, fp in msgs:
            t0 = time.perf_counter()
            reply = transport.request(msg, timeout=60)
            latencies.append(time.perf_counter() - t0)
            _check(reply, fp, reference, "sync")
        elapsed = time.perf_counter() - start
    finally:
        transport.close()
    return _latency_row("sync", 1, len(msgs), elapsed, latencies)


def run_async_window(port, msgs, window, reference) -> dict:
    async def go():
        transport = AsyncTcpTransport("127.0.0.1", port)
        gate = asyncio.Semaphore(window)
        latencies = []

        async def one(msg, fp):
            async with gate:
                t0 = time.perf_counter()
                reply = await transport.request(msg, timeout=120)
                latencies.append(time.perf_counter() - t0)
                return fp, reply

        start = time.perf_counter()
        replies = await asyncio.gather(
            *(one(msg, fp) for msg, fp in msgs))
        elapsed = time.perf_counter() - start
        await transport.close()
        return elapsed, latencies, replies

    elapsed, latencies, replies = asyncio.run(go())
    for fp, reply in replies:
        _check(reply, fp, reference, f"async@{window}")
    return _latency_row("async", window, len(msgs), elapsed, latencies)


# ----------------------------------------------------------------------
# 2) cross-broker coalescing dedup
# ----------------------------------------------------------------------
def run_coalescing(concurrent: int) -> dict:
    pool, _msgs = build_workload(1)
    request = pool[0]
    reference = reference_throughputs([request])
    port = _free_port()
    server = start_async_shard(port, solve_workers=1)
    address = f"127.0.0.1:{port}"
    blocker = connect_async(address)
    brokers = [ShardedBroker(shards=0, shard_addresses=[address],
                             async_transport=True) for _ in range(2)]
    try:
        hold = threading.Thread(
            target=lambda: blocker.request(
                {"op": "sleep", "seconds": 1.0}, timeout=30))
        hold.start()
        time.sleep(0.25)

        results = [None] * concurrent

        def run_one(i):
            results[i] = brokers[i % 2].solve(request)

        start = time.perf_counter()
        threads = [threading.Thread(target=run_one, args=(i,))
                   for i in range(concurrent)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start
        hold.join()

        snap = blocker.request({"op": "snapshot"}, timeout=5)["snapshot"]
        engine_solves = snap["metrics"]["endpoints"]["solve"]["count"]
        coalesced = snap["async"]["shard_coalesced"]
        assert engine_solves == 1, (
            f"{concurrent} concurrent identical requests ran the engine "
            f"{engine_solves} times — remote coalescing failed"
        )
        assert coalesced == concurrent - 1, (coalesced, concurrent)
        for result in results:
            assert result is not None
            assert result.throughput == reference[request.fingerprint()]
    finally:
        for broker in brokers:
            broker.close()
        blocker.close()
        stop(server)
    return {
        "brokers": 2,
        "concurrent_requests": concurrent,
        "engine_solves": engine_solves,
        "shard_coalesced": coalesced,
        "dedup_factor": concurrent / engine_solves,
        "elapsed_seconds": elapsed,
        "exact": True,
    }


# ----------------------------------------------------------------------
def run(smoke: bool = False) -> dict:
    n_requests = 150 if smoke else 1500
    windows = (1, 8, 64)
    min_speedup = 1.1 if smoke else 2.0

    pool, msgs = build_workload(n_requests)
    reference = reference_throughputs(pool)

    port = _free_port()
    server = start_async_shard(port, solve_workers=4)
    try:
        # warm the shard's cache once so every timed pass measures the
        # transport and mux, not cold LP solves
        warm = TcpTransport("127.0.0.1", port)
        for request in pool:
            _check(warm.request(
                {"op": "solve", "fp": request.fingerprint(),
                 "request": request_to_dict(request)}, timeout=120),
                request.fingerprint(), reference, "warm")
        warm.close()

        sync_row = run_sync_serial(port, msgs, reference)
        async_rows = [run_async_window(port, msgs, w, reference)
                      for w in windows]
    finally:
        stop(server)

    sync_rps = sync_row["requests_per_second"]
    for row in async_rows:
        row["rps_vs_sync"] = row["requests_per_second"] / sync_rps
    speedup_64 = async_rows[-1]["rps_vs_sync"]
    assert speedup_64 >= min_speedup, (
        f"64 in-flight requests on one connection reached only "
        f"{speedup_64:.2f}x the sync transport (minimum {min_speedup}x)"
    )

    coalescing = run_coalescing(concurrent=4 if smoke else 8)

    return {
        "benchmark": "S6 async multiplexed transport",
        "quick": smoke,
        "requests": n_requests,
        "pool_size": len(pool),
        "sync": sync_row,
        "async_windows": async_rows,
        "speedup_64_vs_sync": speedup_64,
        "coalescing": coalescing,
        "exactness": "every reply on every transport decoded and "
                     "asserted Fraction-identical to the unsharded "
                     "reference broker",
    }


def test_s6_async(capsys):
    """Pytest entry point (smoke mode; run the script for full numbers)."""
    report = run(smoke=True)
    with capsys.disabled():
        print("\n==== S6: async multiplexed transport ====")
        print(json.dumps(report, indent=2))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small stream (CI smoke run)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: repo-root "
                             "BENCH_async.json)")
    args = parser.parse_args(argv)
    report = run(smoke=args.smoke)
    out = Path(args.out) if args.out else (REPO_ROOT / "BENCH_async.json")
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
