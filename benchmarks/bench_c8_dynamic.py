"""C8 — §5.5: dynamic adaptation to a drifting platform.

Shape: oracle >= adaptive > static in total work over drifting epochs
(averaged across seeds); the oracle is exactly optimal each epoch.  Also:
on trees, the fully local autonomous protocol equals the global LP.
"""

from fractions import Fraction

from repro import (
    TimeVaryingPlatform,
    autonomous_throughput,
    generators,
    run_adaptive,
    solve_master_slave,
)
from repro.analysis.reporting import render_table

from conftest import report

SEEDS = (3, 7, 21, 42, 99)


def run_dynamic_suite():
    base = generators.star(4, master_w=2, worker_w=[1, 2, 3, 4],
                           link_c=[1, 1, 2, 3])
    totals = {"static": Fraction(0), "adaptive": Fraction(0),
              "oracle": Fraction(0)}
    for seed in SEEDS:
        for strategy in totals:
            tv = TimeVaryingPlatform(base, drift=0.35, seed=seed)
            res = run_adaptive(tv, "M", epochs=6, strategy=strategy)
            totals[strategy] += res.total_achieved
    # the autonomous-protocol check on trees
    tree = generators.binary_tree(3, seed=5)
    auto = autonomous_throughput(tree, "T0")
    lp = solve_master_slave(tree, "T0").throughput
    return totals, auto, lp


def test_c8_dynamic_adaptation(benchmark):
    totals, auto, lp = benchmark.pedantic(
        run_dynamic_suite, rounds=1, iterations=1
    )
    assert totals["adaptive"] > totals["static"]
    assert totals["oracle"] >= totals["adaptive"]
    assert auto == lp
    rows = [
        [s, float(totals[s]),
         float(totals[s] / totals["oracle"])]
        for s in ("static", "adaptive", "oracle")
    ]
    report(
        "C8: drifting platform, total throughput over "
        f"{len(SEEDS)} seeds x 6 epochs "
        f"(tree check: autonomous {auto} == LP {lp})",
        render_table(["strategy", "total", "vs oracle"], rows),
    )
