"""S1 — the scheduling service: cached vs cold latency, sustained req/s.

Measures, on the paper's Figure 1 platform and a Zipf-distributed mix of
requests across platform families and problem kinds:

* cold solve latency (p50/p99) — full LP build + solve per request;
* cache-hit latency (p50/p99) — fingerprint + LRU lookup;
* warm re-solve latency — weight-only mutation through the incremental
  path, asserted exactly equal to a cold solve of the mutated platform;
* sustained mixed-request throughput and cache hit rate under a Zipf
  request distribution (a few hot platforms, a long tail).

Emits ``BENCH_service.json`` at the repo root so later PRs have a
trajectory to beat.  Run standalone::

    python benchmarks/bench_s1_service.py [--quick] [--out FILE]

or through pytest (``pytest benchmarks/bench_s1_service.py -s``).

Asserted shape: cache hits are >= 10x faster than cold solves (they are
typically ~100x), the single-process broker sustains >= 100 mixed
requests/sec with >= 50% hit rate on the Zipf mix, and a warm re-solve
after a weight-only mutation reproduces the cold throughput exactly.
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import time
from fractions import Fraction
from pathlib import Path

from repro import Broker, SolveRequest, generators
from repro.core.master_slave import solve_master_slave
from repro.service import EndpointMetrics, IncrementalSolver


def _percentile(samples, p):
    """Nearest-rank percentile via the service's own metrics machinery, so
    BENCH_service.json uses the same statistic the /metrics endpoint reports."""
    em = EndpointMetrics("bench", reservoir_size=max(len(samples), 1))
    for s in samples:
        em.observe(s)
    return em.percentile(p)


def _time(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


# ----------------------------------------------------------------------
def bench_cold_vs_hit(quick: bool) -> dict:
    """Figure-1 master-slave: cold solve vs cache hit, p50/p99."""
    fig1 = generators.paper_figure1()
    req = SolveRequest(problem="master-slave", platform=fig1, master="P1")
    rounds_cold = 10 if quick else 30
    rounds_hit = 50 if quick else 300

    cold = []
    for _ in range(rounds_cold):
        with Broker(executor="sync", incremental=False) as broker:
            cold.append(_time(lambda: broker.solve(req)))

    hits = []
    with Broker(executor="sync") as broker:
        broker.solve(req)  # prime
        for _ in range(rounds_hit):
            hits.append(_time(lambda: broker.solve(req)))
        assert broker.cache.stats.hits == rounds_hit

    cold_p50, hit_p50 = _percentile(cold, 50), _percentile(hits, 50)
    speedup = cold_p50 / hit_p50
    assert speedup >= 10, (
        f"cache hit only {speedup:.1f}x faster than cold (need >= 10x)"
    )
    return {
        "cold_p50_ms": cold_p50 * 1e3,
        "cold_p99_ms": _percentile(cold, 99) * 1e3,
        "hit_p50_ms": hit_p50 * 1e3,
        "hit_p99_ms": _percentile(hits, 99) * 1e3,
        "hit_speedup_p50": speedup,
    }


def bench_warm_resolve(quick: bool) -> dict:
    """Weight-only mutations: warm re-solve latency + exactness."""
    fig1 = generators.paper_figure1()
    inc = IncrementalSolver()
    inc.solve_master_slave(fig1, "P1")
    rounds = 10 if quick else 40
    latencies = []
    rng = random.Random(20040427)
    for _ in range(rounds):
        factor = Fraction(rng.randint(1, 16), rng.randint(1, 16))
        mutated = fig1.scale(compute=factor, comm=1 / factor)
        start = time.perf_counter()
        warm = inc.solve_master_slave(mutated, "P1")
        latencies.append(time.perf_counter() - start)
        cold = solve_master_slave(mutated, "P1")
        assert warm.throughput == cold.throughput, (
            f"warm {warm.throughput} != cold {cold.throughput}"
        )
    assert inc.stats.warm_solves == rounds
    return {
        "warm_resolve_p50_ms": _percentile(latencies, 50) * 1e3,
        "warm_resolves_checked": rounds,
    }


def _zipf_request_pool() -> list:
    """Distinct request specs across platform families and problem kinds."""
    fig1 = generators.paper_figure1()
    fig2 = generators.paper_figure2_multicast()
    pool = [
        SolveRequest(problem="master-slave", platform=fig1, master="P1"),
        SolveRequest(problem="scatter", platform=fig2, source="P0",
                     targets=("P5", "P6")),
        SolveRequest(problem="broadcast", platform=generators.chain(4),
                     source="N0"),
        SolveRequest(problem="multicast", platform=fig2, source="P0",
                     targets=("P5", "P6")),
    ]
    for n in range(2, 6):
        pool.append(SolveRequest(
            problem="master-slave",
            platform=generators.star(n, worker_w=list(range(1, n + 1)),
                                     link_c=[1] * n),
            master="M"))
    for depth in (2, 3):
        pool.append(SolveRequest(
            problem="master-slave",
            platform=generators.binary_tree(depth, seed=depth),
            master="T0"))
    for length in (3, 5):
        pool.append(SolveRequest(
            problem="broadcast", platform=generators.chain(length),
            source="N0"))
    return pool


def bench_zipf_mix(quick: bool) -> dict:
    """Sustained requests/sec + hit rate on a Zipf-distributed stream.

    Requests are issued one by one (the serving path, not the batch path)
    so every request pays a fingerprint + cache lookup, which is what the
    reported hit rate measures.
    """
    pool = _zipf_request_pool()
    n_requests = 200 if quick else 800
    rng = random.Random(1)
    # Zipf-ish: rank r drawn with probability ~ 1/r^1.1
    weights = [1.0 / (r + 1) ** 1.1 for r in range(len(pool))]
    sequence = rng.choices(pool, weights=weights, k=n_requests)

    with Broker(executor="sync") as broker:
        start = time.perf_counter()
        results = [broker.solve(req) for req in sequence]
        elapsed = time.perf_counter() - start
        hit_rate = broker.cache.stats.hit_rate
        distinct = len({r.fingerprint for r in results})

    rps = n_requests / elapsed
    assert rps >= 100, f"only {rps:.0f} requests/sec (need >= 100)"
    assert hit_rate >= 0.5, f"hit rate {hit_rate:.2f} (need >= 0.5)"
    return {
        "requests": n_requests,
        "distinct_requests": distinct,
        "elapsed_seconds": elapsed,
        "requests_per_second": rps,
        "cache_hit_rate": hit_rate,
    }


# ----------------------------------------------------------------------
def run(quick: bool = False) -> dict:
    report = {
        "benchmark": "S1 service",
        "quick": quick,
        "latency": bench_cold_vs_hit(quick),
        "warm_resolve": bench_warm_resolve(quick),
        "zipf_mix": bench_zipf_mix(quick),
    }
    return report


def test_s1_service(capsys):
    """Pytest entry point (quick mode; run the script for full numbers)."""
    report = run(quick=True)
    with capsys.disabled():
        print("\n==== S1: scheduling service ====")
        print(json.dumps(report, indent=2))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller rounds (CI smoke run)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: repo-root "
                             "BENCH_service.json)")
    args = parser.parse_args(argv)
    report = run(quick=args.quick)
    out = Path(args.out) if args.out else (
        Path(__file__).resolve().parent.parent / "BENCH_service.json"
    )
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
