"""F3d — Figure 3(d): the conflict that makes the LP bound unachievable.

The paper's headline negative result.  Edge P3->P4 must carry one ``a``
and one ``b`` message (distinct instances) every two time-units at cost 2
each — occupation 2 > 1.  The true optimum, computed by exhaustive Steiner
arborescence packing, is 3/4 < 1; the best single tree only reaches 1/2.
"""

from fractions import Fraction

from repro import analyze_figure2, best_single_tree, packing_to_schedule, solve_multicast
from repro.analysis.reporting import render_table

from conftest import report


def full_analysis():
    rep = analyze_figure2()
    analysis = solve_multicast(rep.platform, "P0", ["P5", "P6"])
    single_rate, single_tree = best_single_tree(
        rep.platform, "P0", ["P5", "P6"]
    )
    schedule = packing_to_schedule(
        rep.platform, analysis.packing, "P0", "multicast"
    )
    return rep, analysis, single_rate, schedule


def test_fig3_conflict(benchmark):
    rep, analysis, single_rate, schedule = benchmark.pedantic(
        full_analysis, rounds=2, iterations=1
    )
    # the conflict of Figure 3(d)
    assert rep.conflicts == {("P3", "P4"): Fraction(2)}
    assert rep.is_counterexample()
    # the bracket: 1/2 (sum-LP) <= 1/2 (single tree) < 3/4 (optimum) < 1
    assert rep.sum_lp == Fraction(1, 2)
    assert single_rate == Fraction(1, 2)
    assert rep.achievable == Fraction(3, 4)
    assert rep.max_lp == 1
    # and the 3/4 packing actually executes as a valid periodic schedule
    assert schedule.throughput == Fraction(3, 4)

    rows = [
        ["sum-rule LP (always achievable)", rep.sum_lp],
        ["best single multicast tree", single_rate],
        ["optimal tree packing (true optimum)", rep.achievable],
        ["max-rule LP bound (NOT achievable)", rep.max_lp],
    ]
    conflict_lines = [
        f"  {u} -> {v}: required occupation {occ} > 1"
        for (u, v), occ in rep.conflicts.items()
    ]
    report(
        "F3d: reconstruction conflict and the multicast bracket",
        "\n".join(conflict_lines) + "\n\n"
        + render_table(["throughput level", "value"], rows)
        + f"\n\npacking uses {len(analysis.packing)} trees; schedule "
          f"period {schedule.period}, throughput {schedule.throughput}",
    )
