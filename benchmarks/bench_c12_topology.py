"""C12 — §5.3: scheduling on discovered topologies.

Shape: the inferred views are subgraphs of the truth, so
ntask(env-tree) <= ntask(alnem) <= ntask(truth); plans made on the tree
view are *safe* (they realise their promised rate on the real platform);
and for single-master tasking the tree view is usually exact — the
measured justification for ENV's design focus.
"""

from fractions import Fraction

from repro import generators, ntask, view_quality
from repro.core.master_slave import solve_master_slave
from repro.dynamic.adaptive import realized_rate
from repro.platform.topology import env_tree_view
from repro.analysis.reporting import render_table

from conftest import report

SEEDS = (1, 5, 9, 13, 21, 42)


def run_topology_suite():
    rows = []
    exact_tree_views = 0
    for seed in SEEDS:
        platform = generators.random_connected(8, seed=seed)
        q = view_quality(platform, "R0")
        tree = env_tree_view(platform, "R0")
        plan = solve_master_slave(tree, "R0")
        achieved = realized_rate(tree, platform, "R0", plan)
        safe = achieved == plan.throughput
        if q["env-tree"] == q["truth"]:
            exact_tree_views += 1
        rows.append([
            f"seed {seed}",
            q["env-tree"], q["alnem"], q["truth"], q["complete"],
            "yes" if safe else "NO",
        ])
    return rows, exact_tree_views


def test_c12_topology_views(benchmark):
    rows, exact_tree_views = benchmark.pedantic(
        run_topology_suite, rounds=1, iterations=1
    )
    for label, tree, alnem, truth, complete, safe in rows:
        assert tree <= alnem <= truth, label
        assert safe == "yes", label
    # ENV's design claim: the tree view is usually exact for master-slave
    assert exact_tree_views >= len(SEEDS) // 2
    report(
        "C12: ntask under each discovered view "
        f"(tree view exact on {exact_tree_views}/{len(SEEDS)} platforms)",
        render_table(
            ["platform", "env-tree", "alnem", "truth", "complete (pings)",
             "tree plan safe?"],
            rows,
        ),
    )
