"""A5 — study: polynomial multicast heuristics vs the exact optimum.

The true multicast optimum is NP-hard [7]; on small platforms we can
enumerate and compare.  Shape: single trees lose to the heuristic packing,
which reaches the exhaustive optimum on every small instance tested — and
keeps running on platforms where enumeration is hopeless.
"""

import time
from fractions import Fraction

from repro.core.multicast import solve_multicast
from repro.core.steiner import candidate_trees, heuristic_multicast_packing
from repro.core.trees import tree_throughput
from repro.platform import generators
from repro.analysis.reporting import render_table

from conftest import report

SMALL_CASES = [
    ("fig2", generators.paper_figure2_multicast(), "P0", ["P5", "P6"]),
    ("grid2x3", generators.grid2d(2, 3, seed=1), "G0_0", ["G1_2", "G0_2"]),
    ("random6", generators.random_connected(6, seed=17,
                                            extra_edge_prob=0.15),
     "R0", ["R4", "R5"]),
    ("random7", generators.random_connected(7, seed=23), "R0",
     ["R3", "R5", "R6"]),
]


def run_heuristic_comparison():
    rows = []
    for name, platform, source, targets in SMALL_CASES:
        pool = candidate_trees(platform, source, targets)
        best_single = max(
            (tree_throughput(platform, t) for t in pool),
            default=Fraction(0),
        )
        heuristic, _ = heuristic_multicast_packing(platform, source, targets)
        exact = solve_multicast(platform, source, targets)
        rows.append([
            name, len(pool), best_single, heuristic, exact.tree_optimal,
            "yes" if heuristic == exact.tree_optimal else "no",
        ])
    # scalability smoke check on a platform beyond enumeration
    big = generators.grid2d(4, 4, seed=2)
    t0 = time.perf_counter()
    big_tp, _ = heuristic_multicast_packing(
        big, "G0_0", ["G3_3", "G0_3", "G3_0"]
    )
    big_ms = (time.perf_counter() - t0) * 1000
    return rows, big_tp, big_ms


def test_a5_multicast_heuristics(benchmark):
    rows, big_tp, big_ms = benchmark.pedantic(
        run_heuristic_comparison, rounds=1, iterations=1
    )
    for name, pool, single, heuristic, exact, hit in rows:
        assert single <= heuristic <= exact
    # the heuristic packing matches the optimum on these instances
    hits = sum(1 for r in rows if r[5] == "yes")
    assert hits >= len(rows) - 1
    assert big_tp > 0
    report(
        "A5: multicast heuristics vs exhaustive optimum "
        f"(4x4-grid heuristic: TP {big_tp} in {big_ms:.0f} ms)",
        render_table(
            ["platform", "pool size", "best single tree",
             "heuristic packing", "exact optimum", "optimal?"],
            rows,
        ),
    )
