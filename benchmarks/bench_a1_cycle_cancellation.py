"""A1 — ablation: why degenerate LP circulations must be cancelled.

Design choice documented in ``SteadyStateSolution.simplify``: LP optima may
route tasks around directed cycles (degenerate optima).  The cycles carry
no throughput, but they break the depth-bounded initialisation argument —
nodes on a cycle wait on each other, so buffers converge only geometrically
and the §4.2 deficit is *not* a constant.

Shape: with cancellation the deficit is identical at every horizon; without
it the deficit grows between horizons on platforms whose LP optimum
contains circulation.
"""

from fractions import Fraction

from repro.core.activities import SteadyStateSolution
from repro.core.master_slave import build_ssms_lp
from repro.platform import generators
from repro.schedule.reconstruction import reconstruct_schedule
from repro.simulator.periodic_runner import PeriodicRunner
from repro.analysis.reporting import render_table

from conftest import report


def solve_raw(platform, master):
    """SSMS without the cycle-cancelling post-pass."""
    lp, handles = build_ssms_lp(platform, master)
    sol = lp.solve()
    alpha = {}
    s = {}
    for key, var in handles.items():
        if key[0] == "alpha":
            alpha[key[1]] = sol[key] if False else sol.values[var]
        else:
            s[(key[1], key[2])] = sol.values[var]
    return SteadyStateSolution(
        platform=platform, problem="master-slave",
        throughput=sol.objective, alpha=alpha, s=s, source=master,
    )


def run_ablation():
    # a platform whose raw LP optimum contains a circulation
    platform = generators.random_connected(10, seed=11, forwarder_prob=0.2)
    master = "R0"
    rows = []

    raw = solve_raw(platform, master)
    has_cycle = False
    from repro.schedule.flows import cancel_cycles

    rates = {e: raw.edge_rate(*e) for e in raw.s if raw.s[e] > 0}
    has_cycle = cancel_cycles(rates) != {
        k: v for k, v in rates.items() if v > 0
    }

    for label, sol in (
        ("raw LP optimum", raw),
        ("after cycle cancellation",
         solve_raw(platform, master).simplify()),
    ):
        sched = reconstruct_schedule(sol)
        d_short = PeriodicRunner(sched).run(10).deficit
        d_long = PeriodicRunner(sched).run(40).deficit
        rows.append([
            label,
            float(d_short),
            float(d_long),
            "yes" if d_short == d_long else "NO",
        ])
    return rows, has_cycle


def test_a1_cycle_cancellation(benchmark):
    rows, has_cycle = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    assert has_cycle, "pick a platform whose LP optimum has a circulation"
    raw_row, clean_row = rows
    # with cancellation: the constant-deficit theorem holds
    assert clean_row[3] == "yes"
    # without: the deficit keeps growing (geometric convergence only)
    assert raw_row[3] == "NO"
    assert raw_row[2] > raw_row[1]
    report(
        "A1: cycle cancellation ablation (random10, seed 11)",
        render_table(
            ["solution", "deficit @10 periods", "deficit @40 periods",
             "constant?"],
            rows,
        ),
    )
