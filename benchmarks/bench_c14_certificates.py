"""C14 — optimality certificates: the LP bound, proved.

The paper's upper-bound argument ("any periodic schedule obeys the
equations of the linear program") made checkable: for every platform we
solve the explicit SSMS dual, verify its feasibility from first
principles, and confirm strong duality — port prices + task potentials
certify that no steady-state schedule beats ``ntask(G)``.  The closed-form
envelope (CPU capacity, master port, cuts) brackets the same value from
above.
"""

from fractions import Fraction

from repro.analysis.certificates import ssms_certificate
from repro.core.master_slave import ntask
from repro.core.throughput_bounds import bound_envelope
from repro.platform import generators
from repro.analysis.reporting import render_table

from conftest import report

PLATFORMS = [
    ("star", generators.star(4, master_w=2, worker_w=[1, 2, 3, 4],
                             link_c=[1, 1, 2, 3]), "M"),
    ("fig1", generators.paper_figure1(), "P1"),
    ("grid", generators.grid2d(3, 3, seed=3), "G0_0"),
    ("random", generators.random_connected(8, seed=42), "R0"),
]


def run_certificates():
    rows = []
    for name, platform, master in PLATFORMS:
        cert = ssms_certificate(platform, master)
        cert.verify_dual_feasibility()
        env = bound_envelope(platform, master)
        rows.append([
            name,
            cert.primal_value,
            cert.dual_value,
            "yes" if cert.optimal else "NO",
            min(env.values()),
        ])
    return rows


def test_c14_certificates(benchmark):
    rows = benchmark.pedantic(run_certificates, rounds=1, iterations=1)
    for name, primal, dual, tight, envelope in rows:
        assert tight == "yes", name
        assert primal <= envelope, name
    report(
        "C14: duality certificates and the closed-form envelope",
        render_table(
            ["platform", "ntask (primal)", "dual certificate", "tight?",
             "best closed-form bound"],
            rows,
        ),
    )
