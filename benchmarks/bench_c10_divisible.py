"""C10 — §5.2 [8]: divisible load, one-round vs periodic multi-round.

Shape: one-round ratios plateau above 1 (the sequential distribution keeps
late workers idle); the paper's multi-round periodic schedule converges to
the steady-state bound like 1 + O(1/sqrt(W)); the crossover sits at
moderate loads.
"""

from fractions import Fraction

from repro import StarWorker, makespan_lower_bound, multi_round_makespan, one_round_schedule
from repro.analysis.reporting import render_table

from conftest import report

WORKERS = [
    StarWorker(Fraction(1), Fraction(1), Fraction(2)),
    StarWorker(Fraction(2), Fraction(1), Fraction(4)),
    StarWorker(Fraction(3), Fraction(2), Fraction(2)),
    StarWorker(Fraction(5), Fraction(3), Fraction(8)),
]


def run_divisible_sweep():
    rows = []
    for exp in range(1, 7):
        W = Fraction(10 ** exp)
        one, _ = one_round_schedule(W, WORKERS)
        multi = multi_round_makespan(W, WORKERS)
        lb = makespan_lower_bound(W, WORKERS)
        rows.append([
            f"1e{exp}", float(one / lb), float(multi / lb),
            "multi" if multi < one else "one",
        ])
    return rows


def test_c10_divisible_load(benchmark):
    rows = benchmark.pedantic(run_divisible_sweep, rounds=2, iterations=1)
    multi_ratios = [r[2] for r in rows]
    # multi-round converges to 1
    assert multi_ratios[-1] < 1.02
    assert multi_ratios == sorted(multi_ratios, reverse=True)
    # one-round plateaus strictly above 1
    assert rows[-1][1] > 1.1
    # the crossover: one-round wins small loads, multi-round large ones
    assert rows[0][3] == "one"
    assert rows[-1][3] == "multi"
    report(
        "C10: divisible load makespan ratios vs the bound W/rate",
        render_table(
            ["load W", "one-round/bound", "multi-round/bound", "winner"],
            rows,
        ),
    )
