"""Setup shim for offline environments without the ``wheel`` package.

``pip install -e . --no-use-pep517`` uses this legacy path; all metadata
lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
