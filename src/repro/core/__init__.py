"""The paper's primary contribution: steady-state LPs for every problem in
sections 3-5 plus the activity/invariant machinery they share."""

from .activities import SteadyStateError, SteadyStateSolution
from .master_slave import (
    bandwidth_centric_rates,
    build_ssms_lp,
    ntask,
    solve_master_slave,
    star_throughput,
)
from .scatter import (
    build_ssps_lp,
    solve_all_to_all,
    solve_gather,
    solve_scatter,
)
from .broadcast import (
    BroadcastSolution,
    broadcast_lp_bound,
    build_broadcast_lp,
    edmonds_cut_bound,
    solve_broadcast,
    solve_reduce,
)
from .multicast import (
    Figure3Report,
    MulticastAnalysis,
    analyze_figure2,
    best_single_tree,
    multicast_bounds,
    solve_multicast,
)
from .trees import (
    Arborescence,
    enumerate_arborescences,
    greedy_tree_packing,
    pack_trees,
    tree_throughput,
)
from .dag import BEGIN, TaskGraph, TaskGraphError, solve_dag_collection
from .divisible import (
    StarWorker,
    makespan_lower_bound,
    multi_round_makespan,
    one_round_schedule,
    steady_state_rate,
)
from .port_models import (
    greedy_interval_coloring,
    send_or_receive_schedule_length,
    solve_master_slave_multiport,
    solve_master_slave_send_or_receive,
)
from .steiner import (
    candidate_trees,
    cheapest_insertion_tree,
    heuristic_multicast_packing,
    shortest_path_tree,
)

__all__ = [
    "SteadyStateError",
    "SteadyStateSolution",
    "bandwidth_centric_rates",
    "build_ssms_lp",
    "ntask",
    "solve_master_slave",
    "star_throughput",
    "build_ssps_lp",
    "solve_all_to_all",
    "solve_gather",
    "solve_scatter",
    "BroadcastSolution",
    "broadcast_lp_bound",
    "build_broadcast_lp",
    "edmonds_cut_bound",
    "solve_broadcast",
    "solve_reduce",
    "Figure3Report",
    "MulticastAnalysis",
    "analyze_figure2",
    "best_single_tree",
    "multicast_bounds",
    "solve_multicast",
    "Arborescence",
    "enumerate_arborescences",
    "greedy_tree_packing",
    "pack_trees",
    "tree_throughput",
    "BEGIN",
    "TaskGraph",
    "TaskGraphError",
    "solve_dag_collection",
    "StarWorker",
    "makespan_lower_bound",
    "multi_round_makespan",
    "one_round_schedule",
    "steady_state_rate",
    "greedy_interval_coloring",
    "send_or_receive_schedule_length",
    "solve_master_slave_multiport",
    "solve_master_slave_send_or_receive",
    "candidate_trees",
    "cheapest_insertion_tree",
    "heuristic_multicast_packing",
    "shortest_path_tree",
]
