"""The paper's primary contribution: steady-state LPs for every problem in
sections 3-5 plus the activity/invariant machinery they share."""

import warnings as _warnings
from collections.abc import Mapping as _Mapping

from .activities import SteadyStateError, SteadyStateSolution
from .master_slave import (
    bandwidth_centric_rates,
    build_ssms_lp,
    ntask,
    solve_master_slave,
    star_throughput,
)
from .master_slave import package_ssms_solution
from .scatter import (
    build_ssps_lp,
    solve_all_to_all,
    solve_all_to_all_solution,
    solve_gather,
    solve_scatter,
)
from .broadcast import (
    BroadcastSolution,
    broadcast_lp_bound,
    build_broadcast_lp,
    edmonds_cut_bound,
    solve_broadcast,
    solve_reduce,
)
from .multicast import (
    Figure3Report,
    MulticastAnalysis,
    analyze_figure2,
    best_single_tree,
    multicast_bounds,
    solve_multicast,
)
from .trees import (
    Arborescence,
    enumerate_arborescences,
    greedy_tree_packing,
    pack_trees,
    tree_throughput,
)
from .dag import BEGIN, TaskGraph, TaskGraphError, solve_dag_collection
from .divisible import (
    StarWorker,
    makespan_lower_bound,
    multi_round_makespan,
    one_round_schedule,
    steady_state_rate,
)
from .port_models import (
    greedy_interval_coloring,
    send_or_receive_schedule_length,
    solve_master_slave_multiport,
    solve_master_slave_send_or_receive,
)
from .steiner import (
    candidate_trees,
    cheapest_insertion_tree,
    heuristic_multicast_packing,
    shortest_path_tree,
)

# ----------------------------------------------------------------------
# DEPRECATED: the bare solver routing table of PR 1.  Problem routing now
# lives in the typed, capability-declaring registry of ``repro.problems``
# (one spec class + one ``@register``-ed solver makes a problem servable
# end-to-end); this mapping is kept as a read-only shim built from that
# registry so downstream imports keep working.  It is populated lazily to
# avoid a circular import (``repro.problems`` imports the core solvers).
# ----------------------------------------------------------------------
class _DeprecatedSolverTable(_Mapping):
    """Read-only view of ``repro.problems.registry.legacy_entry_points()``."""

    _warned = False

    def _table(self):
        from ..problems import legacy_entry_points

        if not _DeprecatedSolverTable._warned:
            _DeprecatedSolverTable._warned = True
            _warnings.warn(
                "repro.core.SOLVER_ENTRY_POINTS is deprecated; use the "
                "solver registry in repro.problems instead",
                DeprecationWarning,
                stacklevel=3,
            )
        return legacy_entry_points()

    def __getitem__(self, key):
        return self._table()[key]

    def __iter__(self):
        return iter(self._table())

    def __len__(self):
        return len(self._table())

    def __repr__(self):
        return f"SOLVER_ENTRY_POINTS({self._table()!r})"


SOLVER_ENTRY_POINTS = _DeprecatedSolverTable()

__all__ = [
    "SOLVER_ENTRY_POINTS",
    "SteadyStateError",
    "SteadyStateSolution",
    "bandwidth_centric_rates",
    "build_ssms_lp",
    "ntask",
    "solve_master_slave",
    "star_throughput",
    "build_ssps_lp",
    "package_ssms_solution",
    "solve_all_to_all",
    "solve_all_to_all_solution",
    "solve_gather",
    "solve_scatter",
    "BroadcastSolution",
    "broadcast_lp_bound",
    "build_broadcast_lp",
    "edmonds_cut_bound",
    "solve_broadcast",
    "solve_reduce",
    "Figure3Report",
    "MulticastAnalysis",
    "analyze_figure2",
    "best_single_tree",
    "multicast_bounds",
    "solve_multicast",
    "Arborescence",
    "enumerate_arborescences",
    "greedy_tree_packing",
    "pack_trees",
    "tree_throughput",
    "BEGIN",
    "TaskGraph",
    "TaskGraphError",
    "solve_dag_collection",
    "StarWorker",
    "makespan_lower_bound",
    "multi_round_makespan",
    "one_round_schedule",
    "steady_state_rate",
    "greedy_interval_coloring",
    "send_or_receive_schedule_length",
    "solve_master_slave_multiport",
    "solve_master_slave_send_or_receive",
    "candidate_trees",
    "cheapest_insertion_tree",
    "heuristic_multicast_packing",
    "shortest_path_tree",
]
