"""The paper's primary contribution: steady-state LPs for every problem in
sections 3-5 plus the activity/invariant machinery they share."""

from .activities import SteadyStateError, SteadyStateSolution
from .master_slave import (
    bandwidth_centric_rates,
    build_ssms_lp,
    ntask,
    solve_master_slave,
    star_throughput,
)
from .master_slave import package_ssms_solution
from .scatter import (
    build_ssps_lp,
    solve_all_to_all,
    solve_all_to_all_solution,
    solve_gather,
    solve_scatter,
)
from .broadcast import (
    BroadcastSolution,
    broadcast_lp_bound,
    build_broadcast_lp,
    edmonds_cut_bound,
    solve_broadcast,
    solve_reduce,
)
from .multicast import (
    Figure3Report,
    MulticastAnalysis,
    analyze_figure2,
    best_single_tree,
    multicast_bounds,
    solve_multicast,
)
from .trees import (
    Arborescence,
    enumerate_arborescences,
    greedy_tree_packing,
    pack_trees,
    tree_throughput,
)
from .dag import BEGIN, TaskGraph, TaskGraphError, solve_dag_collection
from .divisible import (
    StarWorker,
    makespan_lower_bound,
    multi_round_makespan,
    one_round_schedule,
    steady_state_rate,
)
from .port_models import (
    greedy_interval_coloring,
    send_or_receive_schedule_length,
    solve_master_slave_multiport,
    solve_master_slave_send_or_receive,
)
from .steiner import (
    candidate_trees,
    cheapest_insertion_tree,
    heuristic_multicast_packing,
    shortest_path_tree,
)

# ----------------------------------------------------------------------
# Solver entry points by problem kind — the routing table consumed by the
# request broker (repro.service.broker).  Keys are the wire-level problem
# names of the JSON API; values are the canonical one-shot solver for that
# problem.  A solver with the common ``(platform, source, backend=...)``
# shape is servable by registering it here alone; solvers taking targets,
# task graphs or extra options also need an argument adapter in
# ``repro.service.broker.execute_request``.
# ----------------------------------------------------------------------
SOLVER_ENTRY_POINTS = {
    "master-slave": solve_master_slave,
    "scatter": solve_scatter,
    "gather": solve_gather,
    "all-to-all": solve_all_to_all_solution,
    "broadcast": solve_broadcast,
    "reduce": solve_reduce,
    "multicast": solve_multicast,
    "dag": solve_dag_collection,
    "multiport": solve_master_slave_multiport,
    "send-or-receive": solve_master_slave_send_or_receive,
}

__all__ = [
    "SOLVER_ENTRY_POINTS",
    "SteadyStateError",
    "SteadyStateSolution",
    "bandwidth_centric_rates",
    "build_ssms_lp",
    "ntask",
    "solve_master_slave",
    "star_throughput",
    "build_ssps_lp",
    "package_ssms_solution",
    "solve_all_to_all",
    "solve_all_to_all_solution",
    "solve_gather",
    "solve_scatter",
    "BroadcastSolution",
    "broadcast_lp_bound",
    "build_broadcast_lp",
    "edmonds_cut_bound",
    "solve_broadcast",
    "solve_reduce",
    "Figure3Report",
    "MulticastAnalysis",
    "analyze_figure2",
    "best_single_tree",
    "multicast_bounds",
    "solve_multicast",
    "Arborescence",
    "enumerate_arborescences",
    "greedy_tree_packing",
    "pack_trees",
    "tree_throughput",
    "BEGIN",
    "TaskGraph",
    "TaskGraphError",
    "solve_dag_collection",
    "StarWorker",
    "makespan_lower_bound",
    "multi_round_makespan",
    "one_round_schedule",
    "steady_state_rate",
    "greedy_interval_coloring",
    "send_or_receive_schedule_length",
    "solve_master_slave_multiport",
    "solve_master_slave_send_or_receive",
    "candidate_trees",
    "cheapest_insertion_tree",
    "heuristic_multicast_packing",
    "shortest_path_tree",
]
