"""Closed-form upper bounds on ``ntask(G)`` — quick sanity envelopes.

Each bound is a relaxation of SSMS(G), so every one of them dominates the
LP optimum; none is tight in general, but together they explain *which
resource* limits a platform at a glance (and they cross-check the solver):

* :func:`cpu_capacity_bound` — ignore communication entirely:
  ``sum_i 1/w_i``;
* :func:`master_port_bound` — the master's CPU plus everything its send
  port can possibly export through its cheapest link mix (fractional
  knapsack with *unbounded* worker appetites);
* :func:`cut_bound` — for the cut separating the master from the rest:
  exports are limited by both the master's port (1 time-unit) and each
  crossing link's capacity; generalised over all node subsets containing
  the master by :func:`best_cut_bound` (exponential; capped).
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import FrozenSet, Iterable, Optional, Set, Tuple

from ..platform.graph import NodeId, Platform, PlatformError


def cpu_capacity_bound(platform: Platform) -> Fraction:
    """No schedule computes faster than every CPU running flat out."""
    return sum(
        (Fraction(1) / platform.node(n).w for n in platform.compute_nodes()),
        start=Fraction(0),
    )


def master_port_bound(platform: Platform, master: NodeId) -> Fraction:
    """Master CPU + the most optimistic use of its send port.

    The port exports at most ``1 / min_j c_mj`` task files per time-unit;
    ignoring every downstream constraint this caps total remote work.
    """
    spec = platform.node(master)
    own = Fraction(0) if not spec.can_compute else Fraction(1) / spec.w
    out_costs = [platform.c(master, j) for j in platform.successors(master)]
    if not out_costs:
        return own
    return own + Fraction(1) / min(out_costs)


def cut_bound(
    platform: Platform, inside: Iterable[NodeId], master: NodeId
) -> Fraction:
    """Upper bound from the cut ``inside | outside``.

    Work done outside the cut must cross it: the crossing rate is limited
    by each inside node's send port (1 each) *and* by the total crossing
    bandwidth.  Inside nodes can also compute locally.
    """
    inside_set = set(inside)
    if master not in inside_set:
        raise PlatformError("the cut must contain the master")
    inside_cpu = sum(
        (Fraction(1) / platform.node(n).w
         for n in inside_set if platform.node(n).can_compute),
        start=Fraction(0),
    )
    outside_cpu = sum(
        (Fraction(1) / platform.node(n).w
         for n in platform.compute_nodes() if n not in inside_set),
        start=Fraction(0),
    )
    # crossing capacity: per inside sender, the port exports at most
    # 1/min crossing cost; total also bounded by sum of link bandwidths
    port_cap = Fraction(0)
    link_cap = Fraction(0)
    for n in inside_set:
        crossing = [
            platform.c(n, j)
            for j in platform.successors(n)
            if j not in inside_set
        ]
        if crossing:
            port_cap += Fraction(1) / min(crossing)
            link_cap += sum(
                (Fraction(1) / c for c in crossing), start=Fraction(0)
            )
    crossing_cap = min(port_cap, link_cap)
    return inside_cpu + min(outside_cpu, crossing_cap)


def best_cut_bound(
    platform: Platform, master: NodeId, max_nodes: int = 12
) -> Fraction:
    """Minimum cut bound over all subsets containing the master.

    Exponential in the platform size — refuses beyond ``max_nodes``.
    """
    nodes = [n for n in platform.nodes() if n != master]
    if len(nodes) + 1 > max_nodes:
        raise PlatformError(
            f"best_cut_bound is exponential; platform exceeds "
            f"{max_nodes} nodes"
        )
    best: Optional[Fraction] = None
    for r in range(len(nodes) + 1):
        for combo in itertools.combinations(nodes, r):
            value = cut_bound(platform, {master, *combo}, master)
            if best is None or value < best:
                best = value
    assert best is not None
    return best


def bound_envelope(platform: Platform, master: NodeId) -> dict:
    """All closed-form bounds, for reports and cross-checks."""
    out = {
        "cpu-capacity": cpu_capacity_bound(platform),
        "master-port": master_port_bound(platform, master),
        "master-cut": cut_bound(platform, {master}, master),
    }
    if platform.num_nodes <= 10:
        out["best-cut"] = best_cut_bound(platform, master)
    return out
