"""Pipelined multicast: bounds, heuristics, and the §4.3 counterexample.

Multicast looks like a restriction of scatter (all messages identical) but
its steady-state optimisation is **NP-hard** [7].  Three quantities bracket
the optimum, and this module computes all of them:

* ``sum-LP`` (pessimistic): the scatter LP — distinct transfers per target
  even for identical payloads; always achievable, may undershoot.
* ``tree packing`` (exact on small instances): optimal fractional packing
  of Steiner arborescences; every schedule routes each instance along such
  a tree, so with *exhaustive* enumeration this is the true optimum.
* ``max-LP`` (optimistic): replace the sum by ``max_k send(i,j,k) * c_ij``;
  an upper bound that multicast generally cannot reach.

The paper's Figure 2/3 example exhibits a platform where the max-LP yields
throughput 1 but no schedule realises it: odd-labelled (``a``) and
even-labelled (``b``) instances are forced onto routes that both cross the
edge ``P3 -> P4`` with *distinct* messages, overloading it.
:func:`analyze_figure2` reproduces every number in Figures 3(a)–3(d).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..platform.graph import Edge, NodeId, Platform
from ..platform.generators import (
    MULTICAST_SOURCE,
    MULTICAST_TARGETS,
    paper_figure2_multicast,
)
from .broadcast import build_broadcast_lp
from .scatter import build_ssps_lp
from .trees import (
    Arborescence,
    TreeEnumerationLimit,
    enumerate_arborescences,
    greedy_tree_packing,
    pack_trees,
    tree_throughput,
)


@dataclass
class MulticastAnalysis:
    """The three throughput levels for one multicast instance."""

    platform: Platform
    source: NodeId
    targets: Tuple[NodeId, ...]
    sum_lp: Fraction
    max_lp: Fraction
    tree_optimal: Fraction
    packing: Dict[Arborescence, Fraction]
    exhaustive: bool

    @property
    def max_lp_achievable(self) -> bool:
        """Whether the optimistic bound is attained by actual schedules."""
        return self.exhaustive and self.tree_optimal == self.max_lp

    def bracket_ok(self) -> bool:
        return self.sum_lp <= self.tree_optimal <= self.max_lp


def multicast_bounds(
    platform: Platform,
    source: NodeId,
    targets: Sequence[NodeId],
    backend: str = "exact",
) -> Tuple[Fraction, Fraction]:
    """Return ``(sum_lp, max_lp)`` throughput bounds."""
    lp_sum_form, _ = build_ssps_lp(platform, source, list(targets))
    lp_max_form, _ = build_broadcast_lp(platform, source, list(targets))
    return (
        lp_sum_form.solve(backend=backend).objective,
        lp_max_form.solve(backend=backend).objective,
    )


def solve_multicast(
    platform: Platform,
    source: NodeId,
    targets: Sequence[NodeId],
    backend: str = "exact",
    tree_limit: int = 100_000,
) -> MulticastAnalysis:
    """Compute the sum-LP / tree-packing / max-LP bracket."""
    sum_lp, max_lp = multicast_bounds(platform, source, targets, backend)
    try:
        trees = enumerate_arborescences(
            platform, source, terminals=list(targets), limit=tree_limit
        )
        tree_opt, packing = pack_trees(platform, trees, backend=backend)
        exhaustive = True
    except TreeEnumerationLimit:
        tree_opt, packing = greedy_tree_packing(
            platform, source, terminals=list(targets)
        )
        exhaustive = False
    return MulticastAnalysis(
        platform=platform,
        source=source,
        targets=tuple(targets),
        sum_lp=sum_lp,
        max_lp=max_lp,
        tree_optimal=tree_opt,
        packing=packing,
        exhaustive=exhaustive,
    )


def best_single_tree(
    platform: Platform,
    source: NodeId,
    targets: Sequence[NodeId],
    tree_limit: int = 100_000,
) -> Tuple[Fraction, Optional[Arborescence]]:
    """The best *single* multicast tree and its stand-alone throughput.

    The natural baseline: one fixed route per operation.  Fractional
    packings strictly beat it whenever port load can be spread over
    several trees (see benchmark F3d).
    """
    trees = enumerate_arborescences(
        platform, source, terminals=list(targets), limit=tree_limit
    )
    best_rate = Fraction(0)
    best_tree: Optional[Arborescence] = None
    for tree in trees:
        rate = tree_throughput(platform, tree)
        if rate > best_rate:
            best_rate, best_tree = rate, tree
    return best_rate, best_tree


# ----------------------------------------------------------------------
# The paper's Figure 2 / Figure 3 walk-through
# ----------------------------------------------------------------------
@dataclass
class Figure3Report:
    """Every quantity shown in Figures 3(a)-(d), computed from scratch."""

    platform: Platform
    #: max-LP optimum (the unachievable bound; the paper's "one message
    #: per time-unit")
    max_lp: Fraction
    #: Figure 3(a): per-edge message rate towards P5 in the max-LP solution
    flows_p5: Dict[Edge, Fraction]
    #: Figure 3(b): per-edge message rate towards P6
    flows_p6: Dict[Edge, Fraction]
    #: Figure 3(c): distinct-message rate per edge (what a schedule must
    #: actually transfer, accounting for shared copies)
    total_flows: Dict[Edge, Fraction]
    #: Figure 3(d): edges whose distinct-message load exceeds capacity
    conflicts: Dict[Edge, Fraction]
    #: true optimum (exhaustive Steiner-tree packing)
    achievable: Fraction
    sum_lp: Fraction

    def is_counterexample(self) -> bool:
        """True when the max-LP bound provably cannot be met."""
        return bool(self.conflicts) and self.achievable < self.max_lp


def analyze_figure2() -> Figure3Report:
    """Reproduce the section 4.3 analysis numerically.

    The max-LP routes **half** the messages for each target over each of
    two routes (Figures 3a/3b).  The one-port constraint at ``P0`` forces
    the two targets' shared halves onto *different* message instances
    (labels ``a`` and ``b``), so the per-edge distinct-message load is the
    **sum** of the per-target flows except on the source edges where the
    copies genuinely coincide.  Edge ``P3 -> P4`` then carries one ``a``
    and one ``b`` message per two time-units at cost 2 each — occupation
    2 > 1: the LP bound is unachievable (Figure 3d).
    """
    g = paper_figure2_multicast()
    source = MULTICAST_SOURCE
    targets = list(MULTICAST_TARGETS)
    analysis = solve_multicast(g, source, targets)

    # The paper's max-LP solution (unique optimal routing at TP = 1):
    half = Fraction(1, 2)
    flows_p5: Dict[Edge, Fraction] = {
        ("P0", "P1"): half, ("P1", "P5"): half,                      # label a
        ("P0", "P2"): half, ("P2", "P3"): half,
        ("P3", "P4"): half, ("P4", "P5"): half,                      # label b
    }
    flows_p6: Dict[Edge, Fraction] = {
        ("P0", "P1"): half, ("P1", "P3"): half,
        ("P3", "P4"): half, ("P4", "P6"): half,                      # label a
        ("P0", "P2"): half, ("P2", "P6"): half,                      # label b
    }

    # Distinct-message load per edge.  On P0's out-edges the P5-copy and
    # the P6-copy are the *same* physical message (that is what the max
    # rule legitimately shares); everywhere else the labels differ because
    # the one-port constraint at P0 splits instances between P1 and P2.
    total: Dict[Edge, Fraction] = {}
    for e in set(flows_p5) | set(flows_p6):
        if e[0] == source:
            total[e] = max(
                flows_p5.get(e, Fraction(0)), flows_p6.get(e, Fraction(0))
            )
        else:
            total[e] = flows_p5.get(e, Fraction(0)) + flows_p6.get(
                e, Fraction(0)
            )

    conflicts: Dict[Edge, Fraction] = {}
    for e, rate in total.items():
        occupation = rate * g.c(*e)
        if occupation > 1:
            conflicts[e] = occupation

    return Figure3Report(
        platform=g,
        max_lp=analysis.max_lp,
        flows_p5=flows_p5,
        flows_p6=flows_p6,
        total_flows=total,
        conflicts=conflicts,
        achievable=analysis.tree_optimal,
        sum_lp=analysis.sum_lp,
    )
