"""Arborescence enumeration and fractional tree packing.

Steady-state broadcast/multicast schedules route each operation instance
along a directed tree (arborescence) rooted at the source: every node in
the tree receives the message exactly once and forwards it along its tree
out-edges.  A *fractional packing* of arborescences — tree ``T`` used at
rate ``x_T`` — is feasible under the one-port model iff every node's total
send time and receive time per time-unit stay below 1:

* send port of ``i``:  ``sum_T x_T * sum_{(i,j) in T} c_ij <= 1``
* recv port of ``j``:  ``sum_T x_T * c_(parent_T(j), j) <= 1``

The best packing over *all* arborescences equals the optimal steady-state
throughput of the series of broadcasts (resp. multicasts): any schedule
routes each instance along some arborescence, and conversely a packing
yields a periodic schedule.  Reference [5] proves the packing optimum
matches the max-rule LP bound for broadcast; [7] proves computing it is
NP-hard for multicast (our *exhaustive enumeration* sidesteps hardness on
the small instances used in tests and benchmarks — it is exponential by
design).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..lp import LinearProgram, lp_sum
from ..platform.graph import Edge, NodeId, Platform, PlatformError

Arborescence = FrozenSet[Edge]


class TreeEnumerationLimit(RuntimeError):
    """Raised when enumeration exceeds the caller's tree budget."""


def _prune_non_terminal_leaves(
    edges: Set[Edge], root: NodeId, terminals: Set[NodeId]
) -> FrozenSet[Edge]:
    """Iteratively drop leaves that are not terminals (minimality)."""
    work = set(edges)
    while True:
        out_deg: Dict[NodeId, int] = {}
        in_edge: Dict[NodeId, Edge] = {}
        for (u, v) in work:
            out_deg[u] = out_deg.get(u, 0) + 1
            in_edge[v] = (u, v)
        removable = [
            v
            for v in in_edge
            if out_deg.get(v, 0) == 0 and v not in terminals
        ]
        if not removable:
            return frozenset(work)
        for v in removable:
            work.discard(in_edge[v])


def enumerate_arborescences(
    platform: Platform,
    root: NodeId,
    terminals: Optional[Sequence[NodeId]] = None,
    limit: int = 250_000,
) -> List[Arborescence]:
    """All minimal arborescences rooted at ``root`` covering ``terminals``.

    ``terminals`` defaults to every node except the root (spanning
    arborescences / broadcast trees); pass a subset for multicast (Steiner)
    trees.  Minimal means every leaf is a terminal.  Raises
    :class:`TreeEnumerationLimit` beyond ``limit`` trees (exponential
    worst case — intended for small platforms).
    """
    platform.node(root)
    if terminals is None:
        term_set = {n for n in platform.nodes() if n != root}
    else:
        term_set = set(terminals)
        for t in term_set:
            platform.node(t)
        if root in term_set:
            raise PlatformError("root cannot be a terminal")
    if not term_set:
        return [frozenset()]

    found: Set[Arborescence] = set()

    def paths_to(target: NodeId, reached: FrozenSet[NodeId]) -> List[List[Edge]]:
        """Simple paths from the reached set to ``target`` avoiding it."""
        results: List[List[Edge]] = []
        path_edges: List[Edge] = []
        on_path: Set[NodeId] = set()

        def dfs(u: NodeId) -> None:
            if u == target:
                results.append(list(path_edges))
                return
            for v in platform.successors(u):
                if v in reached or v in on_path:
                    continue
                on_path.add(v)
                path_edges.append((u, v))
                dfs(v)
                path_edges.pop()
                on_path.discard(v)

        for start in reached:
            dfs(start)
        return results

    def grow(
        reached: FrozenSet[NodeId],
        edges: FrozenSet[Edge],
        uncovered: FrozenSet[NodeId],
    ) -> None:
        if not uncovered:
            found.add(_prune_non_terminal_leaves(set(edges), root, term_set))
            if len(found) > limit:
                raise TreeEnumerationLimit(
                    f"more than {limit} arborescences"
                )
            return
        target = min(uncovered)
        for path in paths_to(target, reached):
            new_nodes = frozenset(v for (_u, v) in path)
            grow(
                reached | new_nodes,
                edges | frozenset(path),
                (uncovered - new_nodes) - {target},
            )

    grow(frozenset({root}), frozenset(), frozenset(term_set))
    return sorted(found, key=lambda t: (len(t), sorted(t)))


def tree_send_time(
    platform: Platform, tree: Arborescence
) -> Dict[NodeId, Fraction]:
    """Per-node send-port time to push one instance down ``tree``."""
    out: Dict[NodeId, Fraction] = {}
    for (u, v) in tree:
        out[u] = out.get(u, Fraction(0)) + platform.c(u, v)
    return out


def tree_recv_time(
    platform: Platform, tree: Arborescence
) -> Dict[NodeId, Fraction]:
    """Per-node receive-port time for one instance of ``tree``."""
    out: Dict[NodeId, Fraction] = {}
    for (u, v) in tree:
        if v in out:
            raise PlatformError(f"not an arborescence: {v} has two parents")
        out[v] = platform.c(u, v)
    return out


def tree_throughput(platform: Platform, tree: Arborescence) -> Fraction:
    """Max rate of a *single* tree: ``1 / max port time`` over all nodes."""
    if not tree:
        return Fraction(0)
    loads = list(tree_send_time(platform, tree).values())
    loads.extend(tree_recv_time(platform, tree).values())
    return Fraction(1) / max(loads)


def pack_trees(
    platform: Platform,
    trees: Sequence[Arborescence],
    backend: str = "exact",
) -> Tuple[Fraction, Dict[Arborescence, Fraction]]:
    """Optimal fractional packing of the given arborescences.

    Maximises ``sum_T x_T`` under the one-port send/receive constraints
    above.  Returns the throughput and the per-tree rates (zero rates
    omitted).
    """
    if not trees:
        return Fraction(0), {}
    lp = LinearProgram("tree-packing")
    xs = [lp.variable(f"x[{k}]", lo=0) for k in range(len(trees))]
    send_terms: Dict[NodeId, List] = {}
    recv_terms: Dict[NodeId, List] = {}
    for x, tree in zip(xs, trees):
        for node, t in tree_send_time(platform, tree).items():
            send_terms.setdefault(node, []).append(x * t)
        for node, t in tree_recv_time(platform, tree).items():
            recv_terms.setdefault(node, []).append(x * t)
    for node, terms in send_terms.items():
        lp.add_constraint(lp_sum(terms) <= 1, name=f"send[{node}]")
    for node, terms in recv_terms.items():
        lp.add_constraint(lp_sum(terms) <= 1, name=f"recv[{node}]")
    lp.maximize(lp_sum(xs))
    sol = lp.solve(backend=backend)
    rates = {
        tree: sol[x]
        for x, tree in zip(xs, trees)
        if sol[x] != 0
    }
    return sol.objective, rates


def greedy_tree_packing(
    platform: Platform,
    root: NodeId,
    terminals: Optional[Sequence[NodeId]] = None,
    rounds: int = 64,
) -> Tuple[Fraction, Dict[Arborescence, Fraction]]:
    """Polynomial heuristic packing (no enumeration): repeatedly add the
    best single tree on residual port capacity.

    Useful on platforms too large for exhaustive enumeration; gives a lower
    bound on the optimal packing.
    """
    send_left: Dict[NodeId, Fraction] = {
        n: Fraction(1) for n in platform.nodes()
    }
    recv_left: Dict[NodeId, Fraction] = {
        n: Fraction(1) for n in platform.nodes()
    }
    packing: Dict[Arborescence, Fraction] = {}
    total = Fraction(0)
    term_set = (
        {n for n in platform.nodes() if n != root}
        if terminals is None
        else set(terminals)
    )
    for _ in range(rounds):
        # build a shortest-path arborescence on residual-capacity edges
        tree = _residual_shortest_path_tree(
            platform, root, term_set, send_left, recv_left
        )
        if tree is None:
            break
        sends = tree_send_time(platform, tree)
        recvs = tree_recv_time(platform, tree)
        rate = min(
            min(send_left[n] / t for n, t in sends.items()),
            min(recv_left[n] / t for n, t in recvs.items()),
        )
        if rate <= 0:
            break
        # commit half the bottleneck rate to keep later trees viable,
        # except when a single tree saturates (then take it all)
        commit = rate if len(packing) >= rounds - 1 else rate / 2
        if commit == 0:
            break
        for n, t in sends.items():
            send_left[n] -= commit * t
        for n, t in recvs.items():
            recv_left[n] -= commit * t
        packing[tree] = packing.get(tree, Fraction(0)) + commit
        total += commit
    return total, packing


def _residual_shortest_path_tree(
    platform: Platform,
    root: NodeId,
    terminals: Set[NodeId],
    send_left: Dict[NodeId, Fraction],
    recv_left: Dict[NodeId, Fraction],
) -> Optional[Arborescence]:
    """Dijkstra tree over edges whose endpoints retain port capacity."""
    import heapq

    dist: Dict[NodeId, Fraction] = {root: Fraction(0)}
    parent: Dict[NodeId, Edge] = {}
    # exact Fraction heap keys — see _dijkstra_from_set in steiner.py
    heap: List[Tuple[Fraction, int, NodeId]] = [(Fraction(0), 0, root)]
    counter = 1
    done: Set[NodeId] = set()
    while heap:
        _, _, u = heapq.heappop(heap)
        if u in done:
            continue
        done.add(u)
        for v in platform.successors(u):
            if send_left[u] <= 0 or recv_left[v] <= 0:
                continue
            nd = dist[u] + platform.c(u, v)
            if v not in dist or nd < dist[v]:
                dist[v] = nd
                parent[v] = (u, v)
                heapq.heappush(heap, (nd, counter, v))
                counter += 1
    if not terminals <= done:
        return None
    edges: Set[Edge] = set()
    for t in terminals:
        node = t
        while node != root:
            e = parent[node]
            edges.add(e)
            node = e[0]
    return _prune_non_terminal_leaves(edges, root, terminals)
