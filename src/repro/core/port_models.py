"""Alternative communication models — section 5.1.

The paper's favourite model lets a node send *and* receive simultaneously
(full overlap, one port each way).  Section 5.1 examines what changes when
that hypothesis moves:

* **send-OR-receive** (§5.1.1): one-port constraints merge into
  ``time sending + time receiving <= 1`` per node.  The LP is an easy
  edit, but reconstruction now needs an edge colouring of an *arbitrary*
  (non-bipartite) graph — NP-hard; we provide the standard greedy
  approximation (never worse than twice the optimal number of colours,
  mirroring "efficient polynomial approximation algorithms can be used").
* **multiport with dedicated cards** (§5.1.2): a node owns ``k`` send
  cards and ``k`` receive cards; constraints become ``sum s_ij <= k``
  per direction, and reconstruction still works — each card is a vertex
  of the bipartite graph, so the colouring stays bipartite (the paper:
  "the schedule can be reconstructed, each node in the bipartite graph
  corresponds to a network card").

Throughputs are always ordered
``send-or-receive <= one-port <= multiport(k)``; benchmark C11 measures
the gaps.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..lp import LinearProgram, lp_sum
from ..platform.graph import NodeId, Platform
from .activities import SteadyStateSolution
from .master_slave import (
    add_ssms_conservation_and_objective,
    declare_ssms_variables,
    package_ssms_solution,
)

# These LPs share the SSMS structure-vs-coefficient split: only the port
# constraints differ from the one-port build, and ports are weight-free,
# so the warm re-solve path reuses ``patch_ssms_coefficients`` verbatim
# (re-exported here so the catalog's warm models read naturally).
from .master_slave import patch_ssms_coefficients  # noqa: F401 — re-export


def build_send_or_receive_lp(
    platform: Platform, master: NodeId
) -> Tuple[LinearProgram, Dict[object, object]]:
    """Assemble SSMS under the send-OR-receive model of section 5.1.1.

    Same variables, conservation law and objective as the one-port SSMS
    build (handles in the same ``("alpha", i)`` / ``("s", i, j)`` format);
    the one-port pair collapses into one merged budget per node.
    """
    lp = LinearProgram(f"SSMS-sor({platform.name})")
    handles = declare_ssms_variables(lp, platform, master)
    # merged port constraint: sending plus receiving within one time-unit
    for node in platform.nodes():
        terms = [handles[("s", node, j)] for j in platform.successors(node)]
        terms += [handles[("s", j, node)] for j in platform.predecessors(node)]
        if terms:
            lp.add_constraint(lp_sum(terms) <= 1, name=f"port[{node}]")
    add_ssms_conservation_and_objective(lp, handles, platform, master)
    return lp, handles


def build_multiport_lp(
    platform: Platform, master: NodeId, ports: int = 2
) -> Tuple[LinearProgram, Dict[object, object]]:
    """Assemble SSMS with ``ports`` send cards and receive cards per node
    (section 5.1.2).  Each individual link still carries at most one
    message at a time (``s_ij <= 1``); per-direction totals may reach
    ``ports``."""
    if ports < 1:
        raise ValueError("ports must be >= 1")
    lp = LinearProgram(f"SSMS-mp{ports}({platform.name})")
    handles = declare_ssms_variables(lp, platform, master)
    for node in platform.nodes():
        out = [handles[("s", node, j)] for j in platform.successors(node)]
        if out:
            lp.add_constraint(lp_sum(out) <= ports, name=f"send-cards[{node}]")
        inc = [handles[("s", j, node)] for j in platform.predecessors(node)]
        if inc:
            lp.add_constraint(lp_sum(inc) <= ports, name=f"recv-cards[{node}]")
    add_ssms_conservation_and_objective(lp, handles, platform, master)
    return lp, handles


def package_port_model_solution(
    platform: Platform,
    master: NodeId,
    sol,
    handles: Dict[object, object],
    backend: str = "exact",
) -> SteadyStateSolution:
    """Package a port-model LP solution: the SSMS packaging with the
    one-port invariant check off (these models relax exactly that)."""
    return package_ssms_solution(platform, master, sol, handles,
                                 backend=backend, verify=False)


def solve_master_slave_send_or_receive(
    platform: Platform, master: NodeId, backend: str = "exact"
) -> SteadyStateSolution:
    """SSMS under the send-OR-receive model of section 5.1.1."""
    lp, handles = build_send_or_receive_lp(platform, master)
    sol = lp.solve(backend=backend)
    return package_port_model_solution(platform, master, sol, handles,
                                       backend=backend)


def solve_master_slave_multiport(
    platform: Platform,
    master: NodeId,
    ports: int = 2,
    backend: str = "exact",
) -> SteadyStateSolution:
    """SSMS with ``ports`` dedicated send cards and receive cards per node.

    Each individual link still carries at most one message at a time
    (``s_ij <= 1``); per-direction totals may reach ``ports``.
    """
    lp, handles = build_multiport_lp(platform, master, ports=ports)
    sol = lp.solve(backend=backend)
    return package_port_model_solution(platform, master, sol, handles,
                                       backend=backend)


# ----------------------------------------------------------------------
# Greedy colouring for send-or-receive reconstruction (§5.1.1)
# ----------------------------------------------------------------------
def greedy_interval_coloring(
    edges: Sequence[Tuple[NodeId, NodeId, Fraction]],
) -> List[Tuple[Dict[NodeId, NodeId], Fraction]]:
    """Decompose weighted communications so no node sends *or* receives
    twice at once (edge colouring of the conflict multigraph, greedy).

    Under send-or-receive the conflict graph is no longer bipartite (a
    node's sends conflict with its receives), so exact minimum colouring
    is NP-hard; this greedy decomposition is the polynomial fallback.
    Guarantee: total length <= 2 * max node load (Shannon/Vizing-style
    factor); the paper notes the loss of the exact bipartite algorithm is
    the price of the weaker model.
    """
    remaining: Dict[Tuple[NodeId, NodeId], Fraction] = {}
    for u, v, w in edges:
        if w > 0:
            remaining[(u, v)] = remaining.get((u, v), Fraction(0)) + w
    slices: List[Tuple[Dict[NodeId, NodeId], Fraction]] = []
    while remaining:
        used: set = set()
        batch: Dict[NodeId, NodeId] = {}
        for (u, v) in sorted(remaining, key=lambda e: -remaining[e]):
            if u in used or v in used:
                continue
            batch[u] = v
            used.add(u)
            used.add(v)
        duration = min(remaining[(u, v)] for u, v in batch.items())
        for u, v in batch.items():
            remaining[(u, v)] -= duration
            if remaining[(u, v)] == 0:
                del remaining[(u, v)]
        slices.append((batch, duration))
    return slices


def send_or_receive_schedule_length(
    solution: SteadyStateSolution, period: Optional[int] = None
) -> Tuple[Fraction, Fraction]:
    """(period, greedy schedule length) for a send-or-receive solution.

    The LP promises all communications fit in ``T`` time of *port budget*;
    the greedy colouring may need up to twice that.  Returns both numbers
    so callers can measure the actual stretch.
    """
    T = solution.period() if period is None else Fraction(period)
    busy = solution.edge_busy_time(int(T))
    edges = [(i, j, t) for (i, j), t in busy.items() if t > 0]
    slices = greedy_interval_coloring(edges)
    length = sum((d for _, d in slices), start=Fraction(0))
    return Fraction(T), length
