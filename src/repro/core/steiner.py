"""Polynomial multicast-tree heuristics (the practical side of [7]).

Computing the optimal steady-state multicast throughput is NP-hard, and
exhaustive arborescence enumeration explodes beyond toy platforms.  The
companion paper [7] ("Complexity results and heuristics for pipelined
multicast operations") therefore pairs the hardness proof with heuristics;
this module implements the classical constructive ones:

* :func:`shortest_path_tree` — union of min-cost source→target paths,
  pruned to terminal leaves;
* :func:`cheapest_insertion_tree` — grow the tree one terminal at a time,
  always attaching the terminal with the cheapest path *from the current
  tree* (Takahashi–Matsuyama for directed graphs);
* :func:`candidate_trees` — a polynomial candidate pool: the two heuristics
  plus one insertion tree per terminal ordering rotation and per-terminal
  single-path trees;
* :func:`heuristic_multicast_packing` — the practical scheduler: an optimal
  fractional packing (exact LP) over the *candidate pool* — polynomial
  end-to-end, sandwiched between the best single tree and the true optimum.
"""

from __future__ import annotations

import heapq
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..platform.graph import Edge, NodeId, Platform, PlatformError
from .trees import (
    Arborescence,
    _prune_non_terminal_leaves,
    pack_trees,
    tree_throughput,
)


def _dijkstra_from_set(
    platform: Platform, sources: Set[NodeId]
) -> Tuple[Dict[NodeId, Fraction], Dict[NodeId, Edge]]:
    """Min-cost distances from a *set* of already-reached nodes."""
    dist: Dict[NodeId, Fraction] = {s: Fraction(0) for s in sources}
    parent: Dict[NodeId, Edge] = {}
    # exact Fraction heap keys: float(nd) collapsed distances closer
    # than one double ulp, so a node could be finalised before a truly
    # shorter path relaxed it — its successors then kept stale distances
    heap: List[Tuple[Fraction, int, NodeId]] = [
        (Fraction(0), k, s) for k, s in enumerate(sorted(sources))
    ]
    heapq.heapify(heap)
    counter = len(heap)
    done: Set[NodeId] = set()
    while heap:
        _, _, u = heapq.heappop(heap)
        if u in done:
            continue
        done.add(u)
        for v in platform.successors(u):
            nd = dist[u] + platform.c(u, v)
            if v not in dist or nd < dist[v]:
                dist[v] = nd
                parent[v] = (u, v)
                heapq.heappush(heap, (nd, counter, v))
                counter += 1
    return dist, parent


def shortest_path_tree(
    platform: Platform, source: NodeId, targets: Sequence[NodeId]
) -> Optional[Arborescence]:
    """Union of min-cost paths source -> each target, pruned.

    Note the union of shortest paths from a single source is always an
    arborescence under consistent tie-breaking (each node keeps one parent).
    """
    platform.node(source)
    term_set = set(targets)
    dist, parent = _dijkstra_from_set(platform, {source})
    if not term_set <= set(dist):
        return None
    edges: Set[Edge] = set()
    for t in term_set:
        node = t
        while node != source:
            e = parent[node]
            edges.add(e)
            node = e[0]
    return _prune_non_terminal_leaves(edges, source, term_set)


def cheapest_insertion_tree(
    platform: Platform,
    source: NodeId,
    targets: Sequence[NodeId],
    order: Optional[Sequence[NodeId]] = None,
) -> Optional[Arborescence]:
    """Takahashi–Matsuyama: attach terminals by cheapest path from the tree.

    ``order`` overrides the insertion order (default: cheapest-first at
    each step, the classical greedy).
    """
    platform.node(source)
    term_set = set(targets)
    reached: Set[NodeId] = {source}
    edges: Set[Edge] = set()
    pending = list(order) if order is not None else None
    remaining = set(term_set)
    while remaining:
        dist, parent = _dijkstra_from_set(platform, reached)
        if pending is not None:
            nxt = None
            for t in pending:
                if t in remaining:
                    nxt = t
                    break
            if nxt is None or nxt not in dist:
                return None
        else:
            reachable = [t for t in remaining if t in dist]
            if not reachable:
                return None
            nxt = min(reachable, key=lambda t: (dist[t], t))
        # walk back to the tree
        node = nxt
        path_edges: List[Edge] = []
        while node not in reached:
            e = parent[node]
            path_edges.append(e)
            node = e[0]
        for (u, v) in path_edges:
            edges.add((u, v))
            reached.add(v)
        remaining.discard(nxt)
    return _prune_non_terminal_leaves(edges, source, term_set)


def _without_edge(platform: Platform, banned: Edge) -> Platform:
    g = Platform(f"{platform.name}-minus-{banned[0]}-{banned[1]}")
    for name in platform.nodes():
        g.add_node(name, platform.node(name).w)
    for spec in platform.edges():
        if (spec.src, spec.dst) != banned:
            g.add_edge(spec.src, spec.dst, spec.c)
    return g


def candidate_trees(
    platform: Platform, source: NodeId, targets: Sequence[NodeId]
) -> List[Arborescence]:
    """A polynomial pool of distinct candidate multicast trees.

    Diversity matters: packings beat single trees only when alternative
    trees shift load between ports, so beyond the two base heuristics and
    per-rotation insertion orders, the pool contains one *edge-exclusion*
    variant per edge used by the base trees (rerun the insertion heuristic
    with that edge removed).  Pool size stays O(|targets| + |E|).
    """
    targets = list(targets)
    pool: Set[Arborescence] = set()
    spt = shortest_path_tree(platform, source, targets)
    if spt:
        pool.add(spt)
    greedy = cheapest_insertion_tree(platform, source, targets)
    if greedy:
        pool.add(greedy)
    # one insertion tree per rotation of the target list — cheap diversity
    for k in range(len(targets)):
        rotation = targets[k:] + targets[:k]
        tree = cheapest_insertion_tree(platform, source, targets,
                                       order=rotation)
        if tree:
            pool.add(tree)
    tree = cheapest_insertion_tree(platform, source, targets,
                                   order=list(reversed(targets)))
    if tree:
        pool.add(tree)
    # edge-exclusion variants: force routes around every used edge
    base_edges: Set[Edge] = set()
    for t in pool:
        base_edges |= set(t)
    for banned in sorted(base_edges):
        reduced = _without_edge(platform, banned)
        tree = cheapest_insertion_tree(reduced, source, targets)
        if tree:
            pool.add(tree)
    return sorted(pool, key=lambda t: (len(t), sorted(t)))


def heuristic_multicast_packing(
    platform: Platform,
    source: NodeId,
    targets: Sequence[NodeId],
    backend: str = "exact",
) -> Tuple[Fraction, Dict[Arborescence, Fraction]]:
    """Polynomial multicast scheduler: optimal packing of candidate trees.

    Guarantees: at least the best candidate tree's stand-alone rate (the
    packing can always put full weight on one tree), at most the true
    optimum (candidates are a subset of all arborescences).
    """
    pool = candidate_trees(platform, source, targets)
    if not pool:
        return Fraction(0), {}
    return pack_trees(platform, pool, backend=backend)
