"""Divisible load scheduling on star platforms (section 5.2, ref [8]).

A *divisible* load of ``W`` units can be split arbitrarily.  The master
distributes chunks to workers over a one-port star; sending ``n`` units to
worker ``k`` costs ``C_k + c_k * n`` (affine: ``C_k`` is the start-up of
section 5.2) and computing them costs ``w_k * n``.

Implemented strategies:

* :func:`one_round_schedule` — the classical single-installment DLT
  solution: serve workers in a chosen order, sized so everyone finishes
  simultaneously (the known optimality condition for one round).
* :func:`multi_round_makespan` — the paper's periodic strategy: steady-state
  rates from the star LP, periods grouped by ``m`` to amortise start-ups,
  initialisation and clean-up phases, asymptotically optimal (§5.2 walks
  through the same four steps).
* :func:`makespan_lower_bound` — ``W / ntask(G)``: no schedule (with or
  without start-ups) beats the steady-state rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from .._rational import RationalLike, as_fraction
from .master_slave import bandwidth_centric_rates, star_throughput


@dataclass(frozen=True)
class StarWorker:
    """One worker of a divisible-load star."""

    w: Fraction      # compute time per load unit
    c: Fraction      # communication time per load unit
    startup: Fraction = Fraction(0)  # per-message start-up C_k


def _coerce_workers(workers: Sequence[StarWorker]) -> List[StarWorker]:
    out = []
    for wk in workers:
        out.append(
            StarWorker(
                as_fraction(wk.w), as_fraction(wk.c), as_fraction(wk.startup)
            )
        )
    return out


def one_round_schedule(
    total_load: RationalLike,
    workers: Sequence[StarWorker],
    order: Optional[Sequence[int]] = None,
    master_w: Optional[RationalLike] = None,
) -> Tuple[Fraction, List[Fraction]]:
    """Single-installment divisible load: chunk sizes + makespan.

    The master serves workers sequentially in ``order`` (default: by
    increasing ``c``, the bandwidth-centric order, optimal for one-port
    stars).  Chunks are sized so that all workers finish at the same
    instant — the classical DLT optimality condition.  If the master also
    computes (``master_w``), it processes the remainder concurrently and
    the returned makespan accounts for it.

    Returns ``(makespan, alphas)`` with ``alphas[k]`` the load given to
    worker ``k`` (input order).  All-exact rational arithmetic.
    """
    W = as_fraction(total_load)
    if W < 0:
        raise ValueError("total load must be non-negative")
    wk = _coerce_workers(workers)
    n = len(wk)
    if order is None:
        order = sorted(range(n), key=lambda k: (wk[k].c, k))
    else:
        order = list(order)
        if sorted(order) != list(range(n)):
            raise ValueError("order must be a permutation of the workers")

    # With all workers finishing at makespan M:
    #   finish_k = sum_{j before k, incl. k}(C_j + c_j a_j) + w_k a_k = M
    # Subtracting consecutive equations gives a triangular system:
    #   w_{k} a_{k} = w_{k-1} a_{k-1} - C_k - c_k a_k  (k in send order)
    # => a_k = (w_prev a_prev - C_k) / (c_k + w_k), a_0 from M unknown —
    # instead parametrise by a_0 and scale: a_k = p_k * a_0 + q_k.
    p: List[Fraction] = []
    q: List[Fraction] = []
    for idx, k in enumerate(order):
        ck, wkk, Ck = wk[k].c, wk[k].w, wk[k].startup
        if idx == 0:
            p.append(Fraction(1))
            q.append(Fraction(0))
        else:
            prev = order[idx - 1]
            wp = wk[prev].w
            p.append(wp * p[-1] / (ck + wkk))
            q.append((wp * q[-1] - Ck) / (ck + wkk))

    if master_w is not None:
        mw = as_fraction(master_w)
        # master computes from t=0 until M: load W - sum(a_k);
        # M = mw * (W - sum a) and M = sum_{j}(C_j + c_j a_j) + w_last a_last
        # Solve for a_0 using a_k = p_k a_0 + q_k.
        sum_p = sum(p, start=Fraction(0))
        sum_q = sum(q, start=Fraction(0))
        # expr1: M as seen by last worker:
        lhs_coeff = Fraction(0)
        lhs_const = Fraction(0)
        for idx, k in enumerate(order):
            lhs_coeff += wk[k].c * p[idx]
            lhs_const += wk[k].startup + wk[k].c * q[idx]
        last = order[-1]
        lhs_coeff += wk[last].w * p[-1]
        lhs_const += wk[last].w * q[-1]
        # expr2: M = mw (W - sum_p a0 - sum_q)
        denom = lhs_coeff + mw * sum_p
        if denom <= 0:
            raise ValueError("degenerate one-round system")
        a0 = (mw * (W - sum_q) - lhs_const) / denom
    else:
        sum_p = sum(p, start=Fraction(0))
        sum_q = sum(q, start=Fraction(0))
        if sum_p <= 0:
            raise ValueError("degenerate one-round system")
        a0 = (W - sum_q) / sum_p

    alphas_ordered = [p[idx] * a0 + q[idx] for idx in range(n)]
    if any(a < 0 for a in alphas_ordered):
        # start-ups too large for the small load: drop the last worker and
        # retry (standard resource-selection step in DLT with latencies).
        if n == 1:
            raise ValueError("load too small to use any worker")
        keep = order[:-1]
        sub_workers = [workers[k] for k in keep]
        mk, sub_alpha = one_round_schedule(
            W, sub_workers, order=None, master_w=master_w
        )
        alphas = [Fraction(0)] * n
        for pos, k in enumerate(keep):
            alphas[k] = sub_alpha[pos]
        return mk, alphas

    # makespan from the last worker's finish time
    M = Fraction(0)
    for idx, k in enumerate(order):
        M += wk[k].startup + wk[k].c * alphas_ordered[idx]
    M += wk[order[-1]].w * alphas_ordered[-1]
    if master_w is not None:
        M = max(M, as_fraction(master_w) * (W - sum(alphas_ordered, start=Fraction(0))))

    alphas = [Fraction(0)] * n
    for idx, k in enumerate(order):
        alphas[k] = alphas_ordered[idx]
    return M, alphas


def steady_state_rate(
    workers: Sequence[StarWorker], master_w: Optional[RationalLike] = None
) -> Fraction:
    """Load units processed per time-unit in steady state (no start-ups)."""
    wk = _coerce_workers(workers)
    mw = as_fraction(master_w) if master_w is not None else None
    if mw is None:
        rates = bandwidth_centric_rates(
            [x.w for x in wk], [x.c for x in wk]
        )
        return sum(rates, start=Fraction(0))
    return star_throughput(mw, [x.w for x in wk], [x.c for x in wk])


def multi_round_makespan(
    total_load: RationalLike,
    workers: Sequence[StarWorker],
    master_w: Optional[RationalLike] = None,
    rounds_scale: Optional[int] = None,
) -> Fraction:
    """Periodic multi-round schedule with start-up amortisation (§5.2).

    Steps mirror the paper exactly:

    1. the lower bound is ``W / rate`` where ``rate`` is the steady-state
       throughput without start-ups;
    2. group ``m`` elementary periods into one round so each worker pays
       one start-up per round; round length ``m*T + sum_k C_k``;
    3. initialisation ships each worker its first-round chunk serially
       (``A1 * m``); clean-up lets workers drain (``A2 * m``);
    4. with ``m ≈ sqrt(W / rate)`` the total time is
       ``W/rate + O(sqrt(W))`` — asymptotically optimal.

    Returns the exact makespan of the constructed schedule.
    """
    W = as_fraction(total_load)
    wk = _coerce_workers(workers)
    rate = steady_state_rate(workers, master_w)
    if rate <= 0:
        raise ValueError("platform cannot process any load")
    T = Fraction(1)  # elementary period of the fluid steady state
    rates = bandwidth_centric_rates([x.w for x in wk], [x.c for x in wk])
    mw = as_fraction(master_w) if master_w is not None else None
    master_rate = Fraction(0) if mw is None else Fraction(1) / mw

    if rounds_scale is None:
        # repro-lint: allow(exactness) — math.isqrt is exact integer
        # arithmetic (no float involved); it only sizes the round count
        m = max(1, math.isqrt(int(W / rate)) or 1)
    else:
        m = max(1, rounds_scale)

    startups = sum((x.startup for x in wk if True), start=Fraction(0))
    round_len = m * T + startups
    per_round = m * T * rate
    if per_round <= 0:
        raise ValueError("empty rounds")

    # initialisation: serially ship round-1 chunks (one message per worker)
    A1 = sum(
        (x.startup + x.c * (r * m * T) for x, r in zip(wk, rates)),
        start=Fraction(0),
    )
    full_rounds = int(W / per_round)
    remainder = W - per_round * full_rounds
    # steady phase: workers always busy; master overlaps its own share.
    steady = full_rounds * round_len
    # clean-up: the final partial round processed at the steady rate, plus
    # the slowest worker draining its last chunk.
    drain = max(
        (x.w * (r * m * T) for x, r in zip(wk, rates)),
        default=Fraction(0),
    )
    tail = (remainder / rate) if remainder > 0 else Fraction(0)
    return A1 + steady + tail + drain


def makespan_lower_bound(
    total_load: RationalLike,
    workers: Sequence[StarWorker],
    master_w: Optional[RationalLike] = None,
) -> Fraction:
    """``W / rate``: valid even with start-ups (they only slow things)."""
    W = as_fraction(total_load)
    return W / steady_state_rate(workers, master_w)
