"""Pipelined scatter — the SSPS(G) linear program (section 3.2).

``P_source`` repeatedly sends *distinct* messages to each target: message
type ``m_k`` is destined to target ``P_k``.  Variables:

* ``send(i, j, k)`` — fractional number of messages of type ``m_k``
  crossing edge ``e_ij`` per time-unit;
* ``s_ij`` — fraction of time the edge is busy; since distinct messages
  never share a transfer, ``s_ij = sum_k send(i,j,k) * c_ij`` (the **sum**
  rule — contrast with broadcast's ``max`` rule, section 3.3).

Constraints: one-port (send and receive), per-commodity conservation at
every intermediate node, and each target receiving ``TP`` messages of its
own type per time-unit.  ``TP`` is maximised; section 4 shows the bound is
achieved by the reconstructed periodic schedule.

The same machinery solves **personalised all-to-all** (every node sources a
commodity for every other node) and — by graph reversal — **gather**; the
paper notes scatter techniques extend to these and to reduce (section 4.2).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..lp import LinearProgram, lp_sum
from ..platform.graph import NodeId, Platform, PlatformError
from ..schedule.flows import cancel_cycles
from .activities import SteadyStateSolution


def build_ssps_lp(
    platform: Platform,
    source: NodeId,
    targets: Sequence[NodeId],
    port_model: str = "one-port",
    ports: int = 1,
) -> Tuple[LinearProgram, Dict[object, object]]:
    """Assemble SSPS(G) for ``source`` scattering to ``targets``.

    ``port_model`` selects the section 5.1 communication variant:
    ``"one-port"`` (full overlap, the paper's default),
    ``"send-or-receive"`` (merged port budget) or ``"multiport"`` (with
    ``ports`` cards per direction).
    """
    if port_model not in ("one-port", "send-or-receive", "multiport"):
        raise PlatformError(f"unknown port model {port_model!r}")
    if ports < 1:
        raise PlatformError("ports must be >= 1")
    platform.node(source)
    targets = list(targets)
    if not targets:
        raise PlatformError("scatter needs at least one target")
    for t in targets:
        platform.node(t)
        if t == source:
            raise PlatformError("the source cannot be a scatter target")
    if len(set(targets)) != len(targets):
        raise PlatformError("duplicate scatter targets")

    lp = LinearProgram(f"SSPS({platform.name})")
    handles: Dict[object, object] = {}
    tp = lp.variable("TP", lo=0)
    handles["TP"] = tp

    for spec in platform.edges():
        handles[("s", spec.src, spec.dst)] = lp.variable(
            f"s[{spec.src}->{spec.dst}]", lo=0, hi=1
        )
        for k in targets:
            # A target never re-emits its own messages (hi = 0): gross
            # arrivals at k then equal net delivery, so the delivery
            # equation cannot be padded by a circulation through k.
            hi = 0 if spec.src == k else None
            handles[("send", spec.src, spec.dst, k)] = lp.variable(
                f"send[{spec.src}->{spec.dst},{k}]", lo=0, hi=hi
            )

    # edge occupation: s_ij = sum_k send(i,j,k) * c_ij
    for spec in platform.edges():
        i, j = spec.src, spec.dst
        lp.add_constraint(
            handles[("s", i, j)]
            == lp_sum(handles[("send", i, j, k)] for k in targets) * spec.c,
            name=f"occupation[{i}->{j}]",
        )

    # port constraints under the chosen model
    for node in platform.nodes():
        out = [handles[("s", node, j)] for j in platform.successors(node)]
        inc = [handles[("s", j, node)] for j in platform.predecessors(node)]
        if port_model == "send-or-receive":
            if out or inc:
                lp.add_constraint(
                    lp_sum(out + inc) <= 1, name=f"port[{node}]"
                )
        else:
            budget = 1 if port_model == "one-port" else ports
            if out:
                lp.add_constraint(
                    lp_sum(out) <= budget, name=f"send-port[{node}]"
                )
            if inc:
                lp.add_constraint(
                    lp_sum(inc) <= budget, name=f"recv-port[{node}]"
                )

    # conservation: a non-source node forwards every message not addressed
    # to it (5th equation of SSPS)
    for k in targets:
        for node in platform.nodes():
            if node == source or node == k:
                continue
            inflow = lp_sum(
                handles[("send", j, node, k)]
                for j in platform.predecessors(node)
            )
            outflow = lp_sum(
                handles[("send", node, j, k)]
                for j in platform.successors(node)
            )
            lp.add_constraint(inflow == outflow, name=f"conserve[{node},{k}]")

    # each target receives TP messages of its own type (6th equation)
    for k in targets:
        arrivals = lp_sum(
            handles[("send", j, k, k)] for j in platform.predecessors(k)
        )
        lp.add_constraint(arrivals == tp * 1, name=f"deliver[{k}]")

    lp.maximize(tp)
    return lp, handles


def patch_ssps_coefficients(
    lp: LinearProgram,
    handles: Dict[object, object],
    platform: Platform,
    targets: Sequence[NodeId],
) -> None:
    """Rewrite every weight-derived coefficient of an assembled SSPS model.

    The structure-vs-coefficient split behind the ``warm_resolve``
    capability (:mod:`repro.problems.registry`), mirroring
    :func:`repro.core.master_slave.patch_ssms_coefficients`: only the
    occupation constraints ``s_ij - sum_k c_ij * send(i,j,k) == 0`` carry
    weights (SSPS has no compute terms, so node weights never appear);
    port, conservation and delivery constraints — and the objective — are
    weight-free.  A weight-only platform mutation therefore moves exactly
    the ``c_ij`` coefficients patched here.
    """
    for spec in platform.edges():
        i, j = spec.src, spec.dst
        name = f"occupation[{i}->{j}]"
        for k in targets:
            lp.set_constraint_coefficient(
                name, handles[("send", i, j, k)], -spec.c
            )


def package_ssps_solution(
    platform: Platform,
    source: NodeId,
    targets: Sequence[NodeId],
    sol,
    handles: Dict[object, object],
    backend: str = "exact",
    port_model: str = "one-port",
) -> SteadyStateSolution:
    """Turn an SSPS LP solution into verified per-commodity activities.

    Shared by :func:`solve_scatter` and the warm re-solve path (which
    re-solves a coefficient-patched copy of the same LP, reusing the
    handle dict across platforms with identical topology).
    """
    send: Dict[Tuple[NodeId, NodeId, str], Fraction] = {}
    per_commodity: Dict[str, Dict[Tuple[NodeId, NodeId], Fraction]] = {
        k: {} for k in targets
    }
    for key, var in handles.items():
        if isinstance(key, tuple) and key[0] == "send":
            _, i, j, k = key
            rate = sol[var]
            if rate != 0:
                per_commodity[k][(i, j)] = rate

    # cancel degenerate circulations per commodity, then rebuild s under
    # the sum rule so the solution is reconstruction-friendly.
    s: Dict[Tuple[NodeId, NodeId], Fraction] = {}
    for spec in platform.edges():
        s[(spec.src, spec.dst)] = Fraction(0)
    for k in targets:
        clean = cancel_cycles(per_commodity[k])
        for (i, j), rate in clean.items():
            if rate != 0:
                send[(i, j, str(k))] = rate
                s[(i, j)] += rate * platform.c(i, j)

    out = SteadyStateSolution(
        platform=platform,
        problem="scatter",
        throughput=sol.objective,
        s=s,
        send=send,
        source=source,
        targets=tuple(targets),
        edge_occupation_mode="sum",
    )
    if backend == "exact" and port_model == "one-port":
        out.verify()
    return out


def solve_scatter(
    platform: Platform,
    source: NodeId,
    targets: Sequence[NodeId],
    backend: str = "exact",
    port_model: str = "one-port",
    ports: int = 1,
) -> SteadyStateSolution:
    """Solve SSPS(G); returns verified activities with per-commodity flows.

    ``port_model``/``ports`` select the section 5.1 variant (the returned
    solution's one-port invariant check is only run for the default model).
    """
    lp, handles = build_ssps_lp(
        platform, source, targets, port_model=port_model, ports=ports
    )
    sol = lp.solve(backend=backend)
    return package_ssps_solution(
        platform, source, targets, sol, handles,
        backend=backend, port_model=port_model,
    )


def reversed_platform(platform: Platform) -> Platform:
    """Same nodes, every edge direction flipped (gather = reversed scatter)."""
    out = Platform(f"{platform.name}-reversed")
    for spec in platform._nodes.values():  # noqa: SLF001 — same package
        out.add_node(spec.name, spec.w)
    for spec in platform.edges():
        out.add_edge(spec.dst, spec.src, spec.c)
    return out


def gather_from_scatter(
    platform: Platform,
    sink: NodeId,
    sources: Sequence[NodeId],
    rsol: SteadyStateSolution,
) -> SteadyStateSolution:
    """Re-express a reversed-platform scatter solution as a gather solution
    on the *original* platform (edge directions restored; commodity ``k``
    then flows from source node ``k`` towards the sink)."""
    send = {
        (j, i, k): rate for (i, j, k), rate in rsol.send.items()
    }
    s = {(j, i): v for (i, j), v in rsol.s.items()}
    return SteadyStateSolution(
        platform=platform,
        problem="gather",
        throughput=rsol.throughput,
        s=s,
        send=send,
        source=sink,  # the distinguished node
        targets=tuple(sources),
        edge_occupation_mode="sum",
    )


def solve_gather(
    platform: Platform,
    sink: NodeId,
    sources: Sequence[NodeId],
    backend: str = "exact",
) -> SteadyStateSolution:
    """Pipelined gather: every source sends distinct messages to ``sink``.

    Gather is scatter on the reversed platform; the returned solution is
    expressed on the *original* platform (edge directions restored).
    """
    rsol = solve_scatter(reversed_platform(platform), sink, sources,
                         backend=backend)
    return gather_from_scatter(platform, sink, sources, rsol)


def build_a2a_lp(
    platform: Platform,
    participants: Optional[Sequence[NodeId]] = None,
) -> Tuple[LinearProgram, Dict[object, object]]:
    """Assemble the personalised all-to-all LP (end of section 4.2).

    Every participant sends a distinct commodity to every other
    participant, all at the common rate ``TP`` (maximised).  Handles map
    ``"TP"``, ``("s", i, j)`` and ``("f", i, j, a, b)`` to LP variables;
    ``handles["participants"]`` records the resolved participant list so
    the warm re-solve patch/package steps need no re-derivation.
    """
    nodes = list(participants) if participants is not None else platform.nodes()
    if len(nodes) < 2:
        raise PlatformError("all-to-all needs at least two participants")
    commodities = [(a, b) for a in nodes for b in nodes if a != b]

    lp = LinearProgram(f"A2A({platform.name})")
    handles: Dict[object, object] = {
        "participants": tuple(nodes),
        "commodities": tuple(commodities),
    }
    tp = lp.variable("TP", lo=0)
    handles["TP"] = tp
    for spec in platform.edges():
        handles[("s", spec.src, spec.dst)] = lp.variable(
            f"s[{spec.src}->{spec.dst}]", lo=0, hi=1
        )
        for (a, b) in commodities:
            handles[("f", spec.src, spec.dst, a, b)] = lp.variable(
                f"f[{spec.src}->{spec.dst},{a}->{b}]", lo=0
            )
    # edge occupation under the sum rule — the only weight-carrying rows,
    # named so the warm re-solve patch can find them
    for spec in platform.edges():
        i, j = spec.src, spec.dst
        lp.add_constraint(
            handles[("s", i, j)]
            == lp_sum(handles[("f", i, j, a, b)] for (a, b) in commodities)
            * spec.c,
            name=f"occupation[{i}->{j}]",
        )
    for node in platform.nodes():
        out = [handles[("s", node, j)] for j in platform.successors(node)]
        if out:
            lp.add_constraint(lp_sum(out) <= 1)
        inc = [handles[("s", j, node)] for j in platform.predecessors(node)]
        if inc:
            lp.add_constraint(lp_sum(inc) <= 1)
    for (a, b) in commodities:
        for node in platform.nodes():
            inflow = lp_sum(
                handles[("f", j, node, a, b)]
                for j in platform.predecessors(node)
            )
            outflow = lp_sum(
                handles[("f", node, j, a, b)]
                for j in platform.successors(node)
            )
            if node == a:
                lp.add_constraint(outflow - inflow == tp * 1)
            elif node == b:
                lp.add_constraint(inflow - outflow == tp * 1)
            else:
                lp.add_constraint(inflow == outflow)
    lp.maximize(tp)
    return lp, handles


def patch_a2a_coefficients(
    lp: LinearProgram,
    handles: Dict[object, object],
    platform: Platform,
) -> None:
    """Rewrite every weight-derived coefficient of an assembled all-to-all
    model (the structure-vs-coefficient split behind ``warm_resolve``,
    mirroring :func:`patch_ssps_coefficients`): only the occupation rows
    ``s_ij - sum_ab c_ij * f(i,j,a,b) == 0`` carry weights."""
    for spec in platform.edges():
        i, j = spec.src, spec.dst
        name = f"occupation[{i}->{j}]"
        for (a, b) in handles["commodities"]:
            lp.set_constraint_coefficient(
                name, handles[("f", i, j, a, b)], -spec.c
            )


def package_a2a_solution(
    platform: Platform,
    sol,
    handles: Dict[object, object],
    backend: str = "exact",
    participants: Optional[Sequence[NodeId]] = None,
) -> SteadyStateSolution:
    """All-to-all LP solution -> reconstructable steady-state activities.

    Commodities are named ``"a->b"``; the reconstruction pipeline
    decomposes each into routes from ``a`` to ``b`` and orchestrates the
    whole exchange with the usual edge colouring.

    ``participants`` is the *requesting* call's participant ordering —
    it must be passed on the warm path, where ``handles`` belongs to the
    first request that built the hot model and may list the same nodes
    in a different order (the hot-model key sorts participants); falling
    back to the handles ordering would make a warm result differ from
    the cold solve of the identical request.
    """
    per_commodity: Dict[Tuple[NodeId, NodeId],
                        Dict[Tuple[NodeId, NodeId], Fraction]] = {}
    for key, var in handles.items():
        if isinstance(key, tuple) and key[0] == "f":
            _, i, j, a, b = key
            rate = sol[var]
            if rate != 0:
                per_commodity.setdefault((a, b), {})[(i, j)] = rate
    send: Dict[Tuple[NodeId, NodeId, str], Fraction] = {}
    s: Dict[Tuple[NodeId, NodeId], Fraction] = {
        (spec.src, spec.dst): Fraction(0) for spec in platform.edges()
    }
    for (a, b), flow in per_commodity.items():
        clean = cancel_cycles(flow)
        for (i, j), rate in clean.items():
            if rate != 0:
                send[(i, j, f"{a}->{b}")] = rate
                s[(i, j)] += rate * platform.c(i, j)
    if participants is None:
        targets = tuple(handles["participants"])
    else:
        targets = tuple(participants) or tuple(platform.nodes())
    out = SteadyStateSolution(
        platform=platform,
        problem="all-to-all",
        throughput=sol.objective,
        s=s,
        send=send,
        source=None,
        targets=targets,
        edge_occupation_mode="sum",
    )
    if backend == "exact":
        out.verify()
    return out


def solve_all_to_all(
    platform: Platform,
    participants: Optional[Sequence[NodeId]] = None,
    backend: str = "exact",
) -> Tuple[Fraction, Dict[Tuple[NodeId, NodeId, NodeId, NodeId], Fraction]]:
    """Personalised all-to-all: every participant sends a distinct message
    to every other participant, at common rate ``TP`` (maximised).

    Returns ``(TP, flows)`` with ``flows[(i, j, src, dst)]`` the rate of the
    ``src -> dst`` commodity on edge ``i -> j``.  Mentioned at the end of
    section 4.2 as a direct extension of the scatter machinery.
    """
    lp, handles = build_a2a_lp(platform, participants)
    sol = lp.solve(backend=backend)
    flows = {
        key[1:]: sol[var]
        for key, var in handles.items()
        if isinstance(key, tuple) and key[0] == "f" and sol[var] != 0
    }
    return sol.objective, flows


def solve_all_to_all_solution(
    platform: Platform,
    participants: Optional[Sequence[NodeId]] = None,
    backend: str = "exact",
) -> SteadyStateSolution:
    """All-to-all as a reconstructable :class:`SteadyStateSolution`."""
    lp, handles = build_a2a_lp(platform, participants)
    sol = lp.solve(backend=backend)
    return package_a2a_solution(platform, sol, handles, backend=backend,
                                participants=participants or ())
