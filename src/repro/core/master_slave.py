"""Steady-state master–slave tasking: the SSMS(G) linear program (§3.1).

A master node holds a large collection of independent, identical tasks
(each task = a file with everything needed to execute it).  The LP below
characterises the optimal steady-state: for each node the fraction of time
``alpha_i`` spent computing, for each edge the fraction ``s_ij`` spent
sending task files, under

* one-port constraints (send and receive separately),
* "the master does not receive anything" (``s_jm = 0``),
* the conservation law: tasks received = tasks computed + tasks forwarded,
  per time-unit, for every non-master node.

The objective maximises ``ntask(G) = sum_i alpha_i / w_i`` — the number of
tasks processed by the whole platform per time-unit.  The optimum is an
upper bound for *any* schedule's steady-state rate, and section 4 shows it
is achieved by a periodic schedule; :mod:`repro.schedule.reconstruction`
builds that schedule and :mod:`repro.simulator` executes it.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from .._rational import as_fraction
from ..lp import LinearProgram, LPSolution, lp_sum
from ..platform.graph import NodeId, Platform, PlatformError
from .activities import SteadyStateSolution


def declare_ssms_variables(
    lp: LinearProgram, platform: Platform, master: NodeId
) -> Dict[object, object]:
    """Declare the SSMS activity variables: ``("alpha", i)`` in [0, 1] for
    compute-capable nodes and ``("s", i, j)`` in [0, 1] per edge, with
    edges into the master pinned to zero (5th equation).  Shared by the
    one-port build below and the section-5.1 port-model variants, which
    differ only in their port constraints."""
    platform.node(master)  # validate
    handles: Dict[object, object] = {}
    for node in platform.nodes():
        if platform.node(node).can_compute:
            handles[("alpha", node)] = lp.variable(f"alpha[{node}]", lo=0, hi=1)
    for spec in platform.edges():
        hi = 0 if spec.dst == master else 1
        handles[("s", spec.src, spec.dst)] = lp.variable(
            f"s[{spec.src}->{spec.dst}]", lo=0, hi=hi
        )
    return handles


def add_ssms_conservation_and_objective(
    lp: LinearProgram,
    handles: Dict[object, object],
    platform: Platform,
    master: NodeId,
) -> None:
    """The weight-carrying part of every SSMS-family LP: per-node
    conservation (named ``conserve[i]``, so
    :func:`patch_ssms_coefficients` can find it) and the throughput
    objective ``ntask(G) = sum_i alpha_i / w_i``."""
    # conservation law (last equation): for i != m,
    #   sum_j s_ji / c_ji  ==  alpha_i / w_i + sum_j s_ij / c_ij
    for node in platform.nodes():
        if node == master:
            continue
        inflow = lp_sum(
            handles[("s", j, node)] / platform.c(j, node)
            for j in platform.predecessors(node)
        )
        outflow = lp_sum(
            handles[("s", node, j)] / platform.c(node, j)
            for j in platform.successors(node)
        )
        spec = platform.node(node)
        if spec.can_compute:
            compute = handles[("alpha", node)] * (Fraction(1) / spec.w)
            lp.add_constraint(inflow == compute + outflow, name=f"conserve[{node}]")
        else:
            lp.add_constraint(inflow == outflow, name=f"conserve[{node}]")

    lp.maximize(
        lp_sum(
            handles[("alpha", node)] * (Fraction(1) / platform.node(node).w)
            for node in platform.nodes()
            if platform.node(node).can_compute
        )
    )


def build_ssms_lp(
    platform: Platform, master: NodeId
) -> Tuple[LinearProgram, Dict[str, object]]:
    """Assemble the SSMS(G) LP of section 3.1.

    Returns the LP and a handle dict mapping ``("alpha", i)`` and
    ``("s", i, j)`` to LP variables.
    """
    lp = LinearProgram(f"SSMS({platform.name})")
    handles = declare_ssms_variables(lp, platform, master)

    # one-port constraints (3rd and 4th equations)
    for node in platform.nodes():
        out = [handles[("s", node, j)] for j in platform.successors(node)]
        if out:
            lp.add_constraint(lp_sum(out) <= 1, name=f"send-port[{node}]")
        inc = [handles[("s", j, node)] for j in platform.predecessors(node)]
        if inc:
            lp.add_constraint(lp_sum(inc) <= 1, name=f"recv-port[{node}]")

    add_ssms_conservation_and_objective(lp, handles, platform, master)
    return lp, handles


def patch_ssms_coefficients(
    lp: LinearProgram,
    handles: Dict[str, object],
    platform: Platform,
    master: NodeId,
) -> None:
    """Rewrite every weight-derived coefficient of an assembled SSMS model.

    The structure-vs-coefficient split behind the ``warm_resolve``
    capability (:mod:`repro.problems.registry`): the conservation law of
    node ``i`` was assembled as ``inflow - compute - outflow == 0`` with
    coefficients ``+1/c_ji`` (on ``s_ji``), ``-1/w_i`` (on ``alpha_i``)
    and ``-1/c_ij`` (on ``s_ij``); the objective carries ``+1/w_i`` per
    compute node.  One-port constraints and variable bounds are
    weight-free, so a weight-only platform mutation moves exactly these
    coefficients — the model is patched through the
    :class:`~repro.lp.model.LinearProgram` rebuild hook and re-solved
    without re-assembly.
    """
    one = Fraction(1)
    for node in platform.nodes():
        if node == master:
            continue
        name = f"conserve[{node}]"
        for j in platform.predecessors(node):
            lp.set_constraint_coefficient(
                name, handles[("s", j, node)], one / platform.c(j, node)
            )
        for j in platform.successors(node):
            lp.set_constraint_coefficient(
                name, handles[("s", node, j)], -one / platform.c(node, j)
            )
        spec = platform.node(node)
        if spec.can_compute:
            lp.set_constraint_coefficient(
                name, handles[("alpha", node)], -one / spec.w
            )
    for node in platform.nodes():
        spec = platform.node(node)
        if spec.can_compute:
            lp.set_objective_coefficient(
                handles[("alpha", node)], one / spec.w
            )


def package_ssms_solution(
    platform: Platform,
    master: NodeId,
    sol: LPSolution,
    handles: Dict[str, object],
    backend: str = "exact",
    verify: bool = True,
) -> SteadyStateSolution:
    """Turn an SSMS LP solution back into verified steady-state activities.

    Shared by :func:`solve_master_slave` and the warm re-solve path of
    :mod:`repro.service.incremental` (which re-solves a coefficient-patched
    copy of the same LP, so the handle dict is reused across platforms with
    identical topology).  ``verify=False`` skips the one-port invariant
    check — the section-5.1 port-model variants relax exactly that
    invariant, so their packaging reuses this with verification off.
    """
    alpha: Dict[NodeId, Fraction] = {}
    s: Dict[Tuple[NodeId, NodeId], Fraction] = {}
    for key, var in handles.items():
        if key[0] == "alpha":
            alpha[key[1]] = sol[var]
        else:
            s[(key[1], key[2])] = sol[var]
    out = SteadyStateSolution(
        platform=platform,
        problem="master-slave",
        throughput=sol.objective,
        alpha=alpha,
        s=s,
        source=master,
    )
    out.simplify()  # cancel degenerate flow circulations (see activities.py)
    if backend == "exact" and verify:
        out.verify()
    return out


def solve_master_slave(
    platform: Platform, master: NodeId, backend: str = "exact"
) -> SteadyStateSolution:
    """Solve SSMS(G) and return verified steady-state activities.

    The returned solution satisfies every invariant of
    :class:`~repro.core.activities.SteadyStateSolution` exactly (with the
    default exact backend).
    """
    lp, handles = build_ssms_lp(platform, master)
    sol = lp.solve(backend=backend)
    return package_ssms_solution(platform, master, sol, handles, backend=backend)


def ntask(platform: Platform, master: NodeId, backend: str = "exact") -> Fraction:
    """The paper's ``ntask(G)``: optimal tasks per time-unit."""
    return solve_master_slave(platform, master, backend=backend).throughput


# ----------------------------------------------------------------------
# Closed-form oracle for single-level star platforms
# ----------------------------------------------------------------------
def star_throughput(
    master_w: Fraction,
    worker_w: Sequence[Fraction],
    link_c: Sequence[Fraction],
) -> Fraction:
    """Optimal steady-state throughput of a star platform, in closed form.

    On a star (master + independent workers, single links) SSMS reduces to
    a fractional knapsack on the master's *send port*:

        maximise   1/w_m + sum_k x_k
        subject to sum_k x_k c_k <= 1,  0 <= x_k <= 1/w_k

    whose greedy solution serves workers by **increasing communication
    cost** (the bandwidth-centric principle of [2, 11]: give tasks to the
    cheapest-to-feed children first, regardless of their speed).  Used as an
    independent oracle for the LP in tests.
    """
    if len(worker_w) != len(link_c):
        raise ValueError("worker_w and link_c must have the same length")
    m_w = as_fraction(master_w)
    budget = Fraction(1)
    total = Fraction(1) / m_w
    order = sorted(
        range(len(worker_w)), key=lambda k: (as_fraction(link_c[k]), k)
    )
    for k in order:
        if budget <= 0:
            break
        c = as_fraction(link_c[k])
        w = as_fraction(worker_w[k])
        cap = Fraction(1) / w          # worker's max task rate
        affordable = budget / c        # rate the remaining port budget allows
        x = min(cap, affordable)
        total += x
        budget -= x * c
    return total


def bandwidth_centric_rates(
    worker_w: Sequence[Fraction], link_c: Sequence[Fraction]
) -> List[Fraction]:
    """Per-worker task rates of the greedy star solution (same order as input)."""
    if len(worker_w) != len(link_c):
        raise ValueError("worker_w and link_c must have the same length")
    budget = Fraction(1)
    rates = [Fraction(0)] * len(worker_w)
    order = sorted(
        range(len(worker_w)), key=lambda k: (as_fraction(link_c[k]), k)
    )
    for k in order:
        if budget <= 0:
            break
        c = as_fraction(link_c[k])
        w = as_fraction(worker_w[k])
        x = min(Fraction(1) / w, budget / c)
        rates[k] = x
        budget -= x * c
    return rates
