"""Series of broadcasts: the `max`-rule LP and its achievability (§4.3).

Broadcast sends the *same* message to every node.  Two messages of the same
operation crossing one edge need only one transfer, so the edge occupation
rule becomes ``s_ij = max_k send(i,j,k) * c_ij`` instead of the scatter
sum.  The paper (citing [5]) states that — contrarily to multicast — this
optimistic bound **is achievable** for broadcast: since every intermediate
node ends up with the full information, it never matters which particular
message copy travelled where.

This module provides:

* :func:`broadcast_lp_bound` — the max-rule LP optimum (upper bound);
* :func:`solve_broadcast` — the bound plus a *constructive* achiever: an
  optimal fractional packing of spanning arborescences (exhaustive on
  small platforms, greedy fallback on larger ones);
* :func:`edmonds_cut_bound` — the classical edge-capacity bound (min over
  targets of the max-flow from the source), for analysis: it ignores
  one-port constraints and so can exceed the LP bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..lp import LinearProgram, lp_sum
from ..platform.graph import NodeId, Platform, PlatformError
from .trees import (
    Arborescence,
    TreeEnumerationLimit,
    enumerate_arborescences,
    greedy_tree_packing,
    pack_trees,
)


def build_broadcast_lp(
    platform: Platform,
    source: NodeId,
    targets: Optional[Sequence[NodeId]] = None,
) -> Tuple[LinearProgram, Dict[object, object]]:
    """Max-rule LP: like SSPS but ``s_ij >= send(i,j,k) * c_ij`` per k.

    With the objective pushing ``TP`` up and the one-port constraints
    pushing ``s_ij`` down, ``s_ij`` settles at the max over commodities —
    the linearisation is exact at the optimum.
    """
    platform.node(source)
    if targets is None:
        targets = [n for n in platform.nodes() if n != source]
    targets = list(targets)
    if not targets:
        raise PlatformError("broadcast needs at least one receiver")
    for t in targets:
        if t == source:
            raise PlatformError("the source cannot be a broadcast target")

    lp = LinearProgram(f"SSB({platform.name})")
    handles: Dict[object, object] = {}
    tp = lp.variable("TP", lo=0)
    handles["TP"] = tp
    for spec in platform.edges():
        handles[("s", spec.src, spec.dst)] = lp.variable(
            f"s[{spec.src}->{spec.dst}]", lo=0, hi=1
        )
        for k in targets:
            hi = 0 if spec.src == k else None
            handles[("send", spec.src, spec.dst, k)] = lp.variable(
                f"send[{spec.src}->{spec.dst},{k}]", lo=0, hi=hi
            )
    for spec in platform.edges():
        i, j = spec.src, spec.dst
        for k in targets:
            lp.add_constraint(
                handles[("s", i, j)] >= handles[("send", i, j, k)] * spec.c,
                name=f"occupation[{i}->{j},{k}]",
            )
    for node in platform.nodes():
        out = [handles[("s", node, j)] for j in platform.successors(node)]
        if out:
            lp.add_constraint(lp_sum(out) <= 1, name=f"send-port[{node}]")
        inc = [handles[("s", j, node)] for j in platform.predecessors(node)]
        if inc:
            lp.add_constraint(lp_sum(inc) <= 1, name=f"recv-port[{node}]")
    for k in targets:
        for node in platform.nodes():
            if node == source or node == k:
                continue
            inflow = lp_sum(
                handles[("send", j, node, k)]
                for j in platform.predecessors(node)
            )
            outflow = lp_sum(
                handles[("send", node, j, k)]
                for j in platform.successors(node)
            )
            lp.add_constraint(inflow == outflow, name=f"conserve[{node},{k}]")
        arrivals = lp_sum(
            handles[("send", j, k, k)] for j in platform.predecessors(k)
        )
        lp.add_constraint(arrivals == tp * 1, name=f"deliver[{k}]")
    lp.maximize(tp)
    return lp, handles


def broadcast_lp_bound(
    platform: Platform,
    source: NodeId,
    targets: Optional[Sequence[NodeId]] = None,
    backend: str = "exact",
) -> Fraction:
    """Upper bound on broadcast throughput (max-rule LP optimum)."""
    lp, _ = build_broadcast_lp(platform, source, targets)
    return lp.solve(backend=backend).objective


@dataclass
class BroadcastSolution:
    """LP bound and a constructive tree packing achieving (or approaching) it."""

    platform: Platform
    source: NodeId
    lp_bound: Fraction
    achieved: Fraction
    packing: Dict[Arborescence, Fraction]
    exhaustive: bool

    @property
    def optimal(self) -> bool:
        """True when the packing provably attains the LP bound."""
        return self.achieved == self.lp_bound

    def period(self) -> int:
        from .._rational import lcm_denominators

        return lcm_denominators(
            list(self.packing.values()) + [self.achieved]
        )


def solve_broadcast(
    platform: Platform,
    source: NodeId,
    backend: str = "exact",
    tree_limit: int = 100_000,
) -> BroadcastSolution:
    """Bound + constructive packing for a series of broadcasts.

    On platforms small enough for exhaustive arborescence enumeration the
    packing is *optimal* and — per [5] — matches the LP bound exactly
    (asserted by the benchmark suite).  Larger platforms fall back to the
    polynomial greedy packing, yielding a certified lower bound.
    """
    bound = broadcast_lp_bound(platform, source, backend=backend)
    try:
        trees = enumerate_arborescences(platform, source, limit=tree_limit)
        achieved, packing = pack_trees(platform, trees, backend=backend)
        exhaustive = True
    except TreeEnumerationLimit:
        achieved, packing = greedy_tree_packing(platform, source)
        exhaustive = False
    return BroadcastSolution(
        platform=platform,
        source=source,
        lp_bound=bound,
        achieved=achieved,
        packing=packing,
        exhaustive=exhaustive,
    )


def solve_reduce(
    platform: Platform,
    root: NodeId,
    backend: str = "exact",
    tree_limit: int = 100_000,
) -> BroadcastSolution:
    """Series of reductions: reverse-broadcast with message combining.

    Each operation combines one value from every node into the root via an
    in-tree; partial results merge at relays, so — like broadcast — two
    flows sharing an edge share the transfer (the ``max`` rule on the
    reversed platform).  Section 4.2 notes the scatter/reduce family is
    solvable in polynomial time [12]; we reuse the broadcast machinery on
    the reversed graph.
    """
    reversed_platform = Platform(f"{platform.name}-reversed")
    for name in platform.nodes():
        reversed_platform.add_node(name, platform.node(name).w)
    for spec in platform.edges():
        reversed_platform.add_edge(spec.dst, spec.src, spec.c)
    rsol = solve_broadcast(
        reversed_platform, root, backend=backend, tree_limit=tree_limit
    )
    packing = {
        frozenset((v, u) for (u, v) in tree): rate
        for tree, rate in rsol.packing.items()
    }
    return BroadcastSolution(
        platform=platform,
        source=root,
        lp_bound=rsol.lp_bound,
        achieved=rsol.achieved,
        packing=packing,
        exhaustive=rsol.exhaustive,
    )


def edmonds_cut_bound(
    platform: Platform, source: NodeId
) -> Fraction:
    """Min over nodes of max-flow(source -> node), capacities ``1/c_ij``.

    Edmonds' branching theorem makes this the packing bound when only edge
    capacities constrain the system; the one-port model is stricter, so
    ``broadcast throughput <= min(this, LP bound)``.
    """
    best: Optional[Fraction] = None
    for node in platform.nodes():
        if node == source:
            continue
        f = platform.min_cut_value(source, node)
        if best is None or f < best:
            best = f
    if best is None:
        raise PlatformError("platform has a single node")
    return best
