"""Steady-state scheduling of collections of identical DAGs (§4.2).

The paper generalises master–slave tasking to *independent task graphs*:
"collections of identical DAGs are to be scheduled in order to execute the
same suite of algorithmic kernels, but using different data samples" —
mixed data and task parallelism.

Model
-----
A :class:`TaskGraph` has task *types* (each with a computational weight:
executing type ``k`` on node ``i`` takes ``w_i * work_k``) and *file types*
on precedence edges (shipping file ``(k, l)`` over edge ``e_ij`` takes
``c_ij * size_kl``).  Instances are independent; within an instance, type
``l`` needs one ``(k, l)`` file from every predecessor ``k``.

A virtual ``__begin__`` type anchors the input data at the master: every
root type consumes an input file produced by ``__begin__``, which only the
master executes (at zero cost).  Symmetrically an optional ``__end__``
collects results.

The LP below is the *rate relaxation* used by the steady-state literature
(cf. [6, 4]): per-node execution rates per type, per-edge file-transfer
rates per file type, conservation of every file type at every node, compute
and one-port time budgets.  For fork/tree-shaped DAGs the relaxation is
exact; for general DAGs it upper-bounds the throughput (the same-instance
consistency of multi-predecessor joins is relaxed), matching the paper's
remark that the general problem is solved only for DAGs with a polynomial
number of simple paths — and its conjecture that the general case is
NP-hard (section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .._rational import RationalLike, as_fraction
from ..lp import LinearProgram, lp_sum
from ..platform.graph import NodeId, Platform, PlatformError

BEGIN = "__begin__"
END = "__end__"


class TaskGraphError(ValueError):
    """Invalid DAG specification."""


@dataclass
class TaskGraph:
    """Typed DAG template executed once per data sample.

    ``types``: name -> computational work (time on a ``w = 1`` node).
    ``files``: (producer type, consumer type) -> file size (time per
    ``c = 1`` link).
    """

    types: Dict[str, Fraction] = field(default_factory=dict)
    files: Dict[Tuple[str, str], Fraction] = field(default_factory=dict)

    def add_type(self, name: str, work: RationalLike) -> None:
        if name in self.types:
            raise TaskGraphError(f"duplicate type {name!r}")
        workf = as_fraction(work)
        if workf < 0:
            raise TaskGraphError("work must be non-negative")
        self.types[name] = workf

    def add_file(self, producer: str, consumer: str, size: RationalLike) -> None:
        for t in (producer, consumer):
            if t not in self.types:
                raise TaskGraphError(f"unknown type {t!r}")
        if (producer, consumer) in self.files:
            raise TaskGraphError(f"duplicate file {producer}->{consumer}")
        sizef = as_fraction(size)
        if sizef <= 0:
            raise TaskGraphError("file size must be positive")
        self.files[(producer, consumer)] = sizef
        if self._has_cycle():
            del self.files[(producer, consumer)]
            raise TaskGraphError(
                f"file {producer}->{consumer} would create a cycle"
            )

    def _has_cycle(self) -> bool:
        color: Dict[str, int] = {}

        def dfs(u: str) -> bool:
            color[u] = 1
            for (a, b) in self.files:
                if a == u:
                    if color.get(b, 0) == 1:
                        return True
                    if color.get(b, 0) == 0 and dfs(b):
                        return True
            color[u] = 2
            return False

        return any(color.get(t, 0) == 0 and dfs(t) for t in self.types)

    def predecessors(self, t: str) -> List[str]:
        return [a for (a, b) in self.files if b == t]

    def successors(self, t: str) -> List[str]:
        return [b for (a, b) in self.files if a == t]

    def roots(self) -> List[str]:
        return [
            t for t in self.types
            if not self.predecessors(t) and t not in (BEGIN, END)
        ]

    @staticmethod
    def single_task(work: RationalLike = 1, input_size: RationalLike = 1) -> "TaskGraph":
        """The degenerate DAG equivalent to master-slave tasking."""
        dag = TaskGraph()
        dag.add_type("task", work)
        dag.anchor_at_master(input_size)
        return dag

    @staticmethod
    def chain(
        works: Sequence[RationalLike], sizes: Sequence[RationalLike],
        input_size: RationalLike = 1,
    ) -> "TaskGraph":
        """A linear pipeline ``t0 -> t1 -> ...`` (sizes between stages)."""
        if len(sizes) != len(works) - 1:
            raise TaskGraphError("need len(works) - 1 inter-stage sizes")
        dag = TaskGraph()
        for k, wk in enumerate(works):
            dag.add_type(f"t{k}", wk)
        for k, sz in enumerate(sizes):
            dag.add_file(f"t{k}", f"t{k + 1}", sz)
        dag.anchor_at_master(input_size)
        return dag

    @staticmethod
    def laplace(
        n: int,
        work: RationalLike = 1,
        size: RationalLike = 1,
        input_size: RationalLike = 1,
    ) -> "TaskGraph":
        """The Laplace task graph of the paper's concluding open problem.

        An ``n x n`` grid of types ``l{i}_{j}`` where each cell depends on
        its upper and left neighbours — the dependence structure of a
        Gauss–Seidel / Laplace stencil sweep.  Its number of simple paths
        is exponential (binomial(2n-2, n-1) source→sink paths), which is
        exactly why the paper conjectures the steady-state throughput of
        such collections is NP-hard to compute (section 6).  Our rate
        relaxation still yields a valid *upper bound* in polynomial time.
        """
        if n < 1:
            raise TaskGraphError("n must be >= 1")
        dag = TaskGraph()
        for i in range(n):
            for j in range(n):
                dag.add_type(f"l{i}_{j}", work)
        for i in range(n):
            for j in range(n):
                if i + 1 < n:
                    dag.add_file(f"l{i}_{j}", f"l{i + 1}_{j}", size)
                if j + 1 < n:
                    dag.add_file(f"l{i}_{j}", f"l{i}_{j + 1}", size)
        dag.anchor_at_master(input_size)
        return dag

    def count_simple_paths(self, src: str, dst: str) -> int:
        """Number of simple src→dst paths (DAG: dynamic programming)."""
        if src not in self.types or dst not in self.types:
            raise TaskGraphError("unknown types")
        memo: Dict[str, int] = {}

        def count(t: str) -> int:
            if t == dst:
                return 1
            if t in memo:
                return memo[t]
            memo[t] = sum(count(s) for s in self.successors(t))
            return memo[t]

        return count(src)

    @staticmethod
    def fork_join(
        n_branches: int,
        branch_work: RationalLike = 1,
        fork_work: RationalLike = 1,
        join_work: RationalLike = 1,
        size: RationalLike = 1,
        input_size: RationalLike = 1,
    ) -> "TaskGraph":
        """fork -> n parallel branches -> join."""
        dag = TaskGraph()
        dag.add_type("fork", fork_work)
        dag.add_type("join", join_work)
        for b in range(n_branches):
            dag.add_type(f"branch{b}", branch_work)
            dag.add_file("fork", f"branch{b}", size)
            dag.add_file(f"branch{b}", "join", size)
        dag.anchor_at_master(input_size)
        return dag

    def anchor_at_master(self, input_size: RationalLike = 1) -> None:
        """Add the virtual ``__begin__`` type feeding every root."""
        if BEGIN in self.types:
            raise TaskGraphError("already anchored")
        roots = self.roots()
        self.add_type(BEGIN, 0)
        for r in roots:
            self.add_file(BEGIN, r, input_size)

    def real_types(self) -> List[str]:
        return [t for t in self.types if t not in (BEGIN, END)]


@dataclass
class DagSolution:
    """Steady-state rates for a DAG collection."""

    platform: Platform
    dag: TaskGraph
    master: NodeId
    throughput: Fraction
    #: cons[(node, type)] = executions per time-unit
    cons: Dict[Tuple[NodeId, str], Fraction]
    #: flow[(i, j, (k, l))] = file-transfer rate on edge i->j
    flow: Dict[Tuple[NodeId, NodeId, Tuple[str, str]], Fraction]
    #: optional per-(node, type) execution-time multipliers
    affinity: Optional[Mapping[Tuple[NodeId, str], object]] = None

    def _multiplier(self, node: NodeId, t: str) -> Fraction:
        from .._rational import is_infinite

        mult = self.affinity.get((node, t), 1) if self.affinity else 1
        if is_infinite(mult):
            raise TaskGraphError(f"{node} executes forbidden type {t}")
        return as_fraction(mult)

    def node_compute_fraction(self, node: NodeId) -> Fraction:
        spec = self.platform.node(node)
        if not spec.can_compute:
            return Fraction(0)
        total = Fraction(0)
        for (n, t), rate in self.cons.items():
            if n == node:
                total += rate * self.dag.types[t] * spec.w * self._multiplier(
                    node, t
                )
        return total

    def verify(self) -> None:
        """Re-check every LP constraint on the returned rates."""
        p, dag = self.platform, self.dag
        for node in p.nodes():
            frac = self.node_compute_fraction(node)
            if frac > 1:
                raise TaskGraphError(f"{node} computes {frac} > 1")
        # one-port + occupation
        for node in p.nodes():
            out = Fraction(0)
            for j in p.successors(node):
                busy = sum(
                    (self.flow.get((node, j, f), Fraction(0)) * dag.files[f]
                     for f in dag.files),
                    start=Fraction(0),
                ) * p.c(node, j)
                if busy > 1:
                    raise TaskGraphError(f"edge {node}->{j} busy {busy} > 1")
                out += busy
            if out > 1:
                raise TaskGraphError(f"{node} send port {out} > 1")
            inc = sum(
                (
                    sum(
                        (self.flow.get((j, node, f), Fraction(0)) * dag.files[f]
                         for f in dag.files),
                        start=Fraction(0),
                    ) * p.c(j, node)
                    for j in p.predecessors(node)
                ),
                start=Fraction(0),
            )
            if inc > 1:
                raise TaskGraphError(f"{node} recv port {inc} > 1")
        # file conservation
        for f in dag.files:
            k, l = f
            for node in p.nodes():
                produced = self.cons.get((node, k), Fraction(0))
                consumed = self.cons.get((node, l), Fraction(0))
                inflow = sum(
                    (self.flow.get((j, node, f), Fraction(0))
                     for j in p.predecessors(node)),
                    start=Fraction(0),
                )
                outflow = sum(
                    (self.flow.get((node, j, f), Fraction(0))
                     for j in p.successors(node)),
                    start=Fraction(0),
                )
                if produced + inflow != consumed + outflow:
                    raise TaskGraphError(
                        f"file {f} unbalanced at {node}: "
                        f"{produced}+{inflow} != {consumed}+{outflow}"
                    )
        # per-type totals
        for t in dag.real_types():
            total = sum(
                (self.cons.get((n, t), Fraction(0)) for n in p.nodes()),
                start=Fraction(0),
            )
            if total != self.throughput:
                raise TaskGraphError(
                    f"type {t} total rate {total} != throughput "
                    f"{self.throughput}"
                )


def solve_dag_collection(
    platform: Platform,
    dag: TaskGraph,
    master: NodeId,
    backend: str = "exact",
    affinity: Optional[Mapping[Tuple[NodeId, str], RationalLike]] = None,
) -> DagSolution:
    """Maximise the number of DAG instances completed per time-unit.

    ``affinity`` optionally specialises processors (the *unrelated*
    extension of [6]'s model): executing type ``t`` on node ``i`` takes
    ``w_i * work_t * affinity[(i, t)]`` time; an affinity of
    :data:`repro.INF` forbids the pairing.  Missing keys default to 1.
    Specialisation is what breaks the colocation argument and makes the
    section 6 open problem bite (see benchmark C13).
    """
    platform.node(master)
    if BEGIN not in dag.types:
        raise TaskGraphError(
            "anchor the DAG first (TaskGraph.anchor_at_master)"
        )

    from .._rational import is_infinite

    def type_cost(node: NodeId, t: str) -> Optional[Fraction]:
        """Execution time multiplier, or None when forbidden."""
        mult = affinity.get((node, t), 1) if affinity is not None else 1
        if is_infinite(mult):
            return None
        return as_fraction(mult)

    lp = LinearProgram(f"DAG({platform.name})")
    tp = lp.variable("TP", lo=0)

    cons_vars: Dict[Tuple[NodeId, str], object] = {}
    for node in platform.nodes():
        spec = platform.node(node)
        for t in dag.types:
            if t == BEGIN:
                hi = None if node == master else 0
            elif not spec.can_compute or type_cost(node, t) is None:
                hi = 0
            else:
                hi = None
            cons_vars[(node, t)] = lp.variable(f"cons[{node},{t}]", lo=0, hi=hi)

    flow_vars: Dict[Tuple[NodeId, NodeId, Tuple[str, str]], object] = {}
    for spec in platform.edges():
        for f in dag.files:
            flow_vars[(spec.src, spec.dst, f)] = lp.variable(
                f"f[{spec.src}->{spec.dst},{f[0]}->{f[1]}]", lo=0
            )

    # compute budget per node (with optional per-type specialisation)
    for node in platform.nodes():
        spec = platform.node(node)
        if not spec.can_compute:
            continue
        terms = []
        for t in dag.types:
            if dag.types[t] <= 0:
                continue
            mult = type_cost(node, t)
            if mult is None:
                continue  # forbidden pairing; variable already pinned to 0
            terms.append(cons_vars[(node, t)] * (dag.types[t] * spec.w * mult))
        if terms:
            lp.add_constraint(lp_sum(terms) <= 1, name=f"cpu[{node}]")

    # edge occupation and one-port
    edge_busy: Dict[Tuple[NodeId, NodeId], object] = {}
    for spec in platform.edges():
        i, j = spec.src, spec.dst
        busy = lp_sum(
            flow_vars[(i, j, f)] * (dag.files[f] * spec.c) for f in dag.files
        )
        edge_busy[(i, j)] = busy
        lp.add_constraint(busy <= 1, name=f"edge[{i}->{j}]")
    for node in platform.nodes():
        out = [edge_busy[(node, j)] for j in platform.successors(node)]
        if out:
            lp.add_constraint(lp_sum(out) <= 1, name=f"send-port[{node}]")
        inc = [edge_busy[(j, node)] for j in platform.predecessors(node)]
        if inc:
            lp.add_constraint(lp_sum(inc) <= 1, name=f"recv-port[{node}]")

    # file conservation at every node
    for f in dag.files:
        k, l = f
        for node in platform.nodes():
            produced = cons_vars[(node, k)]
            consumed = cons_vars[(node, l)]
            inflow = lp_sum(
                flow_vars[(j, node, f)] for j in platform.predecessors(node)
            )
            outflow = lp_sum(
                flow_vars[(node, j, f)] for j in platform.successors(node)
            )
            lp.add_constraint(
                produced + inflow == consumed + outflow,
                name=f"file[{k}->{l},{node}]",
            )

    # every type is executed at the common throughput
    for t in dag.types:
        total = lp_sum(cons_vars[(node, t)] for node in platform.nodes())
        lp.add_constraint(total == tp * 1, name=f"rate[{t}]")

    lp.maximize(tp)
    sol = lp.solve(backend=backend)

    out = DagSolution(
        platform=platform,
        dag=dag,
        master=master,
        throughput=sol.objective,
        cons={
            key: sol[var] for key, var in cons_vars.items() if sol[var] != 0
        },
        flow={
            key: sol[var] for key, var in flow_vars.items() if sol[var] != 0
        },
        affinity=dict(affinity) if affinity is not None else None,
    )
    if backend == "exact":
        out.verify()
    return out
