"""Steady-state activity variables and their invariants.

The output of each steady-state LP is a set of *activity variables*
(section 1 of the paper): for every node the fraction of each time-unit
spent computing (``alpha_i``), and for every edge the fraction of time
spent sending (``s_ij``), plus — for the collective problems — per-
commodity message rates ``send(i, j, k)``.

:class:`SteadyStateSolution` carries those values exactly (Fractions) and
implements:

* the paper's invariant checks (one-port sums, conservation laws),
* the period construction of section 4.1 (``T = lcm`` of denominators),
* the per-period integer message/task counts used by reconstruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .._rational import format_fraction, lcm_denominators
from ..platform.graph import Edge, NodeId, Platform


class SteadyStateError(ValueError):
    """An activity set violates the steady-state equations."""


@dataclass
class SteadyStateSolution:
    """Exact steady-state activities on a platform.

    Attributes
    ----------
    platform:
        The platform the LP was solved on.
    problem:
        Label such as ``"master-slave"`` or ``"scatter"``.
    throughput:
        Objective value: tasks per time-unit (master-slave) or collective
        operations per time-unit (scatter/broadcast/multicast).
    alpha:
        ``alpha[i]`` = fraction of time node ``i`` computes (may be empty
        for pure communication problems).
    s:
        ``s[(i, j)]`` = fraction of time edge ``i -> j`` is busy sending.
    send:
        ``send[(i, j, k)]`` = messages of commodity ``k`` crossing edge
        ``i -> j`` per time-unit (empty for master-slave, where the single
        commodity rate is ``s_ij / c_ij``).
    source:
        The master / source node, when the problem has one.
    targets:
        Target set for scatter/multicast problems.
    edge_occupation_mode:
        ``"sum"`` when distinct commodities on one edge pay separately
        (master-slave, scatter), ``"max"`` when identical payloads share a
        transfer (broadcast, optimistic multicast bound) — section 3.3.
    """

    platform: Platform
    problem: str
    throughput: Fraction
    alpha: Dict[NodeId, Fraction] = field(default_factory=dict)
    s: Dict[Edge, Fraction] = field(default_factory=dict)
    send: Dict[Tuple[NodeId, NodeId, str], Fraction] = field(default_factory=dict)
    source: Optional[NodeId] = None
    targets: Tuple[NodeId, ...] = ()
    edge_occupation_mode: str = "sum"

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def compute_rate(self, node: NodeId) -> Fraction:
        """Tasks processed by ``node`` per time-unit (``alpha_i / w_i``)."""
        a = self.alpha.get(node, Fraction(0))
        if a == 0:
            return Fraction(0)
        spec = self.platform.node(node)
        if not spec.can_compute:
            raise SteadyStateError(f"forwarder {node} has alpha = {a} != 0")
        return a / spec.w

    def edge_rate(self, src: NodeId, dst: NodeId) -> Fraction:
        """Messages/tasks crossing ``src -> dst`` per time-unit."""
        occupancy = self.s.get((src, dst), Fraction(0))
        if occupancy == 0:
            return Fraction(0)
        return occupancy / self.platform.c(src, dst)

    def total_compute_rate(self) -> Fraction:
        return sum(
            (self.compute_rate(n) for n in self.alpha), start=Fraction(0)
        )

    # ------------------------------------------------------------------
    # invariants (the steady-state equations of section 3)
    # ------------------------------------------------------------------
    def check_bounds(self) -> None:
        for node, a in self.alpha.items():
            if not (0 <= a <= 1):
                raise SteadyStateError(f"alpha[{node}] = {a} outside [0, 1]")
        for (i, j), v in self.s.items():
            if not (0 <= v <= 1):
                raise SteadyStateError(f"s[{i}->{j}] = {v} outside [0, 1]")
            if not self.platform.has_edge(i, j):
                raise SteadyStateError(f"activity on missing edge {i}->{j}")

    def check_one_port(self) -> None:
        """Sum of send (resp. receive) fractions per node must be <= 1."""
        for node in self.platform.nodes():
            out = sum(
                (self.s.get((node, j), Fraction(0))
                 for j in self.platform.successors(node)),
                start=Fraction(0),
            )
            if out > 1:
                raise SteadyStateError(
                    f"one-port (send) violated at {node}: {out} > 1"
                )
            inc = sum(
                (self.s.get((j, node), Fraction(0))
                 for j in self.platform.predecessors(node)),
                start=Fraction(0),
            )
            if inc > 1:
                raise SteadyStateError(
                    f"one-port (recv) violated at {node}: {inc} > 1"
                )

    def check_master_slave_conservation(self) -> None:
        """Tasks in = tasks computed + tasks out, for every non-master node."""
        if self.source is None:
            raise SteadyStateError("master-slave solution lacks a source")
        for node in self.platform.nodes():
            if node == self.source:
                continue
            inflow = sum(
                (self.edge_rate(j, node)
                 for j in self.platform.predecessors(node)),
                start=Fraction(0),
            )
            outflow = sum(
                (self.edge_rate(node, j)
                 for j in self.platform.successors(node)),
                start=Fraction(0),
            )
            computed = (
                self.compute_rate(node)
                if self.platform.node(node).can_compute
                else Fraction(0)
            )
            if inflow != computed + outflow:
                raise SteadyStateError(
                    f"conservation violated at {node}: in {inflow} != "
                    f"compute {computed} + out {outflow}"
                )
        # the master receives nothing
        for j in self.platform.predecessors(self.source):
            if self.s.get((j, self.source), Fraction(0)) != 0:
                raise SteadyStateError(
                    f"master {self.source} receives from {j}"
                )

    def check_commodity_conservation(self) -> None:
        """Per-commodity flow conservation for scatter/multicast solutions.

        All-to-all commodities are named ``"a->b"``; their excluded
        endpoints are parsed from the name instead of using ``source``.
        """
        if not self.send:
            return
        commodities = sorted({k for (_, _, k) in self.send})
        for k in commodities:
            if self.problem == "all-to-all" and "->" in k:
                excluded = set(k.split("->"))
            else:
                excluded = {self.source, k}
            for node in self.platform.nodes():
                if node in excluded:
                    continue
                inflow = sum(
                    (self.send.get((j, node, k), Fraction(0))
                     for j in self.platform.predecessors(node)),
                    start=Fraction(0),
                )
                outflow = sum(
                    (self.send.get((node, j, k), Fraction(0))
                     for j in self.platform.successors(node)),
                    start=Fraction(0),
                )
                if inflow != outflow:
                    raise SteadyStateError(
                        f"commodity {k} not conserved at {node}: "
                        f"{inflow} != {outflow}"
                    )

    def check_edge_occupation(self) -> None:
        """``s_ij`` must match the commodity rates under the declared mode."""
        if not self.send:
            return
        per_edge: Dict[Edge, List[Fraction]] = {}
        for (i, j, _k), rate in self.send.items():
            per_edge.setdefault((i, j), []).append(rate)
        for (i, j), rates in per_edge.items():
            c = self.platform.c(i, j)
            if self.edge_occupation_mode == "sum":
                expected = sum(rates, start=Fraction(0)) * c
            else:
                expected = max(rates) * c
            got = self.s.get((i, j), Fraction(0))
            if got != expected:
                raise SteadyStateError(
                    f"s[{i}->{j}] = {got} but {self.edge_occupation_mode} "
                    f"of commodity rates gives {expected}"
                )

    def verify(self) -> None:
        """Run every applicable invariant check; raise on the first failure."""
        self.check_bounds()
        self.check_one_port()
        if self.problem == "master-slave":
            self.check_master_slave_conservation()
        if self.send:
            self.check_commodity_conservation()
            self.check_edge_occupation()

    # ------------------------------------------------------------------
    # flow simplification
    # ------------------------------------------------------------------
    def simplify(self) -> "SteadyStateSolution":
        """Cancel circulations in the task flow (master-slave only).

        Degenerate LP optima may route tasks around directed cycles; the
        circulation contributes nothing to throughput but inflates link
        occupation and — worse — breaks the depth-bounded initialisation
        argument of section 4.2 (a cycle's nodes wait on each other, so
        buffers only converge geometrically).  Cancelling cycles preserves
        conservation and the objective while never increasing any ``s_ij``,
        so the simplified solution is feasible and has the same throughput.
        Returns ``self`` (modified in place) for chaining.
        """
        if self.problem != "master-slave":
            return self
        from ..schedule.flows import cancel_cycles

        rates = {
            (i, j): self.edge_rate(i, j) for (i, j) in self.s
            if self.s[(i, j)] > 0
        }
        clean = cancel_cycles(rates)
        new_s: Dict[Edge, Fraction] = {}
        for (i, j) in self.s:
            rate = clean.get((i, j), Fraction(0))
            new_s[(i, j)] = rate * self.platform.c(i, j)
        self.s = new_s
        return self

    # ------------------------------------------------------------------
    # the period construction of section 4.1
    # ------------------------------------------------------------------
    def period(self) -> int:
        """Integer period ``T``: lcm of the denominators of all rates.

        During one period every count below is a non-negative integer:
        tasks computed per node (``alpha_i T / w_i``), messages per edge
        (``s_ij T / c_ij`` or ``send(i,j,k) T``).
        """
        rates: List[Fraction] = [self.throughput]
        for node in self.alpha:
            rates.append(self.compute_rate(node))
        if self.send:
            rates.extend(self.send.values())
            # edge busy-time per period must also be rational-aligned
            rates.extend(self.s.values())
        else:
            for (i, j) in self.s:
                rates.append(self.edge_rate(i, j))
        return lcm_denominators(r for r in rates if r != 0)

    def tasks_per_period(self, period: Optional[int] = None) -> Dict[NodeId, int]:
        """Integer number of tasks each node computes during one period."""
        T = self.period() if period is None else period
        out: Dict[NodeId, int] = {}
        for node in self.alpha:
            cnt = self.compute_rate(node) * T
            if cnt.denominator != 1:
                raise SteadyStateError(
                    f"period {T} does not make compute count of {node} integral"
                )
            out[node] = int(cnt)
        return out

    def messages_per_period(
        self, period: Optional[int] = None
    ) -> Dict[Edge, int]:
        """Integer number of messages on each edge during one period."""
        T = self.period() if period is None else period
        out: Dict[Edge, int] = {}
        for (i, j) in self.s:
            cnt = self.edge_rate(i, j) * T
            if cnt.denominator != 1:
                raise SteadyStateError(
                    f"period {T} does not make message count on {i}->{j} integral"
                )
            if cnt:
                out[(i, j)] = int(cnt)
        return out

    def edge_busy_time(self, period: Optional[int] = None) -> Dict[Edge, Fraction]:
        """Total communication time per edge during one period (``s_ij T``)."""
        T = self.period() if period is None else period
        return {e: v * T for e, v in self.s.items() if v != 0}

    # ------------------------------------------------------------------
    def summary(self) -> str:
        lines = [
            f"steady-state {self.problem} on {self.platform.name!r}: "
            f"throughput = {format_fraction(self.throughput)} per time-unit"
        ]
        for node in self.platform.nodes():
            a = self.alpha.get(node)
            if a:
                lines.append(
                    f"  {node}: alpha = {format_fraction(a)} "
                    f"({format_fraction(self.compute_rate(node))} tasks/unit)"
                )
        for (i, j), v in sorted(self.s.items()):
            if v:
                lines.append(f"  {i} -> {j}: busy {format_fraction(v)}")
        return "\n".join(lines)
