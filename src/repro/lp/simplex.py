"""Exact simplex over rational numbers, with basis-reusing warm re-solves.

Why from scratch: the steady-state methodology needs the *rational* optimal
basic solution (section 4.1 derives the period ``T`` as the lcm of the
denominators of the activity variables), and no rational LP solver is
available offline.

Two engines share one standard-form front end and one decode path:

* ``"revised"`` (the default) — a **sparse revised simplex**: the basis is
  held as a Markowitz-ordered sparse LU (:mod:`repro.lp.factor`) with
  product-form eta updates per pivot.  Each iteration prices reduced
  costs through one BTRAN and updates the basis through one FTRAN plus
  one appended eta vector — O(nnz) work where the dense tableau paid
  O(m·n) Fraction operations — with periodic refactorisation when the
  eta file grows past its length or fill thresholds.  A warm restart is
  **one sparse LU of the retained basis** against the patched
  coefficients, not a Gauss-Jordan sweep.
* ``"tableau"`` — the original dense tableau, kept behind this flag as
  the differential-testing baseline.  Both engines follow the same
  pivot rules (Dantzig entering with a Bland anti-cycling degradation,
  identical ratio-test tie-breaks), so a *cold* solve produces the
  identical pivot sequence — and therefore the identical optimal
  vertex — on both engines; warm repairs may walk different (equally
  optimal) paths but always land on the same exact objective.

The solve is split into three phases behind :class:`SimplexInstance`:

1. **assemble** — the caller builds (or patches) a
   :class:`~repro.lp.model.LinearProgram`;
2. **standard form** — :func:`_build_standard_form` lowers it to
   ``min c·u, A u = b, u >= 0`` plus the column-decoding recipe;
3. **pivot** — a cold solve runs the two-phase primal simplex, while a
   *warm* solve restarts from the basis retained by the previous solve
   of the same instance: the basis is re-factorised against the patched
   coefficients, primal/dual feasibility is repaired as needed (phase 1
   is skipped entirely when the old basis is still primal feasible),
   and any structural surprise falls back to the cold two-phase solve.
   Either way the result is the exact rational optimum.

``solve_exact`` remains the stateless entry point (one cold solve);
:mod:`repro.service.incremental` holds a :class:`SimplexInstance` per hot
model so weight-only re-solves reuse both the assembled LP *and* the
optimal basis.

Standard-form conversion
------------------------
* ``x`` with lower bound ``lo``: substitute ``x = lo + u`` (``u >= 0``);
  an upper bound adds the row ``u <= hi - lo``.
* ``x`` with only an upper bound: substitute ``x = hi - u``.
* free ``x``: substitute ``x = u - v``.
* ``<=`` rows get a slack, ``>=`` rows a surplus; rows are sign-normalised
  so the rhs is non-negative; artificial variables complete the phase-1
  basis where no slack is usable.
"""

from __future__ import annotations

import time
from fractions import Fraction
from typing import Any, Dict, List, Optional, Tuple

from .factor import BasisFactor, SparseLU
from .model import (
    InfeasibleError,
    LinearProgram,
    LPError,
    LPSolution,
    UnboundedError,
    Variable,
)

ZERO = Fraction(0)
ONE = Fraction(1)

#: default pivot safety cap — far above anything the platform-sized LPs
#: need, low enough that a degenerate spin fails in seconds, not hours
DEFAULT_MAX_PIVOTS = 200_000

#: the engine :class:`SimplexInstance` uses when none is requested —
#: the sparse revised simplex; ``"tableau"`` keeps the dense baseline
#: available for differential tests
DEFAULT_ENGINE = "revised"

#: consecutive degenerate (no-progress) pivots tolerated under the
#: Dantzig rule before switching to Bland's rule for good — the standard
#: cycling safeguard (Bland guarantees termination from any basis;
#: Dantzig is simply much faster when progress is being made).  Shared
#: by both engines so their pivot sequences stay comparable.
STALL_LIMIT = 32

#: the factorisation telemetry keys a solve reports (see
#: :attr:`SimplexInstance.last_factor_stats`)
FACTOR_STAT_KEYS = (
    "refactorisations",
    "eta_len_max",
    "ftran_ops",
    "btran_ops",
    "lu_nnz",
    "lu_basis_nnz",
)


class _StandardForm:
    """min c·u  s.t.  A u = b (b >= 0), u >= 0, plus the decoding recipe."""

    def __init__(self) -> None:
        self.rows: List[Dict[int, Fraction]] = []  # sparse rows
        self.rhs: List[Fraction] = []
        self.cost: Dict[int, Fraction] = {}
        self.cost_offset: Fraction = ZERO
        self.num_cols = 0
        # var -> list of (col, sign); plus constant offset per var
        self.decode: Dict[Variable, Tuple[List[Tuple[int, Fraction]], Fraction]] = {}
        self._key: Optional[Tuple] = None

    def new_col(self) -> int:
        col = self.num_cols
        self.num_cols += 1
        return col

    def structure_key(self) -> Tuple:
        """Hashable *shape* of the standard form: column count, per-row
        column support and objective support — everything a retained basis
        depends on, none of the coefficient values.  Two standard forms
        with equal keys differ only in coefficients, which is exactly the
        situation a warm basis restart can handle.

        Computed once and cached: the tuple-of-tuples row-support walk is
        O(nnz) and the key is asked for on every warm solve of the same
        instance.
        """
        if self._key is None:
            self._key = (
                self.num_cols,
                tuple(tuple(sorted(row)) for row in self.rows),
                tuple(sorted(self.cost)),
            )
        return self._key


def _build_standard_form(lp: LinearProgram) -> _StandardForm:
    sf = _StandardForm()
    # 1. substitute variables.
    subs: Dict[Variable, Tuple[List[Tuple[int, Fraction]], Fraction]] = {}
    extra_rows: List[Tuple[Dict[int, Fraction], str, Fraction]] = []
    for var in lp.variables:
        if var.lo is not None:
            u = sf.new_col()
            subs[var] = ([(u, ONE)], var.lo)
            if var.hi is not None:
                extra_rows.append(({u: ONE}, "<=", var.hi - var.lo))
        elif var.hi is not None:
            u = sf.new_col()
            subs[var] = ([(u, Fraction(-1))], var.hi)
        else:
            u = sf.new_col()
            v = sf.new_col()
            subs[var] = ([(u, ONE), (v, Fraction(-1))], ZERO)
    sf.decode = subs

    # 2. objective (always minimise internally).
    assert lp.objective is not None
    sign = Fraction(-1) if lp.sense == "max" else ONE
    sf.cost_offset = sign * lp.objective.constant
    for var, coef in lp.objective.terms.items():
        cols, offset = subs[var]
        sf.cost_offset += sign * coef * offset
        for col, s in cols:
            sf.cost[col] = sf.cost.get(col, ZERO) + sign * coef * s

    # 3. constraint rows.
    all_rows: List[Tuple[Dict[int, Fraction], str, Fraction]] = []
    for cons in lp.constraints:
        terms, sense, rhs = cons.normalized()
        row: Dict[int, Fraction] = {}
        shift = ZERO
        for var, coef in terms.items():
            cols, offset = subs[var]
            shift += coef * offset
            for col, s in cols:
                row[col] = row.get(col, ZERO) + coef * s
        row = {c: v for c, v in row.items() if v != 0}
        all_rows.append((row, sense, rhs - shift))
    all_rows.extend(extra_rows)

    for row, sense, rhs in all_rows:
        if not row:
            # constant constraint: check satisfiability directly.
            ok = (
                (sense == "<=" and ZERO <= rhs)
                or (sense == ">=" and ZERO >= rhs)
                or (sense == "==" and rhs == 0)
            )
            if not ok:
                raise InfeasibleError(
                    f"constant constraint 0 {sense} {rhs} is unsatisfiable"
                )
            continue
        r = dict(row)
        if sense == "<=":
            slack = sf.new_col()
            r[slack] = ONE
        elif sense == ">=":
            slack = sf.new_col()
            r[slack] = Fraction(-1)
        if rhs < 0:
            r = {c: -v for c, v in r.items()}
            rhs = -rhs
        sf.rows.append(r)
        sf.rhs.append(rhs)
    return sf


class _AbandonWarm(Exception):
    """Internal: a warm attempt blew its pivot budget; fall back to cold."""


class _Outcome:
    """What either engine hands back: the standard-form solution vector,
    the canonical basis to retain for the next warm restart, and the
    pivot bookkeeping."""

    __slots__ = ("u", "retained", "pivots", "iterations")

    def __init__(self, u: List[Fraction], retained: List[int],
                 pivots: int, iterations: int) -> None:
        self.u = u
        self.retained = retained
        self.pivots = pivots
        self.iterations = iterations


class _Tableau:
    """Dense simplex working state: ``m`` rows x (``n`` + m artificials + 1
    rhs), a basis assignment per row, and the pivot bookkeeping.

    Kept as the ``engine="tableau"`` baseline for differential tests —
    the revised engine replays the same pivot rules through the sparse
    factorisation instead of whole-tableau elimination.

    Column ``n + i`` is reserved as the artificial of row ``i`` (cold
    phase 1 and the warm restricted phase-1 repair both use it); the rhs
    lives in the last cell of each row.  ``pivots`` counts genuine simplex
    pivots against the safety cap; basis re-factorisation row operations
    are the same O(m·width) work but bounded by ``m``, so they are counted
    separately (``refactor_ops``) and never trip the cap.
    """

    STALL_LIMIT = STALL_LIMIT

    def __init__(self, sf: _StandardForm, lp: LinearProgram,
                 max_pivots: int, extra_artificials: bool = False) -> None:
        self.sf = sf
        self.lp = lp
        self.m = len(sf.rows)
        self.n = sf.num_cols
        # A warm restart reserves a SECOND artificial region
        # [n + m, n + 2m): the first region's columns may be left dirty by
        # driving a retained artificial out of the basis, so the
        # feasibility repair mints its fresh artificials from untouched
        # columns instead.
        self.width = self.n + (2 if extra_artificials else 1) * self.m + 1
        self.max_pivots = max_pivots
        #: soft budget for warm attempts: when set, exceeding it raises
        #: :class:`_AbandonWarm` (caught by the warm solver, which falls
        #: back to cold) instead of the hard :class:`LPError` of the
        #: safety cap — a restart that pivots more than the cold solve it
        #: is meant to undercut has already lost
        self.abandon_after: Optional[int] = None
        self.pivots = 0
        self.refactor_ops = 0
        self.iterations = 0
        self.rows: List[List[Fraction]] = []
        for i, row in enumerate(sf.rows):
            dense = [ZERO] * self.width
            for col, val in row.items():
                dense[col] = val
            dense[-1] = sf.rhs[i]
            self.rows.append(dense)
        self.basis: List[int] = []

    # ------------------------------------------------------------------
    def _apply_pivot(self, row_i: int, col_j: int) -> None:
        piv_row = self.rows[row_i]
        piv = piv_row[col_j]
        inv = ONE / piv
        # one O(width) scan for the pivot row's support, then every row
        # update touches only those columns — the steady-state LPs are
        # sparse, so this is the difference between O(m·width) and
        # O(m·nnz) Fraction work per pivot
        nonzero = [j for j in range(self.width) if piv_row[j] != 0]
        if piv != 1:
            for j in nonzero:
                piv_row[j] *= inv
        for r in range(self.m):
            if r == row_i:
                continue
            factor = self.rows[r][col_j]
            if factor == 0:
                continue
            target = self.rows[r]
            for j in nonzero:
                target[j] -= factor * piv_row[j]
        self.basis[row_i] = col_j

    def pivot(self, row_i: int, col_j: int) -> None:
        self.pivots += 1
        if self.abandon_after is not None and self.pivots > self.abandon_after:
            raise _AbandonWarm()
        if self.pivots > self.max_pivots:
            raise LPError(
                f"simplex exceeded the {self.max_pivots}-pivot safety cap "
                f"on {self.lp.name!r} (m={self.m} rows, n={self.n} columns, "
                f"{len(self.lp.variables)} model variables) — degenerate "
                f"cycling, or raise max_pivots for an LP this size"
            )
        self._apply_pivot(row_i, col_j)

    # ------------------------------------------------------------------
    def install_basis(self, basis_cols: List[int]) -> bool:
        """Re-factorise: pivot each retained basis column back into the
        basis by Gauss-Jordan elimination against the *patched*
        coefficients.  Returns False when the columns have gone singular
        (the caller falls back to a cold solve).

        Artificial columns (``col >= n``, retained when the previous solve
        ended with a redundant row's artificial still basic) are pinned
        first: the artificial of row ``i`` is the unit column ``e_i``, so
        assigning it to its own row is free and keeps every *other*
        artificial column untouched — which the warm repair relies on when
        it mints fresh artificials for rows the old basis leaves
        infeasible."""
        self.basis = [-1] * self.m
        assigned = [False] * self.m
        for col in basis_cols:
            if col >= self.n:
                i = col - self.n
                if assigned[i]:
                    return False
                self.rows[i][col] = ONE
                self.basis[i] = col
                assigned[i] = True
        # Markowitz-flavoured ordering: eliminate the sparsest columns
        # first (slacks and bound rows are near-unit and pivot for free),
        # so the fill-in of the dense conservation block lands late and
        # stays small — this is what keeps a re-factorisation cheaper
        # than the pivot sequence it replaces.
        col_nnz: Dict[int, int] = {}
        for row in self.sf.rows:
            for col in row:
                col_nnz[col] = col_nnz.get(col, 0) + 1
        structural = sorted(
            (col for col in basis_cols if col < self.n),
            key=lambda col: col_nnz.get(col, 0),
        )
        for col in structural:
            chosen = -1
            for r in range(self.m):
                if not assigned[r] and self.rows[r][col] != 0:
                    chosen = r
                    break
            if chosen < 0:
                return False
            self.refactor_ops += 1
            self._apply_pivot(chosen, col)
            assigned[chosen] = True
        return True

    def price_out(self, cost: List[Fraction]) -> List[Fraction]:
        """The reduced-cost row of ``cost`` under the current basis
        (length ``width``; the rhs cell holds minus the objective)."""
        z = [ZERO] * self.width
        for j, c in enumerate(cost):
            z[j] = c
        for i in range(self.m):
            cb = cost[self.basis[i]] if self.basis[i] < len(cost) else ZERO
            if cb == 0:
                continue
            row = self.rows[i]
            for j in range(self.width):
                v = row[j]
                if v != 0:
                    z[j] -= cb * v
        return z

    def _sweep_z(self, z: List[Fraction], piv_row_i: int, enter: int) -> None:
        factor = z[enter]
        if factor == 0:
            return
        piv_row = self.rows[piv_row_i]
        for j in range(self.width):
            v = piv_row[j]
            if v != 0:
                z[j] -= factor * v

    def run_primal(self, cost: List[Fraction], allowed_cols: int,
                   z: Optional[List[Fraction]] = None) -> List[Fraction]:
        """Pivot to optimality from the current basis; returns the final
        reduced-cost row.  Entering column by Dantzig's rule (most
        negative reduced cost), degrading permanently to Bland's rule
        after :data:`STALL_LIMIT` consecutive degenerate pivots so
        termination stays guaranteed.  ``z`` may carry a reduced-cost
        row the caller already maintains for ``cost`` (the dual repair
        does), saving the O(m·width) re-pricing pass."""
        if z is None:
            z = self.price_out(cost)
        bland = False
        stall = 0
        while True:
            self.iterations += 1
            enter = -1
            if bland:
                # Bland: smallest-index column with negative reduced cost
                for j in range(allowed_cols):
                    if z[j] < 0:
                        enter = j
                        break
            else:
                most: Optional[Fraction] = None
                for j in range(allowed_cols):
                    v = z[j]
                    if v < 0 and (most is None or v < most):
                        most = v
                        enter = j
            if enter < 0:
                return z
            # ratio test; tie-break on smallest basis column index.
            leave = -1
            best: Optional[Fraction] = None
            for i in range(self.m):
                a = self.rows[i][enter]
                if a > 0:
                    ratio = self.rows[i][-1] / a
                    if best is None or ratio < best or (
                        ratio == best and self.basis[i] < self.basis[leave]
                    ):
                        best = ratio
                        leave = i
            if leave < 0:
                raise UnboundedError(
                    f"objective of {self.lp.name!r} is unbounded "
                    f"(column {enter} has no positive entries)"
                )
            self.pivot(leave, enter)
            self._sweep_z(z, leave, enter)
            if not bland:
                if best == 0:  # degenerate: the objective did not move
                    stall += 1
                    if stall >= self.STALL_LIMIT:
                        bland = True
                else:
                    stall = 0

    def run_dual(self, z: List[Fraction], limit: int) -> bool:
        """Dual-simplex pivots toward primal feasibility.

        Requires ``z`` dual feasible (no negative reduced cost among the
        structural columns); maintains that invariant.  Returns True once
        every rhs is non-negative, False to request a fallback (step
        budget exhausted, or a fully non-negative pivot row — the dual
        ray case, which the cold two-phase solve diagnoses properly).
        """
        steps = 0
        while True:
            # leaving row: most negative rhs (the textbook dual rule —
            # converges far faster than Bland order; the step budget, not
            # an anti-cycling rule, bounds the loop)
            leave = -1
            worst: Optional[Fraction] = None
            for i in range(self.m):
                rhs = self.rows[i][-1]
                if rhs < 0 and (worst is None or rhs < worst):
                    worst = rhs
                    leave = i
            if leave < 0:
                return True
            if steps >= limit:
                return False
            row = self.rows[leave]
            enter = -1
            best: Optional[Fraction] = None
            for j in range(self.n):
                a = row[j]
                if a < 0:
                    ratio = z[j] / -a
                    if best is None or ratio < best:
                        best = ratio
                        enter = j
            if enter < 0:
                return False
            self.pivot(leave, enter)
            self._sweep_z(z, leave, enter)
            steps += 1

    def drive_out_artificials(self) -> None:
        """Pivot zero-valued basic artificials onto structural columns
        where possible; a row that stays artificial is redundant and the
        artificial sits harmlessly at 0 (it can never re-enter: phase 2
        restricts entering columns to the structural ones)."""
        for i in range(self.m):
            if self.basis[i] >= self.n:
                row = self.rows[i]
                for j in range(self.n):
                    if row[j] != 0:
                        self.refactor_ops += 1
                        self._apply_pivot(i, j)
                        break


class _RevisedCore:
    """Revised-simplex working state: basis column list, sparse LU +
    eta-file factorisation, and the current basic solution.

    The basis matrix is never formed densely: :class:`BasisFactor`
    answers FTRAN/BTRAN, each pivot appends one eta vector, and the LU
    is rebuilt (``maybe_refactor``) only when the eta file passes its
    length or fill thresholds.  Pricing walks the column-major standard
    form (O(nnz) per iteration); the ratio test walks the FTRAN'd
    direction.

    Column-id convention: ``j < n`` structural, ``n <= j < n + m`` the
    artificial ``e_{j-n}``, ``j >= n + m`` an auxiliary column minted by
    the warm restricted phase 1 (the negated column it replaced — see
    :meth:`make_aux`).  ``pivots`` counts genuine simplex pivots against
    the safety cap; basis exchanges performed while installing or
    repairing a basis (artificial drive-outs, aux minting) are
    ``refactor_ops`` and never trip the cap.
    """

    STALL_LIMIT = STALL_LIMIT

    def __init__(self, sf: _StandardForm, lp: LinearProgram,
                 max_pivots: int, eta_limit: Optional[int] = None) -> None:
        self.sf = sf
        self.lp = lp
        self.m = len(sf.rows)
        self.n = sf.num_cols
        cols: List[List[Tuple[int, Fraction]]] = [[] for _ in range(self.n)]
        for i, row in enumerate(sf.rows):
            for j, v in row.items():
                cols[j].append((i, v))
        self.cols = cols
        self.rhs: List[Fraction] = list(sf.rhs)
        self.max_pivots = max_pivots
        self.abandon_after: Optional[int] = None
        #: refactorise once the eta file reaches this many etas (the
        #: fill trigger in :meth:`_maybe_refactor` can fire earlier)
        self.eta_limit = eta_limit if eta_limit is not None \
            else max(16, self.m // 2)
        self.basis: List[int] = []
        self._basic: set = set()
        self.x: List[Fraction] = []
        self.factor: Optional[BasisFactor] = None
        #: columns minted by this core: cold-phase-1 artificials, or the
        #: warm repair's auxiliaries (ids >= n + m, vectors in aux_cols)
        self.minted: List[int] = []
        self.aux_cols: Dict[int, List[Tuple[int, Fraction]]] = {}
        self.pivots = 0
        self.iterations = 0
        self.refactor_ops = 0
        # factorisation telemetry (absorbed into
        # SimplexInstance.last_factor_stats)
        self.refactorisations = 0
        self.eta_len_max = 0
        self.ftran_ops = 0
        self.btran_ops = 0
        self.lu_nnz = 0
        self.lu_basis_nnz = 0

    # ------------------------------------------------------------------
    # columns and factorisation
    # ------------------------------------------------------------------
    def column(self, col: int) -> List[Tuple[int, Fraction]]:
        """The sparse standard-form column for any column id."""
        if col < self.n:
            return self.cols[col]
        if col < self.n + self.m:
            return [(col - self.n, ONE)]
        return self.aux_cols[col]

    def _refactor(self) -> bool:
        """Fresh sparse LU of the current basis; False when singular."""
        lu = SparseLU.factor(self.m, [dict(self.column(c))
                                      for c in self.basis])
        if lu is None:
            return False
        self._roll_factor_counters()
        self.factor = BasisFactor(lu)
        self.refactorisations += 1
        self.lu_nnz += lu.nnz
        self.lu_basis_nnz += lu.basis_nnz
        return True

    def _roll_factor_counters(self) -> None:
        if self.factor is not None:
            self.ftran_ops += self.factor.ftran_ops
            self.btran_ops += self.factor.btran_ops

    def _maybe_refactor(self) -> None:
        """The periodic-refactorisation policy: rebuild the LU when the
        eta file is long, or when its accumulated fill outweighs the
        factorisation it patches (applying every eta on every solve has
        become more expensive than one fresh elimination)."""
        f = self.factor
        assert f is not None
        if (f.eta_len >= self.eta_limit
                or f.eta_nnz > 2 * (f.lu.nnz + self.m) + 64):
            if not self._refactor():
                raise LPError(
                    f"internal: refactorisation of a pivoted basis of "
                    f"{self.lp.name!r} went singular"
                )

    def ftran(self, dense: List[Fraction]) -> List[Fraction]:
        assert self.factor is not None
        return self.factor.ftran(dense)

    def btran(self, dense: List[Fraction]) -> List[Fraction]:
        assert self.factor is not None
        return self.factor.btran(dense)

    def ftran_column(self, col: int) -> List[Fraction]:
        """FTRAN of a standard-form column: the update direction
        ``B^{-1} a_col``."""
        dense = [ZERO] * self.m
        for i, v in self.column(col):
            dense[i] = v
        return self.ftran(dense)

    def btran_unit(self, slot: int) -> List[Fraction]:
        """BTRAN of ``e_slot``: row ``slot`` of ``B^{-1}``."""
        dense = [ZERO] * self.m
        dense[slot] = ONE
        return self.btran(dense)

    # ------------------------------------------------------------------
    # basis installation
    # ------------------------------------------------------------------
    def install_cold(self) -> None:
        """Choose the textbook initial basis (reusing a slack column —
        +1 coefficient, sole entry in its column, not in the objective —
        where possible, else the row's artificial) and factor it."""
        col_rows: Dict[int, List[int]] = {}
        for i, row in enumerate(self.sf.rows):
            for col in row:
                col_rows.setdefault(col, []).append(i)
        for i, row in enumerate(self.sf.rows):
            chosen = -1
            for col, val in row.items():
                if val == 1 and len(col_rows[col]) == 1 \
                        and col not in self.sf.cost:
                    chosen = col
                    break
            if chosen < 0:
                chosen = self.n + i
                self.minted.append(chosen)
            self.basis.append(chosen)
        self._basic = set(self.basis)
        if not self._refactor():
            raise LPError(
                f"internal: the initial unit basis of {self.lp.name!r} "
                f"failed to factor"
            )
        self.x = self.ftran(self.rhs)

    def install_warm(self, basis_cols: List[int]) -> bool:
        """One sparse LU of a retained basis against the (patched)
        current coefficients — the whole point of the revised warm
        restart.  False when the columns have gone singular (the caller
        falls back to a cold solve)."""
        self.basis = list(basis_cols)
        self._basic = set(self.basis)
        if len(self._basic) != len(self.basis):
            return False
        if not self._refactor():
            return False
        self.x = self.ftran(self.rhs)
        return True

    # ------------------------------------------------------------------
    # pivoting
    # ------------------------------------------------------------------
    def _count_pivot(self) -> None:
        self.pivots += 1
        if self.abandon_after is not None and self.pivots > self.abandon_after:
            raise _AbandonWarm()
        if self.pivots > self.max_pivots:
            raise LPError(
                f"simplex exceeded the {self.max_pivots}-pivot safety cap "
                f"on {self.lp.name!r} (m={self.m} rows, n={self.n} columns, "
                f"{len(self.lp.variables)} model variables) — degenerate "
                f"cycling, or raise max_pivots for an LP this size"
            )

    def exchange(self, slot: int, col: int, w: List[Fraction],
                 value: Fraction) -> None:
        """Swap ``col`` into basis position ``slot`` along the FTRAN'd
        direction ``w``, entering at ``value``; appends one eta vector
        and refactorises if the file passed its thresholds."""
        x = self.x
        if value != 0:
            for i in range(self.m):
                wi = w[i]
                if wi != 0 and i != slot:
                    x[i] -= wi * value
        x[slot] = value
        self._basic.discard(self.basis[slot])
        self.basis[slot] = col
        self._basic.add(col)
        assert self.factor is not None
        self.factor.push_eta(slot, w)
        if self.factor.eta_len > self.eta_len_max:
            self.eta_len_max = self.factor.eta_len
        self._maybe_refactor()

    def _price_structural(self, cost: Dict[int, Fraction],
                          y: List[Fraction]) -> Dict[int, Fraction]:
        """Sparse reduced costs ``d_j = c_j - y·a_j`` over the structural
        columns, computed row-major: scatter each nonzero multiplier's
        row into a column-keyed accumulator, then overlay the objective
        support.  Columns absent from the result have ``d_j = 0`` —
        never candidates to enter — so pricing costs O(nnz of the rows
        with nonzero ``y``), not O(n)."""
        d: Dict[int, Fraction] = {}
        rows = self.sf.rows
        for i, yi in enumerate(y):
            if yi != 0:
                for j, v in rows[i].items():
                    cur = d.get(j)
                    nv = -yi * v if cur is None else cur - yi * v
                    if nv != 0:
                        d[j] = nv
                    elif cur is not None:
                        del d[j]
        for j, c in cost.items():
            if j >= self.n:
                continue
            cur = d.get(j)
            nv = c if cur is None else cur + c
            if nv != 0:
                d[j] = nv
            elif cur is not None:
                del d[j]
        return d

    def _price_all(self, cost: Dict[int, Fraction],
                   include_artificials: bool) -> Dict[int, Fraction]:
        """Full pricing pass: one BTRAN of ``c_B``, then the sparse
        structural sweep plus the minted artificials (phase 1 only —
        unit columns, ``d_a = c_a - y_row``).  Runs once per phase;
        pivots keep the result current through :meth:`_update_prices`.
        Exact arithmetic guarantees basic columns price to exactly 0
        and therefore never appear in the dict."""
        c_b = [cost.get(col, ZERO) for col in self.basis]
        y = self.btran(c_b)
        d = self._price_structural(cost, y)
        if include_artificials:
            for a in self.minted:
                if a >= self.n + self.m:
                    continue
                da = cost.get(a, ZERO) - y[a - self.n]
                if da != 0:
                    d[a] = da
        return d

    @staticmethod
    def _select_entering(d: Dict[int, Fraction], bland: bool) -> int:
        """The entering column from the maintained reduced costs:
        Dantzig (most negative, smallest column id of ties — minted ids
        sit above the structural range, preserving structural-first
        order) or Bland (smallest id with a negative reduced cost).
        Returns -1 at optimality."""
        enter = -1
        if bland:
            for j, dj in d.items():
                if dj < 0 and (enter < 0 or j < enter):
                    enter = j
            return enter
        best: Optional[Fraction] = None
        for j, dj in d.items():
            if dj < 0 and (best is None or dj < best or
                           (dj == best and j < enter)):
                best = dj
                enter = j
        return enter

    def _update_prices(self, d: Dict[int, Fraction],
                       rho: List[Fraction], rate: Fraction,
                       include_artificials: bool) -> None:
        """The product-form reduced-cost sweep: with ``rho`` the
        pre-pivot BTRAN of the leaving slot's unit vector and ``rate``
        ``d_enter / w_leave``, every column moves by
        ``d_j -= rate * (rho·a_j)`` — the same single-row update the
        dense tableau applies to its z-row, at the cost of one sparse
        scatter instead of a whole-tableau elimination.  Exactness makes
        the maintained values identical to a fresh pricing pass, so the
        pivot sequence is unchanged."""
        rows = self.sf.rows
        alpha: Dict[int, Fraction] = {}
        for i, ri in enumerate(rho):
            if ri != 0:
                for j, v in rows[i].items():
                    cur = alpha.get(j)
                    alpha[j] = ri * v if cur is None else cur + ri * v
        for j, aj in alpha.items():
            if aj == 0:
                continue
            cur = d.get(j)
            nv = -rate * aj if cur is None else cur - rate * aj
            if nv != 0:
                d[j] = nv
            elif cur is not None:
                del d[j]
        if include_artificials:
            for a in self.minted:
                if a >= self.n + self.m:
                    continue
                ra = rho[a - self.n]
                if ra == 0:
                    continue
                cur = d.get(a)
                nv = -rate * ra if cur is None else cur - rate * ra
                if nv != 0:
                    d[a] = nv
                elif cur is not None:
                    del d[a]

    def run_primal(self, cost: Dict[int, Fraction],
                   include_artificials: bool = False) -> None:
        """Pivot to optimality from the current (primal feasible) basis.
        Same entering/leaving rules as the tableau engine — Dantzig with
        the Bland degradation after :data:`STALL_LIMIT` degenerate
        pivots, ratio-test ties broken on smallest basis column — so
        cold solves replay the identical pivot sequence.  Reduced costs
        are priced in full once, then maintained per pivot through
        :meth:`_update_prices` (priced values stay bit-identical under
        exact arithmetic)."""
        bland = False
        stall = 0
        d = self._price_all(cost, include_artificials)
        while True:
            self.iterations += 1
            enter = self._select_entering(d, bland)
            if enter < 0:
                return
            w = self.ftran_column(enter)
            leave = -1
            best: Optional[Fraction] = None
            for i in range(self.m):
                wi = w[i]
                if wi > 0:
                    ratio = self.x[i] / wi
                    if best is None or ratio < best or (
                        ratio == best and self.basis[i] < self.basis[leave]
                    ):
                        best = ratio
                        leave = i
            if leave < 0:
                raise UnboundedError(
                    f"objective of {self.lp.name!r} is unbounded "
                    f"(column {enter} has no positive entries)"
                )
            self._count_pivot()
            rate = d[enter] / w[leave]
            rho = self.btran_unit(leave)
            self.exchange(leave, enter, w, best)
            self._update_prices(d, rho, rate, include_artificials)
            if not bland:
                if best == 0:  # degenerate: the objective did not move
                    stall += 1
                    if stall >= self.STALL_LIMIT:
                        bland = True
                else:
                    stall = 0

    def run_dual(self, cost: Dict[int, Fraction], limit: int) -> bool:
        """Dual-simplex pivots toward primal feasibility.

        Requires the current basis dual feasible for ``cost``; maintains
        that invariant through the standard dual ratio test.  Each step
        prices the leaving row through one BTRAN of ``e_slot`` and the
        reduced costs through one BTRAN of ``c_B``.  Returns True once
        every basic value is non-negative, False to request a fallback
        (step budget exhausted, or a dual ray)."""
        steps = 0
        while True:
            leave = -1
            worst: Optional[Fraction] = None
            for s in range(self.m):
                xs = self.x[s]
                if xs < 0 and (worst is None or xs < worst):
                    worst = xs
                    leave = s
            if leave < 0:
                return True
            if steps >= limit:
                return False
            rho = self.btran_unit(leave)
            c_b = [cost.get(col, ZERO) for col in self.basis]
            y = self.btran(c_b)
            priced = self._price_structural(cost, y)
            # the leaving row of the tableau, sparse: alpha_j = rho·a_j
            alpha: Dict[int, Fraction] = {}
            rows = self.sf.rows
            for i, ri in enumerate(rho):
                if ri != 0:
                    for j, v in rows[i].items():
                        cur = alpha.get(j)
                        alpha[j] = ri * v if cur is None else cur + ri * v
            enter = -1
            best: Optional[Fraction] = None
            basic = self._basic
            for j, a in alpha.items():
                if a >= 0 or j in basic:
                    continue
                ratio = priced.get(j, ZERO) / -a
                if best is None or ratio < best or (
                    ratio == best and j < enter
                ):
                    best = ratio
                    enter = j
            if enter < 0:
                return False
            w = self.ftran_column(enter)
            self._count_pivot()
            self.exchange(leave, enter, w, self.x[leave] / w[leave])
            steps += 1

    # ------------------------------------------------------------------
    # artificial handling
    # ------------------------------------------------------------------
    def find_structural_exchange(
        self, slot: int
    ) -> Tuple[int, Optional[List[Fraction]]]:
        """The first structural column that can replace the basic
        column at ``slot`` (nonzero entry in row ``slot`` of the current
        tableau), with its FTRAN'd direction — or ``(-1, None)`` when
        the row has no structural support (a redundant row)."""
        rho = self.btran_unit(slot)
        candidates: set = set()
        for i, ri in enumerate(rho):
            if ri != 0:
                candidates.update(self.sf.rows[i].keys())
        basic = self._basic
        for j in sorted(candidates):
            if j in basic:
                continue
            alpha = ZERO
            for i, v in self.cols[j]:
                ri = rho[i]
                if ri != 0:
                    alpha += ri * v
            if alpha != 0:
                return j, self.ftran_column(j)
        return -1, None

    def drive_out_artificials(self) -> None:
        """Exchange zero-valued basic artificials (and warm-repair
        auxiliaries) for structural columns where possible; a slot that
        keeps its artificial marks a redundant row and sits harmlessly
        at 0 (it can never re-enter: phase 2 prices structural columns
        only)."""
        for s in range(self.m):
            if self.basis[s] < self.n:
                continue
            enter, w = self.find_structural_exchange(s)
            if enter >= 0:
                assert w is not None
                self.refactor_ops += 1
                self.exchange(s, enter, w, self.x[s] / w[s])

    def make_aux(self, slot: int) -> int:
        """Mint the warm restricted-phase-1 auxiliary for an infeasible
        ``slot``: the *negated* column currently basic there.  The swap
        is the eta ``-e_slot`` (pivot value -1), so the basic value
        flips sign — exactly the dense engine's row flip plus fresh
        artificial, expressed in product form."""
        aux = self.n + self.m + slot
        self.aux_cols[aux] = [(i, -v) for i, v in self.column(self.basis[slot])]
        self.minted.append(aux)
        w = [ZERO] * self.m
        w[slot] = -ONE
        self.refactor_ops += 1
        self.exchange(slot, aux, w, self.x[slot] / w[slot])
        return aux

    # ------------------------------------------------------------------
    def objective_of(self, cost: Dict[int, Fraction]) -> Fraction:
        """``cost`` evaluated at the current basic solution."""
        total = ZERO
        for s, col in enumerate(self.basis):
            c = cost.get(col)
            if c is not None and c != 0 and self.x[s] != 0:
                total += c * self.x[s]
        return total

    def dual_feasible(self, cost: Dict[int, Fraction]) -> bool:
        """True when no structural column has a negative reduced cost."""
        c_b = [cost.get(col, ZERO) for col in self.basis]
        y = self.btran(c_b)
        basic = self._basic
        return all(d >= 0 or j in basic
                   for j, d in self._price_structural(cost, y).items())

    def retained_basis(self) -> List[int]:
        """The canonical basis to retain: structural and artificial
        columns keep their ids; an auxiliary still basic (its row went
        redundant mid-repair) is rewritten as the artificial of a row
        its tableau row actually covers (``rho_r != 0``), so the next
        warm install can pin it — or go singular and fall back cold,
        which is always safe."""
        out = list(self.basis)
        used = {col - self.n for col in out
                if self.n <= col < self.n + self.m}
        for s, col in enumerate(out):
            if col < self.n + self.m:
                continue
            rho = self.btran_unit(s)
            pick = -1
            for r in range(self.m):
                if rho[r] != 0 and r not in used:
                    pick = r
                    break
            if pick < 0:
                pick = next(r for r in range(self.m) if rho[r] != 0)
            used.add(pick)
            out[s] = self.n + pick
        return out

    def factor_stats(self) -> Dict[str, int]:
        self._roll_factor_counters()
        if self.factor is not None:
            # counters were just rolled up; zero the live ones so a
            # second read does not double-count
            self.factor.ftran_ops = 0
            self.factor.btran_ops = 0
        return {
            "refactorisations": self.refactorisations,
            "eta_len_max": self.eta_len_max,
            "ftran_ops": self.ftran_ops,
            "btran_ops": self.btran_ops,
            "lu_nnz": self.lu_nnz,
            "lu_basis_nnz": self.lu_basis_nnz,
        }


class SimplexInstance:
    """Persistent exact-simplex state for repeated solves of one LP.

    The instance keeps the *final basis* (and the standard-form structure
    key it belongs to) across solves.  ``solve(warm=True)`` after the
    bound :class:`~repro.lp.model.LinearProgram` was patched in place
    (coefficients only — see the rebuild hook) restarts pivoting from
    that basis instead of re-running the two-phase method from scratch:

    * still primal feasible → phase 1 skipped entirely, straight to the
      primal phase 2 (often zero pivots);
    * primal infeasible but dual feasible → bounded dual-simplex repair;
    * otherwise → restricted phase 1 (artificials only on the infeasible
      rows), then phase 2;
    * structure changed / basis gone singular / repair budget exhausted
      → guaranteed fallback to the cold two-phase solve.

    ``engine`` selects the pivot machinery: ``"revised"`` (default) runs
    the sparse revised simplex of :class:`_RevisedCore` — warm restart =
    one sparse LU of the retained basis, each pivot one FTRAN + one eta —
    while ``"tableau"`` keeps the dense Gauss-Jordan baseline for
    differential tests.  Results are exact :class:`~fractions.Fraction`
    optima on every path and engine.

    Counters (``basis_restarts``, ``phase1_skips``, ``dual_repairs``,
    ``primal_repairs``, ``fallbacks``, ``last_pivots``/``total_pivots``,
    and the revised engine's ``last_factor_stats`` — refactorisations,
    eta-file high-water mark, FTRAN/BTRAN calls, LU fill) feed the
    service metrics and the warm-path benchmarks.
    """

    def __init__(self, lp: LinearProgram,
                 max_pivots: int = DEFAULT_MAX_PIVOTS,
                 engine: Optional[str] = None,
                 eta_limit: Optional[int] = None) -> None:
        self.lp = lp
        self.max_pivots = max_pivots
        self.engine = engine if engine is not None else DEFAULT_ENGINE
        if self.engine not in ("revised", "tableau"):
            raise LPError(
                f"unknown simplex engine {self.engine!r} "
                f"(expected 'revised' or 'tableau')"
            )
        self.eta_limit = eta_limit
        self._basis: Optional[List[int]] = None
        self._structure: Optional[Tuple] = None
        self.solves = 0
        self.basis_restarts = 0
        self.phase1_skips = 0
        self.dual_repairs = 0
        self.primal_repairs = 0
        self.fallbacks = 0
        self.last_pivots = 0
        self.total_pivots = 0
        # how the most recent solve went (read by the incremental layer)
        self.last_restarted = False
        self.last_phase1_skipped = False
        #: factorisation telemetry of the most recent solve (zeros under
        #: the tableau engine); ``factor_totals`` accumulates across the
        #: instance's lifetime except ``eta_len_max``, a high-water mark
        self.last_factor_stats: Dict[str, int] = dict.fromkeys(
            FACTOR_STAT_KEYS, 0)
        self.factor_totals: Dict[str, int] = dict.fromkeys(
            FACTOR_STAT_KEYS, 0)
        #: per-phase timing records of the most recent solve — raw dicts
        #: ``{phase, start_seconds, duration_seconds, pivots}`` with
        #: offsets relative to the start of :meth:`solve`.  The service
        #: tracing layer turns these into spans; this module stays free
        #: of any service import.
        self.last_phases: List[Dict[str, Any]] = []
        # phase timing metadata (perf_counter floats) — never touches
        # the exact pivot arithmetic
        self._phase_clock = 0.0  # repro-lint: allow(exactness)

    # ------------------------------------------------------------------
    def solve(self, warm: bool = False) -> LPSolution:
        """Solve the bound LP exactly; ``warm=True`` restarts from the
        retained basis when the structure still matches (with a cold
        fallback), ``warm=False`` always runs the cold two-phase method.
        """
        if self.lp.objective is None:
            raise LPError("no objective set")
        sf = _build_standard_form(self.lp)
        key = sf.structure_key()
        self.last_restarted = False
        self.last_phase1_skipped = False
        self.last_phases = []
        self.last_factor_stats = dict.fromkeys(FACTOR_STAT_KEYS, 0)
        self._phase_clock = time.perf_counter()
        revised = self.engine == "revised"
        outcome: Optional[_Outcome] = None
        if warm:
            if self._basis is not None and key == self._structure:
                try:
                    outcome = (self._warm_revised(sf) if revised
                               else self._warm_tableau(sf))
                except _AbandonWarm:
                    outcome = None
            if outcome is None:
                # never-solved / structure changed / singular basis /
                # repair abandoned: every warm request that could not
                # restart is a fallback
                self.fallbacks += 1
        if outcome is None:
            outcome = (self._cold_revised(sf) if revised
                       else self._cold_tableau(sf))
        self._basis = outcome.retained
        self._structure = key
        self.solves += 1
        self.last_pivots = outcome.pivots
        self.total_pivots += outcome.pivots
        return self._decode(sf, outcome)

    # ------------------------------------------------------------------
    # revised engine
    # ------------------------------------------------------------------
    def _absorb_core(self, core: _RevisedCore) -> None:
        fs = core.factor_stats()
        for key, value in fs.items():
            if key == "eta_len_max":
                if value > self.last_factor_stats[key]:
                    self.last_factor_stats[key] = value
                if value > self.factor_totals[key]:
                    self.factor_totals[key] = value
            else:
                self.last_factor_stats[key] += value
                self.factor_totals[key] += value

    def _outcome_from_core(self, sf: _StandardForm,
                           core: _RevisedCore) -> _Outcome:
        u = [ZERO] * sf.num_cols
        for s, col in enumerate(core.basis):
            if col < sf.num_cols:
                u[col] = core.x[s]
        return _Outcome(u, core.retained_basis(), core.pivots,
                        core.iterations)

    def _cold_revised(self, sf: _StandardForm) -> _Outcome:
        core = _RevisedCore(sf, self.lp, self.max_pivots, self.eta_limit)
        try:
            core.install_cold()
            if core.minted:
                started, before = time.perf_counter(), core.pivots
                cost1 = {a: ONE for a in core.minted}
                core.run_primal(cost1, include_artificials=True)
                phase1_value = core.objective_of(cost1)
                if phase1_value > 0:
                    raise InfeasibleError(
                        f"{self.lp.name!r} is infeasible "
                        f"(phase-1 optimum {phase1_value})"
                    )
                core.drive_out_artificials()
                self._record_phase("cold.phase1", started, before, core)
            started, before = time.perf_counter(), core.pivots
            core.run_primal(dict(sf.cost))
            self._record_phase("cold.phase2", started, before, core)
            return self._outcome_from_core(sf, core)
        finally:
            self._absorb_core(core)

    def _warm_revised(self, sf: _StandardForm) -> Optional[_Outcome]:
        """Basis-restart solve on the revised engine; None requests the
        cold fallback.  One sparse LU of the retained basis replaces the
        tableau engine's whole-matrix Gauss-Jordan sweep; the repair
        ladder (phase-1 skip → dual repair → restricted phase 1 → cold)
        is unchanged."""
        assert self._basis is not None
        n = sf.num_cols
        core = _RevisedCore(sf, self.lp, self.max_pivots, self.eta_limit)
        core.abandon_after = core.m // 2 + 16
        try:
            if not core.install_warm(self._basis):
                return None
            # Retained artificials mark rows that were redundant last
            # solve.  Against the patched coefficients each such row
            # either (a) still has no structural support — a harmless
            # invariant row provided its residual is 0 — or (b) regained
            # structural entries, in which case the artificial is
            # exchanged out immediately so no phase below ever carries a
            # nonzero artificial.
            for s in range(core.m):
                if core.basis[s] < n:
                    continue
                enter, w = core.find_structural_exchange(s)
                if enter >= 0:
                    assert w is not None
                    core.refactor_ops += 1
                    core.exchange(s, enter, w, core.x[s] / w[s])
                elif core.x[s] != 0:
                    # 0·u = nonzero after elimination: let the cold
                    # two-phase method diagnose the (in)feasibility
                    return None
            cost2 = dict(sf.cost)
            if all(v >= 0 for v in core.x):
                # old basis still primal feasible: no phase 1, no repair
                started, before = time.perf_counter(), core.pivots
                core.run_primal(cost2)
                self._record_phase("warm.phase2", started, before, core)
                self.basis_restarts += 1
                self.phase1_skips += 1
                self.last_restarted = True
                self.last_phase1_skipped = True
                return self._outcome_from_core(sf, core)
            if core.dual_feasible(cost2):
                # dual feasible: dual-simplex repair.  The budget is
                # tight on purpose — a drifted-but-close basis repairs in
                # a handful of pivots, and a repair that wanders past
                # ~m/2 pivots is losing to the cold solve it is supposed
                # to undercut, so fall back.
                started, before = time.perf_counter(), core.pivots
                if not core.run_dual(cost2, limit=core.m // 2 + 8):
                    return None
                self._record_phase("warm.dual_repair", started, before, core)
                started, before = time.perf_counter(), core.pivots
                core.run_primal(cost2)
                self._record_phase("warm.phase2", started, before, core)
                self.basis_restarts += 1
                self.dual_repairs += 1
                self.last_restarted = True
                return self._outcome_from_core(sf, core)
            # neither feasible: restricted phase 1 — every infeasible
            # slot gets an auxiliary (its negated basic column, a
            # product-form eta) and phase 1 minimises their sum
            aux = [core.make_aux(s) for s in range(core.m)
                   if core.x[s] < 0]
            cost1 = {a: ONE for a in aux}
            started, before = time.perf_counter(), core.pivots
            core.run_primal(cost1)
            phase1_value = core.objective_of(cost1)
            if phase1_value > 0:
                raise InfeasibleError(
                    f"{self.lp.name!r} is infeasible "
                    f"(restricted phase-1 optimum {phase1_value})"
                )
            core.drive_out_artificials()
            self._record_phase("warm.phase1", started, before, core)
            started, before = time.perf_counter(), core.pivots
            core.run_primal(cost2)
            self._record_phase("warm.phase2", started, before, core)
            self.basis_restarts += 1
            self.primal_repairs += 1
            self.last_restarted = True
            return self._outcome_from_core(sf, core)
        finally:
            self._absorb_core(core)

    # ------------------------------------------------------------------
    # tableau engine (differential-testing baseline)
    # ------------------------------------------------------------------
    def _outcome_from_tableau(self, sf: _StandardForm,
                              tab: _Tableau) -> _Outcome:
        n = sf.num_cols
        u = [ZERO] * n
        for i in range(tab.m):
            if tab.basis[i] < n:
                u[tab.basis[i]] = tab.rows[i][-1]
        # canonicalise before retaining: any basic artificial is recorded
        # as ``n + row`` — the next restart only needs to know WHICH rows
        # were artificial-basic (redundant), not which artificial column
        # happened to serve them
        retained = [col if col < n else n + i
                    for i, col in enumerate(tab.basis)]
        return _Outcome(u, retained, tab.pivots, tab.iterations)

    def _cold_tableau(self, sf: _StandardForm) -> _Outcome:
        tab = _Tableau(sf, self.lp, self.max_pivots)
        m, n = tab.m, tab.n
        # Choose initial basis: reuse a slack column (+1 coefficient, sole
        # entry in its row among *potential* basis columns) when possible,
        # else an artificial.
        col_rows: Dict[int, List[int]] = {}
        for i, row in enumerate(sf.rows):
            for col in row:
                col_rows.setdefault(col, []).append(i)
        artificial_cols: List[int] = []
        for i, row in enumerate(sf.rows):
            chosen = -1
            for col, val in row.items():
                if val == 1 and len(col_rows[col]) == 1 and col not in sf.cost:
                    chosen = col
                    break
            if chosen >= 0:
                tab.basis.append(chosen)
            else:
                art = n + i
                tab.rows[i][art] = ONE
                tab.basis.append(art)
                artificial_cols.append(art)

        # ---------------- phase 1 ----------------
        if artificial_cols:
            started, before = time.perf_counter(), tab.pivots
            cost1 = [ZERO] * tab.width
            for col in artificial_cols:
                cost1[col] = ONE
            z1 = tab.run_primal(cost1, tab.width - 1)
            phase1_value = -z1[-1]
            if phase1_value > 0:
                raise InfeasibleError(
                    f"{self.lp.name!r} is infeasible "
                    f"(phase-1 optimum {phase1_value})"
                )
            tab.drive_out_artificials()
            self._record_phase("cold.phase1", started, before, tab)

        # ---------------- phase 2 ----------------
        started, before = time.perf_counter(), tab.pivots
        tab.run_primal(self._phase2_cost(tab), n)
        self._record_phase("cold.phase2", started, before, tab)
        return self._outcome_from_tableau(sf, tab)

    def _phase2_cost(self, tab: _Tableau) -> List[Fraction]:
        cost2 = [ZERO] * tab.width
        for col, c in tab.sf.cost.items():
            cost2[col] = c
        return cost2

    def _record_phase(self, name: str, started: float,
                      pivots_before: int, engine_state: Any) -> None:
        self.last_phases.append({
            "phase": name,
            "start_seconds": started - self._phase_clock,
            "duration_seconds": time.perf_counter() - started,
            "pivots": engine_state.pivots - pivots_before,
        })

    def _warm_tableau(self, sf: _StandardForm) -> Optional[_Outcome]:
        """Basis-restart solve on the dense engine; None requests the
        cold fallback.

        Entering columns are restricted to the *structural* region
        (``j < n``) in every warm phase — a driven-out artificial's column
        is no longer a valid unit column, and the standard
        no-artificial-re-entry rule keeps phase 1 correct without it.
        """
        assert self._basis is not None
        n = sf.num_cols
        tab = _Tableau(sf, self.lp, self.max_pivots, extra_artificials=True)
        tab.abandon_after = tab.m // 2 + 16
        if not tab.install_basis(self._basis):
            return None
        # Retained artificials mark rows that were redundant last solve.
        # Against the patched coefficients each such row either (a) is
        # still all-zero over the structural columns — a harmless
        # invariant row provided its rhs is 0 — or (b) regained structural
        # entries, in which case the artificial is driven out immediately
        # so no phase below ever carries a nonzero artificial.
        for i in range(tab.m):
            if tab.basis[i] < n:
                continue
            row = tab.rows[i]
            enter = -1
            for j in range(n):
                if row[j] != 0:
                    enter = j
                    break
            if enter >= 0:
                tab.refactor_ops += 1
                tab._apply_pivot(i, enter)
            elif row[-1] != 0:
                # 0·u = nonzero after elimination: let the cold two-phase
                # method diagnose the (in)feasibility from scratch
                return None
        cost2 = self._phase2_cost(tab)
        if all(row[-1] >= 0 for row in tab.rows):
            # old basis still primal feasible: no phase 1, no repair
            started, before = time.perf_counter(), tab.pivots
            tab.run_primal(cost2, n)
            self._record_phase("warm.phase2", started, before, tab)
            self.basis_restarts += 1
            self.phase1_skips += 1
            self.last_restarted = True
            self.last_phase1_skipped = True
            return self._outcome_from_tableau(sf, tab)
        z = tab.price_out(cost2)
        if all(z[j] >= 0 for j in range(n)):
            # dual feasible: dual-simplex repair.  The budget is tight on
            # purpose — a drifted-but-close basis repairs in a handful of
            # pivots, and a repair that wanders past ~m/2 pivots is losing
            # to the cold solve it is supposed to undercut, so fall back.
            started, before = time.perf_counter(), tab.pivots
            if not tab.run_dual(z, limit=tab.m // 2 + 8):
                return None
            self._record_phase("warm.dual_repair", started, before, tab)
            # z was maintained through every dual pivot: still the exact
            # reduced-cost row of cost2, so phase 2 needs no re-pricing
            started, before = time.perf_counter(), tab.pivots
            tab.run_primal(cost2, n, z=z)
            self._record_phase("warm.phase2", started, before, tab)
            self.basis_restarts += 1
            self.dual_repairs += 1
            self.last_restarted = True
            return self._outcome_from_tableau(sf, tab)
        # neither feasible: restricted phase 1 — each negative row is
        # sign-flipped and given a FRESH artificial from the second
        # region (guaranteed untouched; see _Tableau.__init__)
        artificial_cols: List[int] = []
        for i in range(tab.m):
            row = tab.rows[i]
            if row[-1] < 0:
                for j in range(tab.width):
                    if row[j] != 0:
                        row[j] = -row[j]
                art = n + tab.m + i
                row[art] = ONE
                tab.basis[i] = art
                artificial_cols.append(art)
        cost1 = [ZERO] * tab.width
        for col in artificial_cols:
            cost1[col] = ONE
        started, before = time.perf_counter(), tab.pivots
        z1 = tab.run_primal(cost1, n)
        if -z1[-1] > 0:
            raise InfeasibleError(
                f"{self.lp.name!r} is infeasible "
                f"(restricted phase-1 optimum {-z1[-1]})"
            )
        tab.drive_out_artificials()
        self._record_phase("warm.phase1", started, before, tab)
        started, before = time.perf_counter(), tab.pivots
        tab.run_primal(cost2, n)
        self._record_phase("warm.phase2", started, before, tab)
        self.basis_restarts += 1
        self.primal_repairs += 1
        self.last_restarted = True
        return self._outcome_from_tableau(sf, tab)

    # ------------------------------------------------------------------
    def _decode(self, sf: _StandardForm, outcome: _Outcome) -> LPSolution:
        u = outcome.u
        min_value = sf.cost_offset
        for col, c in sf.cost.items():
            uc = u[col]
            if uc != 0:
                min_value += c * uc
        values: Dict[Variable, Fraction] = {}
        for var, (cols, offset) in sf.decode.items():
            x = offset
            for col, s in cols:
                x += s * u[col]
            values[var] = x
        objective = -min_value if self.lp.sense == "max" else min_value
        return LPSolution(
            objective=objective,
            values=values,
            backend="exact",
            iterations=outcome.iterations,
            pivots=outcome.pivots,
        )

    def stats(self) -> Dict[str, int]:
        return {
            "solves": self.solves,
            "basis_restarts": self.basis_restarts,
            "phase1_skips": self.phase1_skips,
            "dual_repairs": self.dual_repairs,
            "primal_repairs": self.primal_repairs,
            "fallbacks": self.fallbacks,
            "last_pivots": self.last_pivots,
            "total_pivots": self.total_pivots,
            **self.factor_totals,
        }


def solve_exact(lp: LinearProgram,
                max_iterations: int = DEFAULT_MAX_PIVOTS,
                engine: Optional[str] = None) -> LPSolution:
    """Solve ``lp`` exactly (one cold two-phase solve); raises
    Infeasible/Unbounded errors as needed.  ``max_iterations`` is the
    pivot safety cap and ``engine`` the pivot machinery (revised sparse
    LU by default) — see :class:`SimplexInstance`."""
    return SimplexInstance(lp, max_pivots=max_iterations,
                           engine=engine).solve()
