"""Exact simplex over rational numbers, with basis-reusing warm re-solves.

Why from scratch: the steady-state methodology needs the *rational* optimal
basic solution (section 4.1 derives the period ``T`` as the lcm of the
denominators of the activity variables), and no rational LP solver is
available offline.  This is a dense tableau implementation with Bland's
anti-cycling rule — O(m·n) Fraction operations per pivot, entirely adequate
for the platform-sized LPs of this library (tens to a few hundred variables)
and exact by construction.

The solve is split into three phases behind :class:`SimplexInstance`:

1. **assemble** — the caller builds (or patches) a
   :class:`~repro.lp.model.LinearProgram`;
2. **standard form** — :func:`_build_standard_form` lowers it to
   ``min c·u, A u = b, u >= 0`` plus the column-decoding recipe;
3. **pivot** — a cold solve runs the classic two-phase primal simplex,
   while a *warm* solve restarts from the basis retained by the previous
   solve of the same instance: the basis is re-factorised against the
   patched coefficients, primal/dual feasibility is repaired as needed
   (phase 1 is skipped entirely when the old basis is still primal
   feasible), and any structural surprise falls back to the cold
   two-phase solve.  Either way the result is the exact rational optimum.

``solve_exact`` remains the stateless entry point (one cold solve);
:mod:`repro.service.incremental` holds a :class:`SimplexInstance` per hot
model so weight-only re-solves reuse both the assembled LP *and* the
optimal basis.

Standard-form conversion
------------------------
* ``x`` with lower bound ``lo``: substitute ``x = lo + u`` (``u >= 0``);
  an upper bound adds the row ``u <= hi - lo``.
* ``x`` with only an upper bound: substitute ``x = hi - u``.
* free ``x``: substitute ``x = u - v``.
* ``<=`` rows get a slack, ``>=`` rows a surplus; rows are sign-normalised
  so the rhs is non-negative; artificial variables complete the phase-1
  basis where no slack is usable.
"""

from __future__ import annotations

import time
from fractions import Fraction
from typing import Any, Dict, List, Optional, Tuple

from .model import (
    InfeasibleError,
    LinearProgram,
    LPError,
    LPSolution,
    UnboundedError,
    Variable,
)

ZERO = Fraction(0)
ONE = Fraction(1)

#: default pivot safety cap — far above anything the platform-sized LPs
#: need, low enough that a degenerate spin fails in seconds, not hours
DEFAULT_MAX_PIVOTS = 200_000


class _StandardForm:
    """min c·u  s.t.  A u = b (b >= 0), u >= 0, plus the decoding recipe."""

    def __init__(self) -> None:
        self.rows: List[Dict[int, Fraction]] = []  # sparse rows
        self.rhs: List[Fraction] = []
        self.cost: Dict[int, Fraction] = {}
        self.cost_offset: Fraction = ZERO
        self.num_cols = 0
        # var -> list of (col, sign); plus constant offset per var
        self.decode: Dict[Variable, Tuple[List[Tuple[int, Fraction]], Fraction]] = {}

    def new_col(self) -> int:
        col = self.num_cols
        self.num_cols += 1
        return col

    def structure_key(self) -> Tuple:
        """Hashable *shape* of the standard form: column count, per-row
        column support and objective support — everything a retained basis
        depends on, none of the coefficient values.  Two standard forms
        with equal keys differ only in coefficients, which is exactly the
        situation a warm basis restart can handle."""
        return (
            self.num_cols,
            tuple(tuple(sorted(row)) for row in self.rows),
            tuple(sorted(self.cost)),
        )


def _build_standard_form(lp: LinearProgram) -> _StandardForm:
    sf = _StandardForm()
    # 1. substitute variables.
    subs: Dict[Variable, Tuple[List[Tuple[int, Fraction]], Fraction]] = {}
    extra_rows: List[Tuple[Dict[int, Fraction], str, Fraction]] = []
    for var in lp.variables:
        if var.lo is not None:
            u = sf.new_col()
            subs[var] = ([(u, ONE)], var.lo)
            if var.hi is not None:
                extra_rows.append(({u: ONE}, "<=", var.hi - var.lo))
        elif var.hi is not None:
            u = sf.new_col()
            subs[var] = ([(u, Fraction(-1))], var.hi)
        else:
            u = sf.new_col()
            v = sf.new_col()
            subs[var] = ([(u, ONE), (v, Fraction(-1))], ZERO)
    sf.decode = subs

    # 2. objective (always minimise internally).
    assert lp.objective is not None
    sign = Fraction(-1) if lp.sense == "max" else ONE
    sf.cost_offset = sign * lp.objective.constant
    for var, coef in lp.objective.terms.items():
        cols, offset = subs[var]
        sf.cost_offset += sign * coef * offset
        for col, s in cols:
            sf.cost[col] = sf.cost.get(col, ZERO) + sign * coef * s

    # 3. constraint rows.
    all_rows: List[Tuple[Dict[int, Fraction], str, Fraction]] = []
    for cons in lp.constraints:
        terms, sense, rhs = cons.normalized()
        row: Dict[int, Fraction] = {}
        shift = ZERO
        for var, coef in terms.items():
            cols, offset = subs[var]
            shift += coef * offset
            for col, s in cols:
                row[col] = row.get(col, ZERO) + coef * s
        row = {c: v for c, v in row.items() if v != 0}
        all_rows.append((row, sense, rhs - shift))
    all_rows.extend(extra_rows)

    for row, sense, rhs in all_rows:
        if not row:
            # constant constraint: check satisfiability directly.
            ok = (
                (sense == "<=" and ZERO <= rhs)
                or (sense == ">=" and ZERO >= rhs)
                or (sense == "==" and rhs == 0)
            )
            if not ok:
                raise InfeasibleError(
                    f"constant constraint 0 {sense} {rhs} is unsatisfiable"
                )
            continue
        r = dict(row)
        if sense == "<=":
            slack = sf.new_col()
            r[slack] = ONE
        elif sense == ">=":
            slack = sf.new_col()
            r[slack] = Fraction(-1)
        if rhs < 0:
            r = {c: -v for c, v in r.items()}
            rhs = -rhs
        sf.rows.append(r)
        sf.rhs.append(rhs)
    return sf


class _AbandonWarm(Exception):
    """Internal: a warm attempt blew its pivot budget; fall back to cold."""


class _Tableau:
    """Dense simplex working state: ``m`` rows x (``n`` + m artificials + 1
    rhs), a basis assignment per row, and the pivot bookkeeping.

    Column ``n + i`` is reserved as the artificial of row ``i`` (cold
    phase 1 and the warm restricted phase-1 repair both use it); the rhs
    lives in the last cell of each row.  ``pivots`` counts genuine simplex
    pivots against the safety cap; basis re-factorisation row operations
    are the same O(m·width) work but bounded by ``m``, so they are counted
    separately (``refactor_ops``) and never trip the cap.
    """

    def __init__(self, sf: _StandardForm, lp: LinearProgram,
                 max_pivots: int, extra_artificials: bool = False) -> None:
        self.sf = sf
        self.lp = lp
        self.m = len(sf.rows)
        self.n = sf.num_cols
        # A warm restart reserves a SECOND artificial region
        # [n + m, n + 2m): the first region's columns may be left dirty by
        # driving a retained artificial out of the basis, so the
        # feasibility repair mints its fresh artificials from untouched
        # columns instead.
        self.width = self.n + (2 if extra_artificials else 1) * self.m + 1
        self.max_pivots = max_pivots
        #: soft budget for warm attempts: when set, exceeding it raises
        #: :class:`_AbandonWarm` (caught by the warm solver, which falls
        #: back to cold) instead of the hard :class:`LPError` of the
        #: safety cap — a restart that pivots more than the cold solve it
        #: is meant to undercut has already lost
        self.abandon_after: Optional[int] = None
        self.pivots = 0
        self.refactor_ops = 0
        self.iterations = 0
        self.rows: List[List[Fraction]] = []
        for i, row in enumerate(sf.rows):
            dense = [ZERO] * self.width
            for col, val in row.items():
                dense[col] = val
            dense[-1] = sf.rhs[i]
            self.rows.append(dense)
        self.basis: List[int] = []

    # ------------------------------------------------------------------
    def _apply_pivot(self, row_i: int, col_j: int) -> None:
        piv_row = self.rows[row_i]
        piv = piv_row[col_j]
        inv = ONE / piv
        # one O(width) scan for the pivot row's support, then every row
        # update touches only those columns — the steady-state LPs are
        # sparse, so this is the difference between O(m·width) and
        # O(m·nnz) Fraction work per pivot
        nonzero = [j for j in range(self.width) if piv_row[j] != 0]
        if piv != 1:
            for j in nonzero:
                piv_row[j] *= inv
        for r in range(self.m):
            if r == row_i:
                continue
            factor = self.rows[r][col_j]
            if factor == 0:
                continue
            target = self.rows[r]
            for j in nonzero:
                target[j] -= factor * piv_row[j]
        self.basis[row_i] = col_j

    def pivot(self, row_i: int, col_j: int) -> None:
        self.pivots += 1
        if self.abandon_after is not None and self.pivots > self.abandon_after:
            raise _AbandonWarm()
        if self.pivots > self.max_pivots:
            raise LPError(
                f"simplex exceeded the {self.max_pivots}-pivot safety cap "
                f"on {self.lp.name!r} (m={self.m} rows, n={self.n} columns, "
                f"{len(self.lp.variables)} model variables) — degenerate "
                f"cycling, or raise max_pivots for an LP this size"
            )
        self._apply_pivot(row_i, col_j)

    # ------------------------------------------------------------------
    def install_basis(self, basis_cols: List[int]) -> bool:
        """Re-factorise: pivot each retained basis column back into the
        basis by Gauss-Jordan elimination against the *patched*
        coefficients.  Returns False when the columns have gone singular
        (the caller falls back to a cold solve).

        Artificial columns (``col >= n``, retained when the previous solve
        ended with a redundant row's artificial still basic) are pinned
        first: the artificial of row ``i`` is the unit column ``e_i``, so
        assigning it to its own row is free and keeps every *other*
        artificial column untouched — which the warm repair relies on when
        it mints fresh artificials for rows the old basis leaves
        infeasible."""
        self.basis = [-1] * self.m
        assigned = [False] * self.m
        for col in basis_cols:
            if col >= self.n:
                i = col - self.n
                if assigned[i]:
                    return False
                self.rows[i][col] = ONE
                self.basis[i] = col
                assigned[i] = True
        # Markowitz-flavoured ordering: eliminate the sparsest columns
        # first (slacks and bound rows are near-unit and pivot for free),
        # so the fill-in of the dense conservation block lands late and
        # stays small — this is what keeps a re-factorisation cheaper
        # than the pivot sequence it replaces.
        col_nnz: Dict[int, int] = {}
        for row in self.sf.rows:
            for col in row:
                col_nnz[col] = col_nnz.get(col, 0) + 1
        structural = sorted(
            (col for col in basis_cols if col < self.n),
            key=lambda col: col_nnz.get(col, 0),
        )
        for col in structural:
            chosen = -1
            for r in range(self.m):
                if not assigned[r] and self.rows[r][col] != 0:
                    chosen = r
                    break
            if chosen < 0:
                return False
            self.refactor_ops += 1
            self._apply_pivot(chosen, col)
            assigned[chosen] = True
        return True

    def price_out(self, cost: List[Fraction]) -> List[Fraction]:
        """The reduced-cost row of ``cost`` under the current basis
        (length ``width``; the rhs cell holds minus the objective)."""
        z = [ZERO] * self.width
        for j, c in enumerate(cost):
            z[j] = c
        for i in range(self.m):
            cb = cost[self.basis[i]] if self.basis[i] < len(cost) else ZERO
            if cb == 0:
                continue
            row = self.rows[i]
            for j in range(self.width):
                v = row[j]
                if v != 0:
                    z[j] -= cb * v
        return z

    def _sweep_z(self, z: List[Fraction], piv_row_i: int, enter: int) -> None:
        factor = z[enter]
        if factor == 0:
            return
        piv_row = self.rows[piv_row_i]
        for j in range(self.width):
            v = piv_row[j]
            if v != 0:
                z[j] -= factor * v

    #: consecutive degenerate (no-progress) pivots tolerated under the
    #: Dantzig rule before switching to Bland's rule for good — the
    #: standard cycling safeguard (Bland guarantees termination from any
    #: basis; Dantzig is simply much faster when progress is being made)
    STALL_LIMIT = 32

    def run_primal(self, cost: List[Fraction], allowed_cols: int,
                   z: Optional[List[Fraction]] = None) -> List[Fraction]:
        """Pivot to optimality from the current basis; returns the final
        reduced-cost row.  Entering column by Dantzig's rule (most
        negative reduced cost), degrading permanently to Bland's rule
        after :data:`STALL_LIMIT` consecutive degenerate pivots so
        termination stays guaranteed.  ``z`` may carry a reduced-cost
        row the caller already maintains for ``cost`` (the dual repair
        does), saving the O(m·width) re-pricing pass."""
        if z is None:
            z = self.price_out(cost)
        bland = False
        stall = 0
        while True:
            self.iterations += 1
            enter = -1
            if bland:
                # Bland: smallest-index column with negative reduced cost
                for j in range(allowed_cols):
                    if z[j] < 0:
                        enter = j
                        break
            else:
                most: Optional[Fraction] = None
                for j in range(allowed_cols):
                    v = z[j]
                    if v < 0 and (most is None or v < most):
                        most = v
                        enter = j
            if enter < 0:
                return z
            # ratio test; tie-break on smallest basis column index.
            leave = -1
            best: Optional[Fraction] = None
            for i in range(self.m):
                a = self.rows[i][enter]
                if a > 0:
                    ratio = self.rows[i][-1] / a
                    if best is None or ratio < best or (
                        ratio == best and self.basis[i] < self.basis[leave]
                    ):
                        best = ratio
                        leave = i
            if leave < 0:
                raise UnboundedError(
                    f"objective of {self.lp.name!r} is unbounded "
                    f"(column {enter} has no positive entries)"
                )
            self.pivot(leave, enter)
            self._sweep_z(z, leave, enter)
            if not bland:
                if best == 0:  # degenerate: the objective did not move
                    stall += 1
                    if stall >= self.STALL_LIMIT:
                        bland = True
                else:
                    stall = 0

    def run_dual(self, z: List[Fraction], limit: int) -> bool:
        """Dual-simplex pivots toward primal feasibility.

        Requires ``z`` dual feasible (no negative reduced cost among the
        structural columns); maintains that invariant.  Returns True once
        every rhs is non-negative, False to request a fallback (step
        budget exhausted, or a fully non-negative pivot row — the dual
        ray case, which the cold two-phase solve diagnoses properly).
        """
        steps = 0
        while True:
            # leaving row: most negative rhs (the textbook dual rule —
            # converges far faster than Bland order; the step budget, not
            # an anti-cycling rule, bounds the loop)
            leave = -1
            worst: Optional[Fraction] = None
            for i in range(self.m):
                rhs = self.rows[i][-1]
                if rhs < 0 and (worst is None or rhs < worst):
                    worst = rhs
                    leave = i
            if leave < 0:
                return True
            if steps >= limit:
                return False
            row = self.rows[leave]
            enter = -1
            best: Optional[Fraction] = None
            for j in range(self.n):
                a = row[j]
                if a < 0:
                    ratio = z[j] / -a
                    if best is None or ratio < best:
                        best = ratio
                        enter = j
            if enter < 0:
                return False
            self.pivot(leave, enter)
            self._sweep_z(z, leave, enter)
            steps += 1

    def drive_out_artificials(self) -> None:
        """Pivot zero-valued basic artificials onto structural columns
        where possible; a row that stays artificial is redundant and the
        artificial sits harmlessly at 0 (it can never re-enter: phase 2
        restricts entering columns to the structural ones)."""
        for i in range(self.m):
            if self.basis[i] >= self.n:
                row = self.rows[i]
                for j in range(self.n):
                    if row[j] != 0:
                        self.refactor_ops += 1
                        self._apply_pivot(i, j)
                        break


class SimplexInstance:
    """Persistent exact-simplex state for repeated solves of one LP.

    The instance keeps the *final basis* (and the standard-form structure
    key it belongs to) across solves.  ``solve(warm=True)`` after the
    bound :class:`~repro.lp.model.LinearProgram` was patched in place
    (coefficients only — see the rebuild hook) restarts pivoting from
    that basis instead of re-running the two-phase method from scratch:

    * still primal feasible → phase 1 skipped entirely, straight to the
      primal phase 2 (often zero pivots);
    * primal infeasible but dual feasible → bounded dual-simplex repair;
    * otherwise → restricted phase 1 (artificials only on the infeasible
      rows), then phase 2;
    * structure changed / basis gone singular / repair budget exhausted
      → guaranteed fallback to the cold two-phase solve.

    Results are exact :class:`~fractions.Fraction` optima on every path.
    Counters (``basis_restarts``, ``phase1_skips``, ``dual_repairs``,
    ``primal_repairs``, ``fallbacks``, ``last_pivots``/``total_pivots``)
    feed the service metrics and the warm-path benchmark.
    """

    def __init__(self, lp: LinearProgram,
                 max_pivots: int = DEFAULT_MAX_PIVOTS) -> None:
        self.lp = lp
        self.max_pivots = max_pivots
        self._basis: Optional[List[int]] = None
        self._structure: Optional[Tuple] = None
        self.solves = 0
        self.basis_restarts = 0
        self.phase1_skips = 0
        self.dual_repairs = 0
        self.primal_repairs = 0
        self.fallbacks = 0
        self.last_pivots = 0
        self.total_pivots = 0
        # how the most recent solve went (read by the incremental layer)
        self.last_restarted = False
        self.last_phase1_skipped = False
        #: per-phase timing records of the most recent solve — raw dicts
        #: ``{phase, start_seconds, duration_seconds, pivots}`` with
        #: offsets relative to the start of :meth:`solve`.  The service
        #: tracing layer turns these into spans; this module stays free
        #: of any service import.
        self.last_phases: List[Dict[str, Any]] = []
        # phase timing metadata (perf_counter floats) — never touches
        # the exact pivot arithmetic
        self._phase_clock = 0.0  # repro-lint: allow(exactness)

    # ------------------------------------------------------------------
    def solve(self, warm: bool = False) -> LPSolution:
        """Solve the bound LP exactly; ``warm=True`` restarts from the
        retained basis when the structure still matches (with a cold
        fallback), ``warm=False`` always runs the cold two-phase method.
        """
        if self.lp.objective is None:
            raise LPError("no objective set")
        sf = _build_standard_form(self.lp)
        key = sf.structure_key()
        self.last_restarted = False
        self.last_phase1_skipped = False
        self.last_phases = []
        self._phase_clock = time.perf_counter()
        outcome = None
        if warm:
            if self._basis is not None and key == self._structure:
                try:
                    outcome = self._warm_solve(sf)
                except _AbandonWarm:
                    outcome = None
            if outcome is None:
                # never-solved / structure changed / singular basis /
                # repair abandoned: every warm request that could not
                # restart is a fallback
                self.fallbacks += 1
        if outcome is None:
            outcome = self._cold_solve(sf)
        tab, z2 = outcome
        # canonicalise before retaining: any basic artificial is recorded
        # as ``n + row`` — the next restart only needs to know WHICH rows
        # were artificial-basic (redundant), not which artificial column
        # happened to serve them
        n = sf.num_cols
        self._basis = [col if col < n else n + i
                       for i, col in enumerate(tab.basis)]
        self._structure = key
        self.solves += 1
        self.last_pivots = tab.pivots
        self.total_pivots += tab.pivots
        return self._decode(sf, tab, z2)

    # ------------------------------------------------------------------
    def _cold_solve(self, sf: _StandardForm) -> Tuple[_Tableau, List[Fraction]]:
        tab = _Tableau(sf, self.lp, self.max_pivots)
        m, n = tab.m, tab.n
        # Choose initial basis: reuse a slack column (+1 coefficient, sole
        # entry in its row among *potential* basis columns) when possible,
        # else an artificial.
        col_rows: Dict[int, List[int]] = {}
        for i, row in enumerate(sf.rows):
            for col in row:
                col_rows.setdefault(col, []).append(i)
        artificial_cols: List[int] = []
        for i, row in enumerate(sf.rows):
            chosen = -1
            for col, val in row.items():
                if val == 1 and len(col_rows[col]) == 1 and col not in sf.cost:
                    chosen = col
                    break
            if chosen >= 0:
                tab.basis.append(chosen)
            else:
                art = n + i
                tab.rows[i][art] = ONE
                tab.basis.append(art)
                artificial_cols.append(art)

        # ---------------- phase 1 ----------------
        if artificial_cols:
            started, before = time.perf_counter(), tab.pivots
            cost1 = [ZERO] * tab.width
            for col in artificial_cols:
                cost1[col] = ONE
            z1 = tab.run_primal(cost1, tab.width - 1)
            phase1_value = -z1[-1]
            if phase1_value > 0:
                raise InfeasibleError(
                    f"{self.lp.name!r} is infeasible "
                    f"(phase-1 optimum {phase1_value})"
                )
            tab.drive_out_artificials()
            self._record_phase("cold.phase1", started, before, tab)

        # ---------------- phase 2 ----------------
        started, before = time.perf_counter(), tab.pivots
        z2 = tab.run_primal(self._phase2_cost(tab), n)
        self._record_phase("cold.phase2", started, before, tab)
        return tab, z2

    def _phase2_cost(self, tab: _Tableau) -> List[Fraction]:
        cost2 = [ZERO] * tab.width
        for col, c in tab.sf.cost.items():
            cost2[col] = c
        return cost2

    def _record_phase(self, name: str, started: float,
                      pivots_before: int, tab: _Tableau) -> None:
        self.last_phases.append({
            "phase": name,
            "start_seconds": started - self._phase_clock,
            "duration_seconds": time.perf_counter() - started,
            "pivots": tab.pivots - pivots_before,
        })

    # ------------------------------------------------------------------
    def _warm_solve(
        self, sf: _StandardForm
    ) -> Optional[Tuple[_Tableau, List[Fraction]]]:
        """Basis-restart solve; None requests the cold fallback.

        Entering columns are restricted to the *structural* region
        (``j < n``) in every warm phase — a driven-out artificial's column
        is no longer a valid unit column, and the standard
        no-artificial-re-entry rule keeps phase 1 correct without it.
        """
        assert self._basis is not None
        n = sf.num_cols
        tab = _Tableau(sf, self.lp, self.max_pivots, extra_artificials=True)
        tab.abandon_after = tab.m // 2 + 16
        if not tab.install_basis(self._basis):
            return None
        # Retained artificials mark rows that were redundant last solve.
        # Against the patched coefficients each such row either (a) is
        # still all-zero over the structural columns — a harmless
        # invariant row provided its rhs is 0 — or (b) regained structural
        # entries, in which case the artificial is driven out immediately
        # so no phase below ever carries a nonzero artificial.
        for i in range(tab.m):
            if tab.basis[i] < n:
                continue
            row = tab.rows[i]
            enter = -1
            for j in range(n):
                if row[j] != 0:
                    enter = j
                    break
            if enter >= 0:
                tab.refactor_ops += 1
                tab._apply_pivot(i, enter)
            elif row[-1] != 0:
                # 0·u = nonzero after elimination: let the cold two-phase
                # method diagnose the (in)feasibility from scratch
                return None
        cost2 = self._phase2_cost(tab)
        if all(row[-1] >= 0 for row in tab.rows):
            # old basis still primal feasible: no phase 1, no repair
            started, before = time.perf_counter(), tab.pivots
            z2 = tab.run_primal(cost2, n)
            self._record_phase("warm.phase2", started, before, tab)
            self.basis_restarts += 1
            self.phase1_skips += 1
            self.last_restarted = True
            self.last_phase1_skipped = True
            return tab, z2
        z = tab.price_out(cost2)
        if all(z[j] >= 0 for j in range(n)):
            # dual feasible: dual-simplex repair.  The budget is tight on
            # purpose — a drifted-but-close basis repairs in a handful of
            # pivots, and a repair that wanders past ~m/2 pivots is losing
            # to the cold solve it is supposed to undercut, so fall back.
            started, before = time.perf_counter(), tab.pivots
            if not tab.run_dual(z, limit=tab.m // 2 + 8):
                return None
            self._record_phase("warm.dual_repair", started, before, tab)
            # z was maintained through every dual pivot: still the exact
            # reduced-cost row of cost2, so phase 2 needs no re-pricing
            started, before = time.perf_counter(), tab.pivots
            z2 = tab.run_primal(cost2, n, z=z)
            self._record_phase("warm.phase2", started, before, tab)
            self.basis_restarts += 1
            self.dual_repairs += 1
            self.last_restarted = True
            return tab, z2
        # neither feasible: restricted phase 1 — each negative row is
        # sign-flipped and given a FRESH artificial from the second
        # region (guaranteed untouched; see _Tableau.__init__)
        artificial_cols: List[int] = []
        for i in range(tab.m):
            row = tab.rows[i]
            if row[-1] < 0:
                for j in range(tab.width):
                    if row[j] != 0:
                        row[j] = -row[j]
                art = n + tab.m + i
                row[art] = ONE
                tab.basis[i] = art
                artificial_cols.append(art)
        cost1 = [ZERO] * tab.width
        for col in artificial_cols:
            cost1[col] = ONE
        started, before = time.perf_counter(), tab.pivots
        z1 = tab.run_primal(cost1, n)
        if -z1[-1] > 0:
            raise InfeasibleError(
                f"{self.lp.name!r} is infeasible "
                f"(restricted phase-1 optimum {-z1[-1]})"
            )
        tab.drive_out_artificials()
        self._record_phase("warm.phase1", started, before, tab)
        started, before = time.perf_counter(), tab.pivots
        z2 = tab.run_primal(cost2, n)
        self._record_phase("warm.phase2", started, before, tab)
        self.basis_restarts += 1
        self.primal_repairs += 1
        self.last_restarted = True
        return tab, z2

    # ------------------------------------------------------------------
    def _decode(self, sf: _StandardForm, tab: _Tableau,
                z2: List[Fraction]) -> LPSolution:
        min_value = -z2[-1] + sf.cost_offset
        u = [ZERO] * sf.num_cols
        for i in range(tab.m):
            if tab.basis[i] < sf.num_cols:
                u[tab.basis[i]] = tab.rows[i][-1]
        values: Dict[Variable, Fraction] = {}
        for var, (cols, offset) in sf.decode.items():
            x = offset
            for col, s in cols:
                x += s * u[col]
            values[var] = x
        objective = -min_value if self.lp.sense == "max" else min_value
        return LPSolution(
            objective=objective,
            values=values,
            backend="exact",
            iterations=tab.iterations,
            pivots=tab.pivots,
        )

    def stats(self) -> Dict[str, int]:
        return {
            "solves": self.solves,
            "basis_restarts": self.basis_restarts,
            "phase1_skips": self.phase1_skips,
            "dual_repairs": self.dual_repairs,
            "primal_repairs": self.primal_repairs,
            "fallbacks": self.fallbacks,
            "last_pivots": self.last_pivots,
            "total_pivots": self.total_pivots,
        }


def solve_exact(lp: LinearProgram,
                max_iterations: int = DEFAULT_MAX_PIVOTS) -> LPSolution:
    """Solve ``lp`` exactly (one cold two-phase solve); raises
    Infeasible/Unbounded errors as needed.  ``max_iterations`` is the
    pivot safety cap (see :class:`SimplexInstance`)."""
    return SimplexInstance(lp, max_pivots=max_iterations).solve()
