"""Exact two-phase simplex over rational numbers.

Why from scratch: the steady-state methodology needs the *rational* optimal
basic solution (section 4.1 derives the period ``T`` as the lcm of the
denominators of the activity variables), and no rational LP solver is
available offline.  This is a dense tableau implementation with Bland's
anti-cycling rule — O(m·n) Fraction operations per pivot, entirely adequate
for the platform-sized LPs of this library (tens to a few hundred variables)
and exact by construction.

Standard-form conversion
------------------------
* ``x`` with lower bound ``lo``: substitute ``x = lo + u`` (``u >= 0``);
  an upper bound adds the row ``u <= hi - lo``.
* ``x`` with only an upper bound: substitute ``x = hi - u``.
* free ``x``: substitute ``x = u - v``.
* ``<=`` rows get a slack, ``>=`` rows a surplus; rows are sign-normalised
  so the rhs is non-negative; artificial variables complete the phase-1
  basis where no slack is usable.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from .model import (
    InfeasibleError,
    LinearProgram,
    LPError,
    LPSolution,
    UnboundedError,
    Variable,
)

ZERO = Fraction(0)
ONE = Fraction(1)


class _StandardForm:
    """min c·u  s.t.  A u = b (b >= 0), u >= 0, plus the decoding recipe."""

    def __init__(self) -> None:
        self.rows: List[Dict[int, Fraction]] = []  # sparse rows
        self.rhs: List[Fraction] = []
        self.cost: Dict[int, Fraction] = {}
        self.cost_offset: Fraction = ZERO
        self.num_cols = 0
        # var -> list of (col, sign); plus constant offset per var
        self.decode: Dict[Variable, Tuple[List[Tuple[int, Fraction]], Fraction]] = {}

    def new_col(self) -> int:
        col = self.num_cols
        self.num_cols += 1
        return col


def _build_standard_form(lp: LinearProgram) -> _StandardForm:
    sf = _StandardForm()
    # 1. substitute variables.
    subs: Dict[Variable, Tuple[List[Tuple[int, Fraction]], Fraction]] = {}
    extra_rows: List[Tuple[Dict[int, Fraction], str, Fraction]] = []
    for var in lp.variables:
        if var.lo is not None:
            u = sf.new_col()
            subs[var] = ([(u, ONE)], var.lo)
            if var.hi is not None:
                extra_rows.append(({u: ONE}, "<=", var.hi - var.lo))
        elif var.hi is not None:
            u = sf.new_col()
            subs[var] = ([(u, Fraction(-1))], var.hi)
        else:
            u = sf.new_col()
            v = sf.new_col()
            subs[var] = ([(u, ONE), (v, Fraction(-1))], ZERO)
    sf.decode = subs

    # 2. objective (always minimise internally).
    assert lp.objective is not None
    sign = Fraction(-1) if lp.sense == "max" else ONE
    sf.cost_offset = sign * lp.objective.constant
    for var, coef in lp.objective.terms.items():
        cols, offset = subs[var]
        sf.cost_offset += sign * coef * offset
        for col, s in cols:
            sf.cost[col] = sf.cost.get(col, ZERO) + sign * coef * s

    # 3. constraint rows.
    all_rows: List[Tuple[Dict[int, Fraction], str, Fraction]] = []
    for cons in lp.constraints:
        terms, sense, rhs = cons.normalized()
        row: Dict[int, Fraction] = {}
        shift = ZERO
        for var, coef in terms.items():
            cols, offset = subs[var]
            shift += coef * offset
            for col, s in cols:
                row[col] = row.get(col, ZERO) + coef * s
        row = {c: v for c, v in row.items() if v != 0}
        all_rows.append((row, sense, rhs - shift))
    all_rows.extend(extra_rows)

    for row, sense, rhs in all_rows:
        if not row:
            # constant constraint: check satisfiability directly.
            ok = (
                (sense == "<=" and ZERO <= rhs)
                or (sense == ">=" and ZERO >= rhs)
                or (sense == "==" and rhs == 0)
            )
            if not ok:
                raise InfeasibleError(
                    f"constant constraint 0 {sense} {rhs} is unsatisfiable"
                )
            continue
        r = dict(row)
        if sense == "<=":
            slack = sf.new_col()
            r[slack] = ONE
        elif sense == ">=":
            slack = sf.new_col()
            r[slack] = Fraction(-1)
        if rhs < 0:
            r = {c: -v for c, v in r.items()}
            rhs = -rhs
        sf.rows.append(r)
        sf.rhs.append(rhs)
    return sf


def solve_exact(lp: LinearProgram, max_iterations: int = 200_000) -> LPSolution:
    """Solve ``lp`` exactly; raises Infeasible/Unbounded errors as needed."""
    sf = _build_standard_form(lp)
    m = len(sf.rows)
    n = sf.num_cols

    # Dense tableau: m rows x (n + m artificials + 1 rhs); artificials are
    # appended so that column j >= n is the artificial of row j - n.
    width = n + m + 1
    tableau: List[List[Fraction]] = []
    basis: List[int] = []
    for i, row in enumerate(sf.rows):
        dense = [ZERO] * width
        for col, val in row.items():
            dense[col] = val
        dense[-1] = sf.rhs[i]
        tableau.append(dense)

    # Choose initial basis: reuse a slack column (+1 coefficient, sole entry
    # in its row among *potential* basis columns) when possible, else an
    # artificial.  Simpler and safe: if the row has a column with coefficient
    # +1 that appears in no other row, use it; otherwise add an artificial.
    col_rows: Dict[int, List[int]] = {}
    for i, row in enumerate(sf.rows):
        for col in row:
            col_rows.setdefault(col, []).append(i)
    artificial_cols: List[int] = []
    for i, row in enumerate(sf.rows):
        chosen = -1
        for col, val in row.items():
            if val == 1 and len(col_rows[col]) == 1 and col not in sf.cost:
                chosen = col
                break
        if chosen >= 0:
            basis.append(chosen)
        else:
            art = n + i
            tableau[i][art] = ONE
            basis.append(art)
            artificial_cols.append(art)

    iterations = 0

    def pivot(row_i: int, col_j: int) -> None:
        piv_row = tableau[row_i]
        piv = piv_row[col_j]
        inv = ONE / piv
        for j in range(width):
            if piv_row[j] != 0:
                piv_row[j] *= inv
        for r in range(m):
            if r == row_i:
                continue
            factor = tableau[r][col_j]
            if factor == 0:
                continue
            target = tableau[r]
            for j in range(width):
                if piv_row[j] != 0:
                    target[j] -= factor * piv_row[j]
        basis[row_i] = col_j

    def run_phase(cost: List[Fraction], allowed_cols: int) -> List[Fraction]:
        """Price out the basis, then pivot to optimality with Bland's rule.

        Returns the final reduced-cost row (length ``width``: the rhs cell
        holds minus the objective value of the phase).
        """
        nonlocal iterations
        z = [ZERO] * width
        for j, c in enumerate(cost):
            z[j] = c
        # price out: z <- z - sum(cost[basis[i]] * row_i)
        for i in range(m):
            cb = cost[basis[i]] if basis[i] < len(cost) else ZERO
            if cb == 0:
                continue
            row = tableau[i]
            for j in range(width):
                if row[j] != 0:
                    z[j] -= cb * row[j]
        while True:
            iterations += 1
            if iterations > max_iterations:
                raise LPError(
                    f"simplex exceeded {max_iterations} iterations "
                    f"(m={m}, n={n})"
                )
            # Bland: entering = smallest-index column with negative reduced
            # cost among allowed columns.
            enter = -1
            for j in range(allowed_cols):
                if z[j] < 0:
                    enter = j
                    break
            if enter < 0:
                return z
            # ratio test; Bland tie-break on smallest basis column index.
            leave = -1
            best: Optional[Fraction] = None
            for i in range(m):
                a = tableau[i][enter]
                if a > 0:
                    ratio = tableau[i][-1] / a
                    if best is None or ratio < best or (
                        ratio == best and basis[i] < basis[leave]
                    ):
                        best = ratio
                        leave = i
            if leave < 0:
                raise UnboundedError(
                    f"objective of {lp.name!r} is unbounded "
                    f"(column {enter} has no positive entries)"
                )
            pivot(leave, enter)
            factor = z[enter]
            piv_row = tableau[leave]
            if factor != 0:
                for j in range(width):
                    if piv_row[j] != 0:
                        z[j] -= factor * piv_row[j]

    # ---------------- phase 1 ----------------
    if artificial_cols:
        cost1 = [ZERO] * width
        for col in artificial_cols:
            cost1[col] = ONE
        z1 = run_phase(cost1, width - 1)
        phase1_value = -z1[-1]
        if phase1_value > 0:
            raise InfeasibleError(
                f"{lp.name!r} is infeasible (phase-1 optimum {phase1_value})"
            )
        # Drive remaining artificials out of the basis where possible.
        for i in range(m):
            if basis[i] >= n:
                row = tableau[i]
                enter = -1
                for j in range(n):
                    if row[j] != 0:
                        enter = j
                        break
                if enter >= 0:
                    pivot(i, enter)
                # else: the row is all-zero over structural columns —
                # a redundant constraint; the artificial stays basic at 0,
                # which is harmless as long as it never re-enters (it cannot:
                # phase 2 restricts entering columns to the structural ones).

    # ---------------- phase 2 ----------------
    cost2 = [ZERO] * width
    for col, c in sf.cost.items():
        cost2[col] = c
    z2 = run_phase(cost2, n)
    # objective value: cost2 . u = -(z2 rhs) ... plus offset
    min_value = -z2[-1] + sf.cost_offset

    # ---------------- decode ----------------
    u = [ZERO] * sf.num_cols
    for i in range(m):
        if basis[i] < sf.num_cols:
            u[basis[i]] = tableau[i][-1]
    values: Dict[Variable, Fraction] = {}
    for var, (cols, offset) in sf.decode.items():
        x = offset
        for col, s in cols:
            x += s * u[col]
        values[var] = x
    objective = -min_value if lp.sense == "max" else min_value
    return LPSolution(
        objective=objective,
        values=values,
        backend="exact",
        iterations=iterations,
    )
