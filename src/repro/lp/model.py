"""A small linear-programming modelling layer.

The steady-state LPs of the paper (SSMS, SSPS, broadcast/multicast bounds,
DAG collections) are assembled with this mini-language and handed to one of
the backends in :mod:`repro.lp.simplex` (exact rational) or
:mod:`repro.lp.scipy_backend` (floating point, HiGHS).

Only what the library needs is implemented: real variables with bounds,
linear expressions with exact :class:`~fractions.Fraction` coefficients,
``<= / >= / ==`` constraints and a linear objective.

Coefficient rebuild (warm re-solve hook)
----------------------------------------
An assembled model can have its numeric coefficients *rewritten in place*
without touching its structure: :meth:`LinearProgram.constraint_by_name`
finds a named constraint, :meth:`LinearProgram.set_constraint_coefficient`
and :meth:`LinearProgram.set_objective_coefficient` replace individual
``coef * var`` terms (a zero coefficient removes the term).  This is the
hook :mod:`repro.service.incremental` uses for warm re-solves: when only
platform weights change, the steady-state LPs keep their exact variable /
constraint structure and only the ``1/w`` and ``1/c`` coefficients move,
so the model is patched and re-solved without re-assembly.  Any change to
the platform *topology* changes the structure itself and requires a fresh
build.

Example
-------
>>> lp = LinearProgram()
>>> x = lp.variable("x", lo=0)
>>> y = lp.variable("y", lo=0)
>>> lp.add_constraint(x + y <= 4)
>>> lp.add_constraint(x + 3 * y <= 6)
>>> lp.maximize(x + 2 * y)
>>> sol = lp.solve()
>>> sol.objective
Fraction(5, 1)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from .._rational import RationalLike, as_fraction

Number = Union[int, float, str, Fraction]


class LPError(Exception):
    """Base class for modelling/solving errors."""


class InfeasibleError(LPError):
    """The LP admits no feasible point."""


class UnboundedError(LPError):
    """The LP objective is unbounded above."""


class Variable:
    """A real decision variable with optional bounds.

    Create through :meth:`LinearProgram.variable`; arithmetic with numbers
    and other variables builds :class:`LinExpr` objects.
    """

    __slots__ = ("name", "index", "lo", "hi")

    def __init__(self, name: str, index: int,
                 lo: Optional[Fraction], hi: Optional[Fraction]) -> None:
        self.name = name
        self.index = index
        self.lo = lo
        self.hi = hi

    # -- expression building ------------------------------------------
    def _expr(self) -> "LinExpr":
        return LinExpr({self: Fraction(1)}, Fraction(0))

    def __add__(self, other):
        return self._expr() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self._expr() - other

    def __rsub__(self, other):
        return (-self._expr()) + other

    def __mul__(self, other: Number) -> "LinExpr":
        return self._expr() * other

    __rmul__ = __mul__

    def __truediv__(self, other: Number) -> "LinExpr":
        return self._expr() / other

    def __neg__(self) -> "LinExpr":
        return self._expr() * -1

    def __le__(self, other) -> "Constraint":
        return self._expr() <= other

    def __ge__(self, other) -> "Constraint":
        return self._expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, (Variable, LinExpr, int, float, str, Fraction)):
            return self._expr() == other
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


class LinExpr:
    """An affine expression ``sum(coef * var) + constant`` over Fractions."""

    __slots__ = ("terms", "constant")

    def __init__(self, terms: Optional[Dict[Variable, Fraction]] = None,
                 constant: RationalLike = 0) -> None:
        self.terms: Dict[Variable, Fraction] = dict(terms or {})
        self.constant = as_fraction(constant)

    @staticmethod
    def _coerce(value) -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Variable):
            return value._expr()
        return LinExpr({}, as_fraction(value))

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.terms), self.constant)

    # -- arithmetic ----------------------------------------------------
    def __add__(self, other) -> "LinExpr":
        other = LinExpr._coerce(other)
        out = self.copy()
        for var, coef in other.terms.items():
            out.terms[var] = out.terms.get(var, Fraction(0)) + coef
            if out.terms[var] == 0:
                del out.terms[var]
        out.constant += other.constant
        return out

    __radd__ = __add__

    def __sub__(self, other) -> "LinExpr":
        return self + (LinExpr._coerce(other) * -1)

    def __rsub__(self, other) -> "LinExpr":
        return LinExpr._coerce(other) + (self * -1)

    def __mul__(self, factor: Number) -> "LinExpr":
        f = as_fraction(factor)
        if f == 0:
            return LinExpr({}, 0)
        return LinExpr({v: c * f for v, c in self.terms.items()},
                       self.constant * f)

    __rmul__ = __mul__

    def __truediv__(self, factor: Number) -> "LinExpr":
        f = as_fraction(factor)
        if f == 0:
            raise ZeroDivisionError("division of LinExpr by zero")
        return self * (Fraction(1) / f)

    def __neg__(self) -> "LinExpr":
        return self * -1

    # -- relations -----------------------------------------------------
    def __le__(self, other) -> "Constraint":
        return Constraint(self - LinExpr._coerce(other), "<=")

    def __ge__(self, other) -> "Constraint":
        return Constraint(self - LinExpr._coerce(other), ">=")

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, (Variable, LinExpr, int, float, str, Fraction)):
            return Constraint(self - LinExpr._coerce(other), "==")
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)

    def value(self, assignment: Mapping[Variable, Fraction]) -> Fraction:
        """Evaluate under a variable assignment (missing vars count as 0)."""
        total = self.constant
        for var, coef in self.terms.items():
            total += coef * assignment.get(var, Fraction(0))
        return total

    def __repr__(self) -> str:
        parts = [f"{coef}*{var.name}" for var, coef in self.terms.items()]
        parts.append(str(self.constant))
        return " + ".join(parts)


def lp_sum(items: Iterable) -> LinExpr:
    """Sum of variables/expressions/numbers (like ``sum`` but LP-aware)."""
    total = LinExpr({}, 0)
    for item in items:
        total = total + item
    return total


@dataclass
class Constraint:
    """``expr (<=|>=|==) 0`` — built by comparing expressions."""

    expr: LinExpr
    sense: str  # "<=", ">=", "=="
    name: str = ""

    def __post_init__(self) -> None:
        if self.sense not in ("<=", ">=", "=="):
            raise LPError(f"bad constraint sense {self.sense!r}")

    def normalized(self) -> Tuple[Dict[Variable, Fraction], str, Fraction]:
        """Return (terms, sense, rhs) with the constant moved to the rhs."""
        return dict(self.expr.terms), self.sense, -self.expr.constant

    def violation(self, assignment: Mapping[Variable, Fraction]) -> Fraction:
        """How far the assignment is from satisfying this constraint (>= 0)."""
        lhs = self.expr.value(assignment)
        if self.sense == "<=":
            return max(Fraction(0), lhs)
        if self.sense == ">=":
            return max(Fraction(0), -lhs)
        return abs(lhs)


@dataclass
class LPSolution:
    """Result of an LP solve.

    ``values`` maps every model variable to an exact Fraction (backends that
    work in floats rationalise their output — see the backend docs for the
    guarantees).  ``objective`` is the objective value at ``values``.
    ``pivots`` counts the simplex pivots the exact backend performed (zero
    for other backends); a warm basis-restart re-solve shows up here as a
    much smaller count than the cold solve it replaces.
    """

    objective: Fraction
    values: Dict[Variable, Fraction]
    backend: str
    iterations: int = 0
    pivots: int = 0

    def __getitem__(self, var: Variable) -> Fraction:
        return self.values.get(var, Fraction(0))

    def value_by_name(self) -> Dict[str, Fraction]:
        return {v.name: x for v, x in self.values.items()}


class LinearProgram:
    """Container for variables, constraints and one linear objective."""

    #: sentinel marking a constraint name used more than once
    _AMBIGUOUS = object()

    def __init__(self, name: str = "lp") -> None:
        self.name = name
        self.variables: List[Variable] = []
        self.constraints: List[Constraint] = []
        self.objective: Optional[LinExpr] = None
        self.sense: str = "max"
        self._names: Dict[str, Variable] = {}
        self._constraint_names: Dict[str, object] = {}

    def variable(
        self,
        name: str,
        lo: Optional[RationalLike] = None,
        hi: Optional[RationalLike] = None,
    ) -> Variable:
        """Create a variable; ``lo``/``hi`` are optional exact bounds."""
        if name in self._names:
            raise LPError(f"duplicate variable name {name!r}")
        lof = None if lo is None else as_fraction(lo)
        hif = None if hi is None else as_fraction(hi)
        if lof is not None and hif is not None and lof > hif:
            raise LPError(f"empty bound interval for {name!r}: [{lof}, {hif}]")
        var = Variable(name, len(self.variables), lof, hif)
        self.variables.append(var)
        self._names[name] = var
        return var

    def get_variable(self, name: str) -> Variable:
        try:
            return self._names[name]
        except KeyError:
            raise LPError(f"unknown variable {name!r}") from None

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        if not isinstance(constraint, Constraint):
            raise LPError(
                "add_constraint expects a Constraint (did a comparison "
                "evaluate to bool? use explicit LinExpr operands)"
            )
        if name:
            constraint.name = name
        if constraint.name:
            if constraint.name in self._constraint_names:
                self._constraint_names[constraint.name] = self._AMBIGUOUS
            else:
                self._constraint_names[constraint.name] = constraint
        self.constraints.append(constraint)
        return constraint

    # ------------------------------------------------------------------
    # coefficient rebuild (warm re-solve hook — see the module docstring)
    # ------------------------------------------------------------------
    def constraint_by_name(self, name: str) -> Constraint:
        """Look up a named constraint (errors on unknown/ambiguous names)."""
        found = self._constraint_names.get(name)
        if found is None:
            raise LPError(f"unknown constraint name {name!r}")
        if found is self._AMBIGUOUS:
            raise LPError(f"constraint name {name!r} is not unique")
        return found  # type: ignore[return-value]

    def set_constraint_coefficient(
        self, name: str, var: Variable, coef: RationalLike
    ) -> None:
        """Replace the coefficient of ``var`` in the named constraint.

        A zero coefficient removes the term.  Only coefficients move; the
        constraint's sense and membership are untouched.
        """
        cons = self.constraint_by_name(name)
        cf = as_fraction(coef)
        if cf == 0:
            cons.expr.terms.pop(var, None)
        else:
            cons.expr.terms[var] = cf

    def set_objective_coefficient(self, var: Variable, coef: RationalLike) -> None:
        """Replace the coefficient of ``var`` in the objective."""
        if self.objective is None:
            raise LPError("no objective set")
        cf = as_fraction(coef)
        if cf == 0:
            self.objective.terms.pop(var, None)
        else:
            self.objective.terms[var] = cf

    def maximize(self, expr) -> None:
        self.objective = LinExpr._coerce(expr)
        self.sense = "max"

    def minimize(self, expr) -> None:
        self.objective = LinExpr._coerce(expr)
        self.sense = "min"

    # ------------------------------------------------------------------
    def solve(self, backend: str = "exact", **kwargs) -> LPSolution:
        """Solve with the chosen backend (``"exact"`` or ``"scipy"``).

        The exact backend returns the true rational optimum (required for
        period extraction); the scipy backend is faster on large models and
        is used for cross-checking and big sweeps.
        """
        if self.objective is None:
            raise LPError("no objective set")
        if backend == "exact":
            from .simplex import solve_exact

            return solve_exact(self, **kwargs)
        if backend == "scipy":
            from .scipy_backend import solve_scipy

            return solve_scipy(self, **kwargs)
        raise LPError(f"unknown backend {backend!r}")

    def check(self, solution: LPSolution, tol: Fraction = Fraction(0)) -> None:
        """Assert that ``solution`` satisfies all constraints and bounds.

        With the exact backend ``tol`` should stay 0; for float backends a
        small tolerance is appropriate.  Raises :class:`LPError` on failure.
        """
        for var in self.variables:
            x = solution[var]
            if var.lo is not None and x < var.lo - tol:
                raise LPError(f"{var.name} = {x} below lower bound {var.lo}")
            if var.hi is not None and x > var.hi + tol:
                raise LPError(f"{var.name} = {x} above upper bound {var.hi}")
        for i, cons in enumerate(self.constraints):
            v = cons.violation(solution.values)
            if v > tol:
                label = cons.name or f"#{i}"
                raise LPError(f"constraint {label} violated by {v}")

    def stats(self) -> Dict[str, int]:
        return {
            "variables": len(self.variables),
            "constraints": len(self.constraints),
        }

    def __repr__(self) -> str:
        return (
            f"LinearProgram({self.name!r}, vars={len(self.variables)}, "
            f"cons={len(self.constraints)})"
        )
