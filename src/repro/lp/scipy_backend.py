"""Floating-point LP backend on top of :func:`scipy.optimize.linprog` (HiGHS).

Used for (a) cross-checking the exact simplex on every LP family in the
test-suite and (b) large parameter sweeps in benchmarks where exactness is
not needed.  Outputs are rationalised (``limit_denominator``) so the calling
code sees the same Fraction-based interface; callers that feed a solution
into schedule reconstruction should use the exact backend, as documented in
:meth:`repro.lp.model.LinearProgram.solve`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List

import numpy as np
from scipy.optimize import linprog

from .model import (
    InfeasibleError,
    LinearProgram,
    LPError,
    LPSolution,
    UnboundedError,
    Variable,
)


def solve_scipy(
    lp: LinearProgram,
    rationalize: int = 10**9,
) -> LPSolution:
    """Solve with HiGHS; rationalise outputs with ``limit_denominator``."""
    assert lp.objective is not None
    nvars = len(lp.variables)
    col_of: Dict[Variable, int] = {v: i for i, v in enumerate(lp.variables)}

    sign = -1.0 if lp.sense == "max" else 1.0
    c = np.zeros(nvars)
    for var, coef in lp.objective.terms.items():
        c[col_of[var]] = sign * float(coef)

    a_ub: List[np.ndarray] = []
    b_ub: List[float] = []
    a_eq: List[np.ndarray] = []
    b_eq: List[float] = []
    for cons in lp.constraints:
        terms, sense, rhs = cons.normalized()
        row = np.zeros(nvars)
        for var, coef in terms.items():
            row[col_of[var]] = float(coef)
        if sense == "<=":
            a_ub.append(row)
            b_ub.append(float(rhs))
        elif sense == ">=":
            a_ub.append(-row)
            b_ub.append(-float(rhs))
        else:
            a_eq.append(row)
            b_eq.append(float(rhs))

    bounds = []
    for var in lp.variables:
        lo = None if var.lo is None else float(var.lo)
        hi = None if var.hi is None else float(var.hi)
        bounds.append((lo, hi))

    res = linprog(
        c,
        A_ub=np.array(a_ub) if a_ub else None,
        b_ub=np.array(b_ub) if b_ub else None,
        A_eq=np.array(a_eq) if a_eq else None,
        b_eq=np.array(b_eq) if b_eq else None,
        bounds=bounds,
        method="highs",
    )
    if res.status == 2:
        raise InfeasibleError(f"{lp.name!r} infeasible (HiGHS)")
    if res.status == 3:
        raise UnboundedError(f"{lp.name!r} unbounded (HiGHS)")
    if not res.success:
        raise LPError(f"HiGHS failed on {lp.name!r}: {res.message}")

    values: Dict[Variable, Fraction] = {}
    for var in lp.variables:
        x = float(res.x[col_of[var]])
        frac = Fraction(x).limit_denominator(rationalize)
        # Clamp tiny negatives produced by float noise to the bound.
        if var.lo is not None and frac < var.lo:
            frac = var.lo
        if var.hi is not None and frac > var.hi:
            frac = var.hi
        values[var] = frac

    objective_float = sign * float(res.fun)
    objective = Fraction(objective_float).limit_denominator(rationalize)
    return LPSolution(
        objective=objective,
        values=values,
        backend="scipy",
        iterations=int(res.nit) if hasattr(res, "nit") else 0,
    )
