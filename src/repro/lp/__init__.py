"""Linear-programming substrate: modelling layer + exact and float backends.

The exact backend (:mod:`repro.lp.simplex`) produces rational optima, which
the paper's period construction requires; the scipy backend
(:mod:`repro.lp.scipy_backend`) provides fast cross-checks.
"""

from .factor import BasisFactor, SingularBasisError, SparseLU
from .model import (
    Constraint,
    InfeasibleError,
    LinearProgram,
    LinExpr,
    LPError,
    LPSolution,
    UnboundedError,
    Variable,
    lp_sum,
)
from .simplex import DEFAULT_ENGINE, SimplexInstance, solve_exact
from .scipy_backend import solve_scipy

__all__ = [
    "BasisFactor",
    "DEFAULT_ENGINE",
    "SimplexInstance",
    "SingularBasisError",
    "SparseLU",
    "Constraint",
    "InfeasibleError",
    "LinearProgram",
    "LinExpr",
    "LPError",
    "LPSolution",
    "UnboundedError",
    "Variable",
    "lp_sum",
    "solve_exact",
    "solve_scipy",
]
