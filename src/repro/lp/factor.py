"""Exact sparse LU factorisation of a simplex basis, with eta-file updates.

This module is the linear-algebra core of the revised simplex in
:mod:`repro.lp.simplex`.  It answers exactly two questions about the
current basis matrix ``B`` (an ``m x m`` selection of standard-form
columns), both over exact :class:`~fractions.Fraction` arithmetic:

* **FTRAN** — solve ``B x = a`` (the update direction of an entering
  column, and the basic solution ``x_B = B^{-1} b``);
* **BTRAN** — solve ``y^T B = c`` (the simplex multipliers used to price
  reduced costs).

:class:`SparseLU` performs one Gaussian elimination of ``B`` with
**Markowitz pivot selection**: at each step the pivot ``(i, j)``
minimising ``(r_i - 1) * (c_j - 1)`` (row nonzeros times column
nonzeros) among the sparsest candidate columns, so fill-in stays small
on the near-triangular bases the steady-state LPs produce.  Exact
arithmetic means *any* nonzero pivot is numerically perfect — the
ordering is purely a fill-in (and therefore speed) decision, never a
stability one.

:class:`BasisFactor` wraps one :class:`SparseLU` with a **product-form
eta file**: each simplex pivot appends one eta vector (the FTRAN'd
entering column and its pivot slot) instead of re-eliminating anything,
so a pivot costs O(nnz) where the dense tableau paid O(m*n).  FTRAN
applies the etas forward after the LU solves; BTRAN applies them in
reverse before.  The simplex layer refactorises (a fresh
:class:`SparseLU` of the current basis) when the eta file grows past its
length or fill thresholds — see ``_RevisedCore.maybe_refactor``.

No floats anywhere: this file is on the ``repro lint`` exactness
allowlist and must stay coercion-free.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

ZERO = Fraction(0)
ONE = Fraction(1)

#: A sparse column: ``{row: value}`` with no explicit zeros.
SparseColumn = Dict[int, Fraction]


class SingularBasisError(Exception):
    """The proposed basis columns are linearly dependent.

    Raised only by :meth:`BasisFactor.refactor` when a basis that *must*
    be nonsingular (it was reached by valid pivots) fails to factor —
    which would be a bug, not an input condition.  Callers testing a
    *candidate* basis (warm restarts) use :meth:`SparseLU.factor`, which
    returns ``None`` instead of raising.
    """


class SparseLU:
    """One Markowitz-ordered sparse LU of an ``m x m`` basis matrix.

    Construction is through :meth:`factor`, which returns ``None`` for a
    singular matrix.  The factorisation is stored as the elimination
    sequence itself:

    * ``_perm[k] = (p_k, q_k, piv_k)`` — the pivot row, pivot column
      (basis *slot*) and pivot value of elimination step ``k``;
    * ``_lops[k]`` — the multipliers ``(row, mult)`` that eliminated the
      sub-diagonal of step ``k`` (unit lower-triangular L);
    * ``_urows[k]`` — the pivot row's surviving entries ``(slot, value)``
      over columns eliminated *later* (strict upper-triangular U).

    ``nnz`` (L + U + diagonal) over ``basis_nnz`` (the input columns) is
    the fill ratio the service metrics report.
    """

    __slots__ = ("m", "_perm", "_lops", "_urows", "_rowpos",
                 "nnz", "basis_nnz")

    def __init__(self, m: int) -> None:
        self.m = m
        self._perm: List[Tuple[int, int, Fraction]] = []
        self._lops: List[List[Tuple[int, Fraction]]] = []
        self._urows: List[List[Tuple[int, Fraction]]] = []
        self._rowpos: List[int] = []
        self.nnz = 0
        self.basis_nnz = 0

    # ------------------------------------------------------------------
    @classmethod
    def factor(cls, m: int,
               columns: List[SparseColumn]) -> Optional["SparseLU"]:
        """Factor the matrix whose ``j``-th column is ``columns[j]``.

        Returns ``None`` when the columns are singular (structurally —
        an empty active column — or numerically, which with exact
        arithmetic means genuinely dependent columns).
        """
        if len(columns) != m:
            return None
        self = cls(m)
        self.basis_nnz = sum(len(col) for col in columns)
        # Active submatrix, mirrored row-wise and column-wise so both the
        # Markowitz scan and the elimination updates stay O(touched).
        colmap: List[SparseColumn] = [dict(col) for col in columns]
        rowmap: List[Dict[int, Fraction]] = [dict() for _ in range(m)]
        for j, col in enumerate(colmap):
            if not col:
                return None
            for i, v in col.items():
                if v == 0:
                    return None  # explicit zeros are a caller bug
                rowmap[i][j] = v
        # Column-nnz buckets drive the candidate scan: examining columns
        # sparsest-first lets the search stop as soon as no later bucket
        # can beat the best Markowitz cost found so far.
        buckets: Dict[int, set] = {}
        for j in range(m):
            buckets.setdefault(len(colmap[j]), set()).add(j)

        def move_bucket(j: int, old: int, new: int) -> None:
            buckets[old].discard(j)
            if new:
                buckets.setdefault(new, set()).add(j)

        for _step in range(m):
            pi, pj = self._select_pivot(colmap, rowmap, buckets)
            if pj < 0:
                return None
            piv = colmap[pj][pi]
            # Pivot row entries over still-active columns (minus pivot).
            urow = [(j, v) for j, v in rowmap[pi].items() if j != pj]
            lops: List[Tuple[int, Fraction]] = []
            for i, below in list(colmap[pj].items()):
                if i == pi:
                    continue
                mult = below / piv
                lops.append((i, mult))
                target = rowmap[i]
                del target[pj]
                for j, v in urow:
                    old_len = len(colmap[j])
                    cur = target.get(j)
                    if cur is None:
                        nv = -mult * v
                        target[j] = nv
                        colmap[j][i] = nv
                        move_bucket(j, old_len, old_len + 1)
                    else:
                        nv = cur - mult * v
                        if nv == 0:
                            del target[j]
                            del colmap[j][i]
                            move_bucket(j, old_len, old_len - 1)
                        else:
                            target[j] = nv
                            colmap[j][i] = nv
            # Retire the pivot row and column from the active submatrix.
            for j, _v in urow:
                old_len = len(colmap[j])
                del colmap[j][pi]
                move_bucket(j, old_len, old_len - 1)
            move_bucket(pj, len(colmap[pj]), 0)
            colmap[pj].clear()
            rowmap[pi].clear()
            self._perm.append((pi, pj, piv))
            self._lops.append(lops)
            self._urows.append(urow)
            self.nnz += len(lops) + len(urow) + 1
        self._rowpos = [0] * m
        for k, (p_k, _q, _piv) in enumerate(self._perm):
            self._rowpos[p_k] = k
        return self

    @staticmethod
    def _select_pivot(colmap: List[SparseColumn],
                      rowmap: List[Dict[int, Fraction]],
                      buckets: Dict[int, set]) -> Tuple[int, int]:
        """Markowitz selection: minimise ``(row_nnz-1)*(col_nnz-1)``.

        Scans column buckets sparsest-first; a bucket of column-nnz
        ``c`` cannot yield a cost below ``c - 1`` (every active row has
        nnz >= 1), so the scan stops once the best found cost is that
        low.  Returns ``(-1, -1)`` when no active entry exists.
        """
        best_cost = -1
        best = (-1, -1)
        for c in sorted(k for k, b in buckets.items() if k and b):
            if best_cost >= 0 and best_cost <= c - 1:
                break
            for j in buckets[c]:
                for i in colmap[j]:
                    cost = (len(rowmap[i]) - 1) * (c - 1)
                    if best_cost < 0 or cost < best_cost:
                        best_cost = cost
                        best = (i, j)
                        if cost == 0:
                            return best
        return best

    # ------------------------------------------------------------------
    def ftran(self, rhs: List[Fraction]) -> List[Fraction]:
        """Solve ``B x = rhs``; ``x`` is indexed by basis *slot*."""
        work = list(rhs)
        for k, (p_k, _q, _piv) in enumerate(self._perm):
            val = work[p_k]
            if val != 0:
                for i, mult in self._lops[k]:
                    work[i] -= mult * val
        x = [ZERO] * self.m
        for k in range(self.m - 1, -1, -1):
            p_k, q_k, piv = self._perm[k]
            acc = work[p_k]
            for j, v in self._urows[k]:
                xj = x[j]
                if xj != 0:
                    acc -= v * xj
            if acc != 0:
                x[q_k] = acc / piv
        return x

    def btran(self, cost: List[Fraction]) -> List[Fraction]:
        """Solve ``y^T B = cost`` (``cost`` indexed by basis slot)."""
        m = self.m
        v = [ZERO] * m
        contrib = [ZERO] * m  # scattered U^T partial sums, by slot
        for k, (_p, q_k, piv) in enumerate(self._perm):
            acc = cost[q_k]
            ck = contrib[q_k]
            if ck != 0:
                acc = acc - ck
            if acc != 0:
                vk = acc / piv
                v[k] = vk
                for j, u in self._urows[k]:
                    contrib[j] += u * vk
        y = [ZERO] * m
        for k in range(m - 1, -1, -1):
            acc = v[k]
            for i, mult in self._lops[k]:
                yi = y[i]
                if yi != 0:
                    acc -= mult * yi
            y[self._perm[k][0]] = acc
        return y


class BasisFactor:
    """A basis representation ``B = B0 * E1 * ... * Ek``: one
    :class:`SparseLU` of ``B0`` plus the product-form eta file.

    Each :meth:`push_eta` records a simplex pivot: the entering column's
    FTRAN'd direction ``w`` and the basis slot ``r`` it replaced.  The
    file is applied forward after the LU solves in :meth:`ftran` and in
    reverse before them in :meth:`btran` — the textbook product-form
    update, exact because every operation is a Fraction operation.

    ``ftran_ops`` / ``btran_ops`` count solver calls (the revised
    simplex's unit of linear-algebra work); ``eta_nnz`` tracks the
    file's total fill for the refactorisation trigger.
    """

    __slots__ = ("lu", "etas", "eta_nnz", "ftran_ops", "btran_ops")

    def __init__(self, lu: SparseLU) -> None:
        self.lu = lu
        # eta = (slot, pivot value, [(other slot, value), ...])
        self.etas: List[Tuple[int, Fraction, List[Tuple[int, Fraction]]]] = []
        self.eta_nnz = 0
        self.ftran_ops = 0
        self.btran_ops = 0

    @property
    def eta_len(self) -> int:
        return len(self.etas)

    def push_eta(self, slot: int, direction: List[Fraction]) -> None:
        """Record a pivot: ``direction`` is the entering column's FTRAN
        image (``B^{-1} a_q``), ``slot`` the basis position it enters."""
        piv = direction[slot]
        if piv == 0:
            raise SingularBasisError(
                f"eta pivot at slot {slot} is zero — the exchange would "
                f"make the basis singular"
            )
        rest = [(i, v) for i, v in enumerate(direction)
                if v != 0 and i != slot]
        self.etas.append((slot, piv, rest))
        self.eta_nnz += len(rest) + 1

    # ------------------------------------------------------------------
    def ftran(self, rhs: List[Fraction]) -> List[Fraction]:
        """Solve ``B x = rhs`` through the LU and the eta file."""
        self.ftran_ops += 1
        x = self.lu.ftran(rhs)
        for slot, piv, rest in self.etas:
            xr = x[slot]
            if xr == 0:
                continue
            xr = xr / piv
            x[slot] = xr
            for i, v in rest:
                x[i] -= v * xr
        return x

    def btran(self, cost: List[Fraction]) -> List[Fraction]:
        """Solve ``y^T B = cost`` through the eta file and the LU."""
        self.btran_ops += 1
        v = list(cost)
        for slot, piv, rest in reversed(self.etas):
            acc = v[slot]
            for i, w in rest:
                vi = v[i]
                if vi != 0:
                    acc -= vi * w
            v[slot] = acc / piv
        return self.lu.btran(v)
