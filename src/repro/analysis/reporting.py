"""Plain-text tables and figure-style reports for benchmarks and examples.

Benchmarks print the same rows/series the paper's figures show; this keeps
rendering in one place so outputs stay uniform and diff-able.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .._rational import format_fraction


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width table; Fractions rendered exactly, floats to 4 digits."""

    def fmt(cell: object) -> str:
        if isinstance(cell, Fraction):
            return format_fraction(cell)
        if isinstance(cell, float):
            return f"{cell:.4f}"
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[k]) for k, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[k]) for k, cell in enumerate(row)))
    return "\n".join(lines)


def render_edge_flows(
    flows: Mapping[Tuple[str, str], Fraction], title: str = ""
) -> str:
    """Figure-3-style per-edge annotation list."""
    lines = [title] if title else []
    for (u, v), rate in sorted(flows.items()):
        lines.append(f"  {u} -> {v}: {format_fraction(rate)}")
    return "\n".join(lines)


def render_series(
    series: Sequence[Tuple[object, object]],
    x_label: str,
    y_label: str,
    title: str = "",
) -> str:
    """Two-column series with a crude ASCII spark column."""
    vals = [float(y) for _, y in series]
    lo = min(vals) if vals else 0.0
    hi = max(vals) if vals else 1.0
    span = (hi - lo) or 1.0
    lines = [title] if title else []
    lines.append(f"{x_label:>12}  {y_label:>14}")
    for (x, y), fy in zip(series, vals):
        bar = "#" * (1 + int(30 * (fy - lo) / span))
        xs = format_fraction(x) if isinstance(x, Fraction) else str(x)
        ys = format_fraction(y) if isinstance(y, Fraction) else f"{float(y):.4f}"
        lines.append(f"{xs:>12}  {ys:>14}  {bar}")
    return "\n".join(lines)
