"""Bounds, asymptotics and paper-style reporting helpers."""

from .bounds import (
    deficit_is_constant,
    efficiency_series,
    fit_sqrt_constant,
    is_nonincreasing,
    steady_state_upper_bound,
)
from .certificates import (
    SSMSCertificate,
    build_ssms_dual,
    ssms_certificate,
)
from .reporting import render_edge_flows, render_series, render_table

__all__ = [
    "deficit_is_constant",
    "efficiency_series",
    "fit_sqrt_constant",
    "is_nonincreasing",
    "steady_state_upper_bound",
    "render_edge_flows",
    "render_series",
    "render_table",
    "SSMSCertificate",
    "build_ssms_dual",
    "ssms_certificate",
]
