"""Bounds and asymptotics used across tests and benchmarks (§4.2).

The paper's strongest claim: the number of tasks processed within ``K``
time-units by the reconstructed schedule is *optimal up to a constant that
does not depend on K*.  These helpers turn that into checkable numbers.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, List, Sequence, Tuple

from ..simulator.periodic_runner import PeriodicRunResult


def steady_state_upper_bound(throughput: Fraction, horizon: Fraction) -> Fraction:
    """No schedule processes more than ``throughput * horizon`` tasks.

    Valid because any schedule's long-run activity averages satisfy the
    steady-state LP constraints (section 3.1: "any periodic schedule obeys
    the equations of the linear program"; arbitrary schedules obey them on
    average over the horizon, up to in-flight work).
    """
    return throughput * horizon


def deficit_is_constant(results: Sequence[PeriodicRunResult]) -> bool:
    """True when runs of increasing horizon share one deficit constant."""
    deficits = {r.deficit for r in results}
    return len(deficits) == 1


def efficiency_series(
    results: Sequence[PeriodicRunResult],
) -> List[Tuple[int, Fraction]]:
    """``(periods, achieved/bound)`` — must approach 1 from below."""
    out = []
    for r in results:
        if r.steady_state_bound == 0:
            out.append((r.periods, Fraction(0)))
        else:
            out.append((r.periods, r.total_completed / r.steady_state_bound))
    return out


def fit_sqrt_constant(
    ratios: Sequence[Tuple[int, Fraction]]
) -> float:
    """Smallest ``C`` with ``ratio(n) <= 1 + C / sqrt(n)`` on the data.

    Section 5.2 promises such a constant exists; benchmarks verify the fit
    does not blow up as ``n`` grows.
    """
    best = 0.0
    for n, ratio in ratios:
        if n <= 0:
            continue
        excess = float(ratio) - 1.0
        if excess > 0:
            best = max(best, excess * math.sqrt(n))
    return best


def is_nonincreasing(values: Iterable[Fraction], slack: Fraction = Fraction(0)) -> bool:
    """Monotonicity check with optional additive slack."""
    prev = None
    for v in values:
        if prev is not None and v > prev + slack:
            return False
        prev = v
    return True
