"""LP-duality optimality certificates for steady-state throughput.

The paper leans on the LP optimum being an *upper bound* ("the previous
number is an upper bound of what can be achieved in steady-state mode").
Duality turns that into a checkable certificate: a feasible dual solution
whose value equals a schedule's throughput **proves** no schedule can do
better — port prices and conservation potentials form the proof object.

The dual of SSMS(G) (section 3.1's primal) reads:

    minimise   sum_i mu_i + sum_i sigma_i + sum_i rho_i + sum_ij tau_ij
    subject to
      alpha_i (i != m):  mu_i - pi_i / w_i            >= 1 / w_i
      alpha_m:           mu_m                          >= 1 / w_m
      s_ij (j != m):     sigma_i + rho_j + tau_ij
                         + (pi_j - pi_i) / c_ij        >= 0   (pi_m := 0)

(the transfer delivers value at ``j`` and withdraws it at ``i``, hence the
sign: a task's potential may only rise along an edge by at most the port,
link and card prices paid for the transfer)
      mu, sigma, rho, tau >= 0;  pi free

where ``sigma_i``/``rho_j`` price the send/receive ports, ``mu_i`` the
CPU saturation, ``tau_ij`` the per-link capacity and ``pi_i`` the marginal
value of one task file delivered at ``P_i``.  Strong duality makes the
optimal dual value equal ``ntask(G)``; :func:`ssms_certificate` builds and
solves this dual with the same exact solver and verifies the equality,
yielding a machine-checked optimality proof.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional

from ..lp import LinearProgram, lp_sum
from ..platform.graph import Edge, NodeId, Platform


@dataclass
class SSMSCertificate:
    """A verified primal/dual pair for master-slave steady state."""

    platform: Platform
    master: NodeId
    primal_value: Fraction          # ntask(G)
    dual_value: Fraction            # the certificate's bound
    #: port prices and task potentials (dual variables)
    send_price: Dict[NodeId, Fraction]
    recv_price: Dict[NodeId, Fraction]
    cpu_price: Dict[NodeId, Fraction]
    link_price: Dict[Edge, Fraction]
    potential: Dict[NodeId, Fraction]

    @property
    def optimal(self) -> bool:
        """Strong duality: the bound is tight."""
        return self.primal_value == self.dual_value

    def verify_dual_feasibility(self) -> None:
        """Re-check every dual constraint by hand; raise on violation."""
        g = self.platform
        m = self.master
        pi = dict(self.potential)
        pi[m] = Fraction(0)
        for node in g.nodes():
            spec = g.node(node)
            if not spec.can_compute:
                continue
            lhs = self.cpu_price.get(node, Fraction(0))
            if node != m:
                lhs -= pi[node] / spec.w
            if lhs < Fraction(1) / spec.w:
                raise AssertionError(
                    f"dual CPU constraint violated at {node}: "
                    f"{lhs} < {Fraction(1) / spec.w}"
                )
        for spec in g.edges():
            i, j = spec.src, spec.dst
            if j == m:
                continue  # s_jm pinned to zero in the primal
            lhs = (
                self.send_price.get(i, Fraction(0))
                + self.recv_price.get(j, Fraction(0))
                + self.link_price.get((i, j), Fraction(0))
                + (pi[j] - pi[i]) / spec.c
            )
            if lhs < 0:
                raise AssertionError(
                    f"dual edge constraint violated on {i}->{j}: {lhs} < 0"
                )

    def bound_statement(self) -> str:
        return (
            f"certificate: no steady-state schedule on "
            f"{self.platform.name!r} with master {self.master!r} exceeds "
            f"{self.dual_value} tasks per time-unit "
            f"(tight: {self.optimal})"
        )


def build_ssms_dual(
    platform: Platform, master: NodeId
) -> LinearProgram:
    """Assemble the explicit dual LP described in the module docstring."""
    platform.node(master)
    lp = LinearProgram(f"SSMS-dual({platform.name})")
    mu: Dict[NodeId, object] = {}
    sigma: Dict[NodeId, object] = {}
    rho: Dict[NodeId, object] = {}
    tau: Dict[Edge, object] = {}
    pi: Dict[NodeId, object] = {}
    for node in platform.nodes():
        if platform.node(node).can_compute:
            mu[node] = lp.variable(f"mu[{node}]", lo=0)
        sigma[node] = lp.variable(f"sigma[{node}]", lo=0)
        rho[node] = lp.variable(f"rho[{node}]", lo=0)
        if node != master:
            pi[node] = lp.variable(f"pi[{node}]")  # free
    for spec in platform.edges():
        tau[(spec.src, spec.dst)] = lp.variable(
            f"tau[{spec.src}->{spec.dst}]", lo=0
        )

    def pot(node: NodeId):
        return pi[node] if node != master else None

    for node in platform.nodes():
        spec = platform.node(node)
        if not spec.can_compute:
            continue
        inv_w = Fraction(1) / spec.w
        if node == master:
            lp.add_constraint(mu[node] * 1 >= inv_w, name=f"cpu[{node}]")
        else:
            lp.add_constraint(
                mu[node] - pi[node] * inv_w >= inv_w, name=f"cpu[{node}]"
            )
    for spec in platform.edges():
        i, j = spec.src, spec.dst
        if j == master:
            continue
        expr = sigma[i] + rho[j] + tau[(i, j)]
        inv_c = Fraction(1) / spec.c
        expr = expr + pi[j] * inv_c
        if i != master:
            expr = expr - pi[i] * inv_c
        lp.add_constraint(expr >= 0, name=f"edge[{i}->{j}]")

    lp.minimize(
        lp_sum(list(mu.values()))
        + lp_sum(list(sigma.values()))
        + lp_sum(list(rho.values()))
        + lp_sum(list(tau.values()))
    )
    return lp


def ssms_certificate(
    platform: Platform, master: NodeId, backend: str = "exact"
) -> SSMSCertificate:
    """Solve primal and dual; return the verified certificate.

    With the exact backend the certificate satisfies strong duality
    *exactly* and its feasibility is re-derived from first principles.
    """
    from ..core.master_slave import solve_master_slave

    primal = solve_master_slave(platform, master, backend=backend)
    dual_lp = build_ssms_dual(platform, master)
    dual = dual_lp.solve(backend=backend)

    def collect(prefix: str) -> Dict:
        out = {}
        for var, value in dual.values.items():
            if var.name.startswith(prefix + "["):
                key = var.name[len(prefix) + 1:-1]
                if "->" in key:
                    a, b = key.split("->")
                    out[(a, b)] = value
                else:
                    out[key] = value
        return out

    cert = SSMSCertificate(
        platform=platform,
        master=master,
        primal_value=primal.throughput,
        dual_value=dual.objective,
        send_price=collect("sigma"),
        recv_price=collect("rho"),
        cpu_price=collect("mu"),
        link_price=collect("tau"),
        potential=collect("pi"),
    )
    if backend == "exact":
        cert.verify_dual_feasibility()
    return cert
