"""LRU + TTL cache for steady-state solutions and reconstructed schedules.

One entry per request fingerprint (see :mod:`repro.service.fingerprint`),
holding the solver's result and — lazily, once somebody asks for it — the
reconstructed :class:`~repro.schedule.periodic.PeriodicSchedule`.  The
cache is thread-safe: the broker's worker pool and the API front-end hit
it concurrently.

Eviction happens on three paths, each with its own counter:

* **LRU** — beyond ``max_size`` entries, the least recently *used* goes;
* **TTL** — entries older than ``ttl`` (seconds) are dropped on access
  ("expirations") — pass ``ttl=None`` to disable;
* **invalidation** — :meth:`SolutionCache.invalidate_platform` removes
  every entry computed against a platform with the given structural
  signature; call it after mutating a platform the service solved for.

Invalidation also bumps a monotonically increasing **generation**
counter.  A solve that was already in flight when ``invalidate_platform``
(or ``clear``) ran computed its solution against the *pre-invalidation*
platform; if its ``put`` landed afterwards it would silently reinstate
the stale solution.  Callers therefore capture
:attr:`SolutionCache.generation` when the solve *starts* and pass it back
to :meth:`SolutionCache.put`, which rejects the write (counted in
``stale_puts``) when an invalidation happened in between.

The clock is injectable for deterministic TTL tests.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..platform.graph import Platform
from .fingerprint import Signature, topology_signature


@dataclass
class CacheStats:
    """Monotonic counters; ``hit_rate`` is derived."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0
    stale_puts: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
            "stale_puts": self.stale_puts,
            "hit_rate": self.hit_rate,
        }


class HeatSketch:
    """Bounded per-key frequency sketch (*space-saving* top-K).

    Counts lookups per fingerprint in O(``capacity``) memory: a tracked
    key increments exactly; an untracked key, once the sketch is full,
    **replaces the coldest tracked key** and inherits its count plus one
    (the classic space-saving over-estimate, so a genuinely hot key can
    never be missed — estimates only ever err high, by at most the
    evicted minimum).  The hot head of a skewed distribution therefore
    stabilises in the sketch after one pass, which is what the
    replication and near-cache layers key off.

    The coldest key is found through a lazily rebuilt min-heap: stale
    heap entries (whose count moved since they were pushed) are popped
    and re-pushed on demand, giving amortised ``O(log K)`` evictions
    instead of an ``O(K)`` scan per cold-tail request.

    Thread-safe; every public method takes the internal lock.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}  # guarded-by: _lock
        # (count-at-push, key) pairs; may lag _counts (lazily repaired)
        self._heap: List[Tuple[int, str]] = []  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._counts)

    def record(self, key: str) -> int:
        """Count one lookup; returns the key's (estimated) total."""
        with self._lock:
            count = self._counts.get(key)
            if count is not None:
                count += 1
                self._counts[key] = count
                heapq.heappush(self._heap, (count, key))
                if len(self._heap) > 4 * self.capacity:
                    self._compact()
                return count
            if len(self._counts) < self.capacity:
                self._counts[key] = 1
                heapq.heappush(self._heap, (1, key))
                return 1
            floor = self._evict_min()
            count = floor + 1
            self._counts[key] = count
            heapq.heappush(self._heap, (count, key))
            self.evictions += 1
            return count

    def _evict_min(self) -> int:  # caller-holds: _lock
        """Drop the coldest tracked key; returns its count (the
        space-saving error floor inherited by the replacement)."""
        while True:
            count, key = heapq.heappop(self._heap)
            current = self._counts.get(key)
            if current == count:
                del self._counts[key]
                return count
            if current is not None:
                # stale entry: the key was bumped since this push; its
                # fresher pair is (or will be) elsewhere in the heap
                continue

    def _compact(self) -> None:  # caller-holds: _lock
        """Rebuild the heap from live counts (bounds stale growth)."""
        self._heap = [(count, key) for key, count in self._counts.items()]
        heapq.heapify(self._heap)

    def count(self, key: str) -> int:
        """Estimated lookups for a key (0 when untracked)."""
        with self._lock:
            return self._counts.get(key, 0)

    def hot_keys(self, top: Optional[int] = None,
                 min_count: int = 1) -> List[Tuple[str, int]]:
        """Tracked keys with at least ``min_count`` lookups, hottest
        first, at most ``top`` of them (all when ``None``)."""
        with self._lock:
            ranked = sorted(
                ((key, count) for key, count in self._counts.items()
                 if count >= min_count),
                key=lambda pair: (-pair[1], pair[0]),
            )
        return ranked[:top] if top is not None else ranked

    def clear(self) -> None:
        with self._lock:
            self._counts.clear()
            self._heap.clear()

    def snapshot(self, top: int = 10) -> Dict[str, Any]:
        """JSON-safe view: config, occupancy and the current hot head."""
        with self._lock:
            tracked = len(self._counts)
            evictions = self.evictions
        return {
            "capacity": self.capacity,
            "tracked": tracked,
            "evictions": evictions,
            "hot_keys": [
                {"fingerprint": key, "count": count}
                for key, count in self.hot_keys(top=top)
            ],
        }


@dataclass
class CacheEntry:
    """A cached solve: the solution, plus the schedule once reconstructed.

    ``topology_sig`` (weights erased) is what :meth:`SolutionCache.
    invalidate_platform` matches on; the full weighted signature is already
    folded into ``key`` by the fingerprint, so it is not stored again.
    """

    key: str
    topology_sig: Signature
    solution: Any
    schedule: Any = None
    created_at: float = 0.0
    hits: int = 0


class SolutionCache:
    """Thread-safe LRU + TTL mapping ``fingerprint -> CacheEntry``.

    Parameters
    ----------
    max_size:
        Entry budget; the least-recently-used entry is evicted beyond it.
    ttl:
        Seconds an entry stays valid, or ``None`` for no expiry.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        max_size: int = 256,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_size < 1:
            raise ValueError("max_size must be >= 1")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (or None to disable)")
        self.max_size = max_size
        self.ttl = ttl
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()  # guarded-by: _lock
        self._generation = 0  # guarded-by: _lock
        self.stats = CacheStats()  # guarded-by: _lock

    @property
    def generation(self) -> int:
        """Invalidation epoch; capture at solve start, pass to :meth:`put`."""
        with self._lock:
            return self._generation

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None and not self._expired(entry)

    def _expired(self, entry: CacheEntry) -> bool:
        return self.ttl is not None and self._clock() - entry.created_at > self.ttl

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[CacheEntry]:
        """Look up a fingerprint; counts a hit or a miss either way."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self._expired(entry):
                del self._entries[key]
                self.stats.expirations += 1
                entry = None
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            self.stats.hits += 1
            return entry

    def put(
        self,
        key: str,
        solution: Any,
        platform: Platform,
        schedule: Any = None,
        generation: Optional[int] = None,
    ) -> Optional[CacheEntry]:
        """Insert (or refresh) an entry, evicting LRU entries beyond budget.

        ``generation`` is the value of :attr:`generation` captured when the
        solve producing ``solution`` started.  When an invalidation has
        happened since (the counter moved), the write is refused and
        ``None`` is returned: the solution was computed against a platform
        state the caller has since declared stale, and storing it would
        undo the invalidation.  Pass ``None`` to skip the check (the
        solution is known current, e.g. a manual warm-up).
        """
        topo = topology_signature(platform)
        with self._lock:
            if generation is not None and generation != self._generation:
                self.stats.stale_puts += 1
                return None
            entry = CacheEntry(
                key=key,
                topology_sig=topo,
                solution=solution,
                schedule=schedule,
                created_at=self._clock(),
            )
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            return entry

    def keys(self) -> List[str]:
        """The live fingerprints, LRU-first (no counters touched).

        Sharded deployments union these across shards to report a
        *deduplicated* cache size: hot-key replication stores the same
        fingerprint on several shards on purpose, so the raw per-shard
        sum over-counts the distinct solutions held.
        """
        with self._lock:
            return list(self._entries)

    def peek(self, key: str) -> Optional[CacheEntry]:
        """Look up without touching counters, recency or TTL eviction.

        For internal short-circuits (e.g. checking whether a schedule was
        already attached by another waiter) that must not distort the
        hit-rate statistics.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self._expired(entry):
                return None
            return entry

    def attach_schedule(self, key: str, schedule: Any) -> None:
        """Record a lazily reconstructed schedule on an existing entry."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                entry.schedule = schedule

    # ------------------------------------------------------------------
    def invalidate(self, key: str) -> bool:
        """Drop one entry by fingerprint; True when something was removed."""
        with self._lock:
            if key in self._entries:
                del self._entries[key]
                self.stats.invalidations += 1
                return True
            return False

    def invalidate_platform(self, platform: Platform) -> int:
        """Drop every entry whose platform shares this platform's *topology*.

        The intended call site is a platform mutation: weights are frozen
        in :class:`~repro.platform.graph.Platform`, so "mutating" means
        deriving a re-weighted copy (e.g. :meth:`Platform.scale` or a
        monitoring update).  Matching on the topology signature removes
        all stale weight-variants of the platform in one call; returns the
        number of entries removed.
        """
        topo = topology_signature(platform)
        with self._lock:
            # bump even when nothing matched: an in-flight solve for this
            # platform has no entry yet, and its late put must still be
            # refused (the whole point of the generation check)
            self._generation += 1
            doomed: List[str] = [
                key for key, entry in self._entries.items()
                if entry.topology_sig == topo
            ]
            for key in doomed:
                del self._entries[key]
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> int:
        with self._lock:
            self._generation += 1
            n = len(self._entries)
            self._entries.clear()
            return n

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe view of size, config and counters (for the API)."""
        with self._lock:
            return {
                "size": len(self._entries),
                "max_size": self.max_size,
                "ttl": self.ttl,
                "generation": self._generation,
                **self.stats.as_dict(),
            }
