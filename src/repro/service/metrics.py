"""Per-endpoint latency / throughput counters for the scheduling service.

Each endpoint (``solve``, ``batch``, ``invalidate``, ...) accumulates a
request count, an error count, total busy time and a bounded reservoir of
recent latencies from which p50/p99 are read.  Everything is thread-safe
and snapshottable as JSON — the API exposes :meth:`MetricsRegistry.snapshot`
verbatim.

The reservoir keeps the most recent ``reservoir_size`` observations (a
sliding window, not a random sample): the service cares about *current*
tail latency, and a window is both exact over its span and cheap.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Dict, Iterable, Iterator, Optional
from contextlib import contextmanager


class EndpointMetrics:
    """Counters for one endpoint; not thread-safe on its own (the registry
    serialises access)."""

    __slots__ = ("name", "count", "errors", "total_seconds", "min_seconds",
                 "max_seconds", "_window")

    def __init__(self, name: str, reservoir_size: int = 4096) -> None:
        self.name = name
        self.count = 0
        self.errors = 0
        self.total_seconds = 0.0
        self.min_seconds: Optional[float] = None
        self.max_seconds: Optional[float] = None
        self._window: "deque[float]" = deque(maxlen=reservoir_size)

    def observe(self, seconds: float, error: bool = False) -> None:
        self.count += 1
        if error:
            self.errors += 1
        self.total_seconds += seconds
        self.min_seconds = (seconds if self.min_seconds is None
                            else min(self.min_seconds, seconds))
        self.max_seconds = (seconds if self.max_seconds is None
                            else max(self.max_seconds, seconds))
        self._window.append(seconds)

    def percentile(self, p: float) -> Optional[float]:
        """Nearest-rank percentile over the recent-latency window."""
        if not self._window:
            return None
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        ordered = sorted(self._window)
        rank = max(1, -(-len(ordered) * p // 100))  # ceil without floats
        return ordered[int(rank) - 1]

    @property
    def mean_seconds(self) -> Optional[float]:
        return self.total_seconds / self.count if self.count else None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "errors": self.errors,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
            "min_seconds": self.min_seconds,
            "max_seconds": self.max_seconds,
            "p50_seconds": self.percentile(50),
            "p99_seconds": self.percentile(99),
            "window": len(self._window),
        }


class MetricsRegistry:
    """Thread-safe collection of :class:`EndpointMetrics` plus uptime.

    ``clock`` is injectable for tests; it must be monotonic.
    """

    def __init__(
        self,
        reservoir_size: int = 4096,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._lock = threading.Lock()
        self._endpoints: Dict[str, EndpointMetrics] = {}
        self._reservoir_size = reservoir_size
        self._clock = clock
        self._started = clock()

    def observe(self, endpoint: str, seconds: float, error: bool = False) -> None:
        with self._lock:
            em = self._endpoints.get(endpoint)
            if em is None:
                em = EndpointMetrics(endpoint, self._reservoir_size)
                self._endpoints[endpoint] = em
            em.observe(seconds, error=error)

    @contextmanager
    def timer(self, endpoint: str) -> Iterator[None]:
        """Time a block; records an error observation when it raises."""
        start = self._clock()
        try:
            yield
        except BaseException:
            self.observe(endpoint, self._clock() - start, error=True)
            raise
        self.observe(endpoint, self._clock() - start)

    def endpoint(self, name: str) -> Optional[EndpointMetrics]:
        with self._lock:
            return self._endpoints.get(name)

    @property
    def uptime_seconds(self) -> float:
        return self._clock() - self._started

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe snapshot: per-endpoint stats + derived requests/sec.

        ``total_requests`` counts top-level endpoints only: a dotted name
        ("solve.cold", "solve.hit") is a sub-timer of its prefix endpoint
        and would double-count.
        """
        with self._lock:
            uptime = self.uptime_seconds
            endpoints = {
                name: em.as_dict() for name, em in self._endpoints.items()
            }
        total = sum(
            e["count"] for name, e in endpoints.items() if "." not in name
        )
        return {
            "uptime_seconds": uptime,
            "total_requests": total,
            "requests_per_second": total / uptime if uptime > 0 else 0.0,
            "endpoints": endpoints,
        }


# ----------------------------------------------------------------------
def _merge_endpoint_dicts(dicts: list) -> Dict[str, Any]:
    count = sum(d["count"] for d in dicts)
    errors = sum(d["errors"] for d in dicts)
    total = sum(d["total_seconds"] for d in dicts)
    mins = [d["min_seconds"] for d in dicts if d["min_seconds"] is not None]
    maxs = [d["max_seconds"] for d in dicts if d["max_seconds"] is not None]

    def weighted(key: str) -> Optional[float]:
        pairs = [(d[key], d["count"]) for d in dicts
                 if d.get(key) is not None and d["count"]]
        weight = sum(n for _v, n in pairs)
        if not weight:
            return None
        return sum(v * n for v, n in pairs) / weight

    return {
        "count": count,
        "errors": errors,
        "total_seconds": total,
        "mean_seconds": total / count if count else None,
        "min_seconds": min(mins) if mins else None,
        "max_seconds": max(maxs) if maxs else None,
        "p50_seconds": weighted("p50_seconds"),
        "p99_seconds": weighted("p99_seconds"),
        "window": sum(d["window"] for d in dicts),
    }


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge per-shard :meth:`MetricsRegistry.snapshot` dicts into one.

    Counts, errors and busy time are exact sums; min/max are exact;
    the mean is re-derived from the summed totals.  Percentiles cannot be
    reconstructed from per-shard percentiles, so the merged p50/p99 are
    *count-weighted averages* of the shard values — a documented
    approximation (exact when shards see similar latency distributions,
    which hash routing makes the common case).  Uptime is the maximum
    across shards (they started together); requests/sec is re-derived
    from the merged totals, so it reports aggregate service throughput.

    Input dicts are JSON snapshots, which is what makes this work
    uniformly for in-process shards and process shards reporting over a
    pipe.
    """
    snapshots = list(snapshots)
    uptime = max((s.get("uptime_seconds", 0.0) for s in snapshots),
                 default=0.0)
    names: Dict[str, list] = {}
    for snap in snapshots:
        for name, ep in snap.get("endpoints", {}).items():
            names.setdefault(name, []).append(ep)
    endpoints = {
        name: _merge_endpoint_dicts(dicts)
        for name, dicts in sorted(names.items())
    }
    total = sum(
        e["count"] for name, e in endpoints.items() if "." not in name
    )
    return {
        "uptime_seconds": uptime,
        "total_requests": total,
        "requests_per_second": total / uptime if uptime > 0 else 0.0,
        "endpoints": endpoints,
    }
