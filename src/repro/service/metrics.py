"""Per-endpoint latency / throughput counters for the scheduling service.

Each endpoint (``solve``, ``batch``, ``invalidate``, ...) accumulates a
request count, an error count, total busy time and a bounded reservoir of
recent latencies from which p50/p99 are read.  Everything is thread-safe
and snapshottable as JSON — the API exposes :meth:`MetricsRegistry.snapshot`
verbatim.

The reservoir keeps the most recent ``reservoir_size`` observations (a
sliding window, not a random sample): the service cares about *current*
tail latency, and a window is both exact over its span and cheap.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Dict, Iterable, Iterator, Optional
from contextlib import contextmanager


def _nearest_rank(ordered: list, p: float) -> float:
    """Nearest-rank percentile of an already-sorted non-empty list."""
    if not 0 <= p <= 100:
        raise ValueError("percentile must be in [0, 100]")
    rank = max(1, -(-len(ordered) * p // 100))  # ceil without floats
    return ordered[int(rank) - 1]


class EndpointMetrics:
    """Counters for one endpoint; not thread-safe on its own (the registry
    serialises access)."""

    __slots__ = ("name", "count", "errors", "total_seconds", "min_seconds",
                 "max_seconds", "_window")

    def __init__(self, name: str, reservoir_size: int = 4096) -> None:
        self.name = name
        self.count = 0
        self.errors = 0
        self.total_seconds = 0.0
        self.min_seconds: Optional[float] = None
        self.max_seconds: Optional[float] = None
        self._window: "deque[float]" = deque(maxlen=reservoir_size)

    def observe(self, seconds: float, error: bool = False) -> None:
        self.count += 1
        if error:
            self.errors += 1
        self.total_seconds += seconds
        self.min_seconds = (seconds if self.min_seconds is None
                            else min(self.min_seconds, seconds))
        self.max_seconds = (seconds if self.max_seconds is None
                            else max(self.max_seconds, seconds))
        self._window.append(seconds)

    def percentile(self, p: float) -> Optional[float]:
        """Nearest-rank percentile over the recent-latency window."""
        if not self._window:
            return None
        return _nearest_rank(sorted(self._window), p)

    @property
    def mean_seconds(self) -> Optional[float]:
        return self.total_seconds / self.count if self.count else None

    def as_dict(self) -> Dict[str, Any]:
        # one sort serves every percentile in the snapshot — percentile()
        # used to be called per quantile, sorting the window each time
        ordered = sorted(self._window)
        return {
            "count": self.count,
            "errors": self.errors,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
            "min_seconds": self.min_seconds,
            "max_seconds": self.max_seconds,
            "p50_seconds": _nearest_rank(ordered, 50) if ordered else None,
            "p99_seconds": _nearest_rank(ordered, 99) if ordered else None,
            "window": len(ordered),
        }


class MetricsRegistry:
    """Thread-safe collection of :class:`EndpointMetrics` plus uptime.

    ``clock`` is injectable for tests; it must be monotonic.
    """

    def __init__(
        self,
        reservoir_size: int = 4096,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._lock = threading.Lock()
        self._endpoints: Dict[str, EndpointMetrics] = {}  # guarded-by: _lock
        self._gauges: Dict[str, float] = {}  # guarded-by: _lock
        self._reservoir_size = reservoir_size
        self._clock = clock
        self._started = clock()

    def observe(self, endpoint: str, seconds: float, error: bool = False) -> None:
        with self._lock:
            em = self._endpoints.get(endpoint)
            if em is None:
                em = EndpointMetrics(endpoint, self._reservoir_size)
                self._endpoints[endpoint] = em
            em.observe(seconds, error=error)

    @contextmanager
    def timer(self, endpoint: str) -> Iterator[None]:
        """Time a block; records an error observation when it raises."""
        start = self._clock()
        try:
            yield
        except BaseException:
            self.observe(endpoint, self._clock() - start, error=True)
            raise
        self.observe(endpoint, self._clock() - start)

    def set_gauge(self, name: str, value: float) -> None:
        """Record a point-in-time level (queue depth, in-flight requests).

        Gauges are last-write-wins, not accumulated; when snapshots from
        several registries are merged the convention is: names ending in
        ``_max`` merge by max, everything else sums (depths and in-flight
        counts across shards add up).
        """
        with self._lock:
            self._gauges[name] = value

    def gauge(self, name: str) -> Optional[float]:
        with self._lock:
            return self._gauges.get(name)

    def endpoint(self, name: str) -> Optional[EndpointMetrics]:
        with self._lock:
            return self._endpoints.get(name)

    @property
    def uptime_seconds(self) -> float:
        return self._clock() - self._started

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe snapshot: per-endpoint stats + derived requests/sec.

        ``total_requests`` counts top-level endpoints only: a dotted name
        ("solve.cold", "solve.hit") is a sub-timer of its prefix endpoint
        and would double-count.
        """
        with self._lock:
            uptime = self.uptime_seconds
            endpoints = {
                name: em.as_dict() for name, em in self._endpoints.items()
            }
            gauges = dict(self._gauges)
        total = sum(
            e["count"] for name, e in endpoints.items() if "." not in name
        )
        return {
            "uptime_seconds": uptime,
            "total_requests": total,
            "requests_per_second": total / uptime if uptime > 0 else 0.0,
            "endpoints": endpoints,
            "gauges": gauges,
        }


# ----------------------------------------------------------------------
def _merge_endpoint_dicts(dicts: list) -> Dict[str, Any]:
    count = sum(d["count"] for d in dicts)
    errors = sum(d["errors"] for d in dicts)
    total = sum(d["total_seconds"] for d in dicts)
    mins = [d["min_seconds"] for d in dicts if d["min_seconds"] is not None]
    maxs = [d["max_seconds"] for d in dicts if d["max_seconds"] is not None]

    def weighted(key: str) -> Optional[float]:
        pairs = [(d[key], d["count"]) for d in dicts
                 if d.get(key) is not None and d["count"]]
        weight = sum(n for _v, n in pairs)
        if not weight:
            return None
        return sum(v * n for v, n in pairs) / weight

    return {
        "count": count,
        "errors": errors,
        "total_seconds": total,
        "mean_seconds": total / count if count else None,
        "min_seconds": min(mins) if mins else None,
        "max_seconds": max(maxs) if maxs else None,
        "p50_seconds": weighted("p50_seconds"),
        "p99_seconds": weighted("p99_seconds"),
        "window": sum(d["window"] for d in dicts),
    }


def merge_snapshots(snapshots: Iterable[Dict[str, Any]],
                    uptime_seconds: Optional[float] = None) -> Dict[str, Any]:
    """Merge per-shard :meth:`MetricsRegistry.snapshot` dicts into one.

    Counts, errors and busy time are exact sums; min/max are exact;
    the mean is re-derived from the summed totals.  Percentiles cannot be
    reconstructed from per-shard percentiles, so the merged p50/p99 are
    *count-weighted averages* of the shard values — a documented
    approximation (exact when shards see similar latency distributions,
    which hash routing makes the common case).

    ``uptime_seconds`` should be the *caller registry's* uptime (the
    front door every merged request passed through): remote shards start
    — and restart, and rejoin — at their own times, so the max of shard
    uptimes can be far longer than the service has been routing requests,
    deflating the derived requests/sec.  Without it the max across
    snapshots is used as a fallback (exact only when every shard started
    with the caller).
    """
    snapshots = list(snapshots)
    uptime = (uptime_seconds if uptime_seconds is not None
              else max((s.get("uptime_seconds", 0.0) for s in snapshots),
                       default=0.0))
    names: Dict[str, list] = {}
    for snap in snapshots:
        for name, ep in snap.get("endpoints", {}).items():
            names.setdefault(name, []).append(ep)
    endpoints = {
        name: _merge_endpoint_dicts(dicts)
        for name, dicts in sorted(names.items())
    }
    # gauges are levels, not rates: in-flight/depth gauges sum across
    # shards, high-water marks (``*_max``) take the max
    gauges: Dict[str, float] = {}
    for snap in snapshots:
        for name, value in snap.get("gauges", {}).items():
            if name in gauges:
                gauges[name] = (max(gauges[name], value)
                                if name.endswith("_max")
                                else gauges[name] + value)
            else:
                gauges[name] = value
    total = sum(
        e["count"] for name, e in endpoints.items() if "." not in name
    )
    return {
        "uptime_seconds": uptime,
        "total_requests": total,
        "requests_per_second": total / uptime if uptime > 0 else 0.0,
        "endpoints": endpoints,
        "gauges": gauges,
    }


# ----------------------------------------------------------------------
# Prometheus text exposition (format 0.0.4) of a broker snapshot
# ----------------------------------------------------------------------
def _label_escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def render_prometheus(snapshot: Dict[str, Any]) -> str:
    """Render a broker/sharded-broker :meth:`snapshot` dict as Prometheus
    text exposition.

    The snapshot stays the single source of truth — this is a *view* of
    it, so every backend (single broker, sharded, remote shards) exposes
    identical metric names.  Endpoint latencies come out as summary-style
    quantile samples (pre-computed nearest-rank p50/p99, not client-side
    aggregatable histograms — documented limitation).
    """
    metrics = snapshot.get("metrics", {})
    lines: list = []

    def emit(name: str, kind: str, help_text: str, samples: list) -> None:
        real = [(labels, v) for labels, v in samples if v is not None]
        if not real:
            return
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, value in real:
            label_text = ""
            if labels:
                inner = ",".join(
                    f'{k}="{_label_escape(str(v))}"'
                    for k, v in sorted(labels.items())
                )
                label_text = "{" + inner + "}"
            lines.append(f"{name}{label_text} {value}")

    emit("repro_uptime_seconds", "gauge",
         "Seconds since the metrics registry started.",
         [({}, metrics.get("uptime_seconds"))])
    emit("repro_requests_total", "counter",
         "Top-level requests observed (sub-timers excluded).",
         [({}, metrics.get("total_requests"))])
    emit("repro_requests_per_second", "gauge",
         "Aggregate request rate over the service uptime.",
         [({}, metrics.get("requests_per_second"))])
    emit("repro_coalesced_total", "counter",
         "Requests answered by piggybacking on an in-flight twin.",
         [({}, snapshot.get("coalesced"))])
    emit("repro_shard_coalesced_total", "counter",
         "Solves coalesced at a shard across brokers (same fingerprint "
         "already in flight).",
         [({}, snapshot.get("shard_coalesced"))])

    gauges = metrics.get("gauges", {})
    emit("repro_gauge", "gauge",
         "Point-in-time service levels (queue depth, in-flight requests; "
         "*_max names are high-water marks).",
         [({"name": name}, value) for name, value in sorted(gauges.items())])

    endpoints = metrics.get("endpoints", {})
    emit("repro_request_duration_seconds", "summary",
         "Per-endpoint request latency (nearest-rank quantiles over the "
         "recent window).",
         [({"endpoint": name, "quantile": q}, ep.get(f"p{p}_seconds"))
          for name, ep in sorted(endpoints.items())
          for q, p in (("0.5", 50), ("0.99", 99))])
    emit("repro_request_duration_seconds_sum", "counter",
         "Per-endpoint total busy time.",
         [({"endpoint": name}, ep.get("total_seconds"))
          for name, ep in sorted(endpoints.items())])
    emit("repro_request_duration_seconds_count", "counter",
         "Per-endpoint request count.",
         [({"endpoint": name}, ep.get("count"))
          for name, ep in sorted(endpoints.items())])
    emit("repro_request_errors_total", "counter",
         "Per-endpoint error count.",
         [({"endpoint": name}, ep.get("errors"))
          for name, ep in sorted(endpoints.items())])

    cache = snapshot.get("cache", {})
    for key, help_text in (
        ("size", "Entries currently cached."),
        ("hits", "Cache lookups served."),
        ("misses", "Cache lookups missed."),
        ("evictions", "Entries evicted by the size bound."),
        ("expirations", "Entries expired by TTL."),
        ("invalidations", "Entries dropped by platform invalidation."),
    ):
        kind = "gauge" if key == "size" else "counter"
        suffix = "" if key == "size" else "_total"
        emit(f"repro_cache_{key}{suffix}", kind, help_text,
             [({}, cache.get(key))])
    emit("repro_cache_hit_rate", "gauge",
         "Fraction of cache lookups served.",
         [({}, cache.get("hit_rate"))])
    emit("repro_cache_unique_size", "gauge",
         "Distinct fingerprints cached across shards (hot-key "
         "replicated copies deduplicated; absent when unsharded).",
         [({}, cache.get("unique_size"))])

    replication = snapshot.get("replication", {})
    emit("repro_replicated_puts_total", "counter",
         "Hot-key solutions written to replica shards that missed them.",
         [({}, replication.get("replicated_puts"))])
    emit("repro_replica_put_rejects_total", "counter",
         "Replicated puts refused (generation moved, unknown generation, "
         "or replica unreachable) — each reject is the staleness guard "
         "firing, never a stale entry landing.",
         [({}, replication.get("replica_put_rejects"))])
    emit("repro_replica_reads_total", "counter",
         "Hot reads served by a non-primary replica (rotation spreading "
         "the Zipf head).",
         [({}, replication.get("replica_reads"))])
    emit("repro_shard_load_imbalance", "gauge",
         "Max/mean per-shard request load (1.0 = perfectly even).",
         [({}, replication.get("load_imbalance"))])
    near = replication.get("near_cache", {})
    emit("repro_near_cache_size", "gauge",
         "Entries in the broker near-cache.", [({}, near.get("size"))])
    emit("repro_near_cache_hits_total", "counter",
         "Requests served from the broker near-cache (no shard touched).",
         [({}, near.get("hits"))])
    emit("repro_near_cache_misses_total", "counter",
         "Near-cache lookups that fell through to the ring.",
         [({}, near.get("misses"))])
    emit("repro_near_cache_stale_rejects_total", "counter",
         "Near-cache admissions refused because the generation moved "
         "during the solve (stale serves stay impossible).",
         [({}, near.get("stale_rejects"))])

    health = snapshot.get("shard_health", {})
    for key in ("shard_failures", "shard_timeouts", "shard_restarts",
                "failovers", "rejoins"):
        emit(f"repro_{key}_total", "counter",
             f"Supervision counter: {key.replace('_', ' ')}.",
             [({}, health.get(key))])
    emit("repro_shard_up", "gauge",
         "Per-shard liveness (1 = on the ring, 0 = ejected or dead).",
         [({"shard": s.get("shard"), "kind": s.get("kind", "?")},
           1 if s.get("active") else 0)
          for s in health.get("shards", [])])

    incremental = snapshot.get("incremental", {})
    emit("repro_warm_models", "gauge",
         "Hot LP models retained for warm re-solves.",
         [({}, incremental.get("hot_models"))])
    for key in sorted(incremental):
        if key == "hot_models":
            continue
        if key.endswith("_max"):
            # high-water marks (eta-file length, ...) are gauges: they
            # can reset with their SimplexInstance and merge by max
            emit(f"repro_warm_{key}", "gauge",
                 f"Warm-path high-water mark: {key.replace('_', ' ')}.",
                 [({}, incremental.get(key))])
            continue
        emit(f"repro_warm_{key}_total", "counter",
             f"Warm-path counter: {key.replace('_', ' ')}.",
             [({}, incremental.get(key))])
    basis_nnz = incremental.get("lu_basis_nnz")
    if basis_nnz:
        emit("repro_warm_lu_fill_ratio", "gauge",
             "Sparse-LU fill ratio: accumulated L+U nonzeros over basis "
             "nonzeros (1.0 = no fill-in).",
             [({}, incremental.get("lu_fill_nnz", 0) / basis_nnz)])

    traces = snapshot.get("traces", {})
    emit("repro_traces_captured_total", "counter",
         "Traces captured by the in-memory store.",
         [({}, traces.get("captured"))])
    emit("repro_traces_slow_total", "counter",
         "Captured traces over the slow threshold.",
         [({}, traces.get("slow_captured"))])

    return "\n".join(lines) + "\n"
