"""Shard transport layer: one protocol, pluggable backends.

A shard is a :class:`~repro.service.broker.SolveEngine` somewhere else —
behind a pipe to a local worker process, or behind a TCP socket to
another host.  This module owns everything "somewhere else" implies, so
:mod:`repro.service.sharding` can treat every shard identically:

* **the message schema** — JSON-safe request dicts (``op`` +
  spec-wire-codec payloads, exactly what the PR 3 pipe protocol already
  spoke) and JSON-safe replies (results via the exact codec of
  :mod:`repro.service.wire`, so no pickle ever crosses a host
  boundary);
* **the shared op handler** — :func:`handle_shard_message` dispatches
  ``solve`` / ``solve_many`` / ``invalidate`` / ``snapshot`` /
  ``clear`` / ``ping`` against an engine, identically for the pipe
  worker and the TCP server (one protocol implementation, two hosts);
* **the transports** — :class:`PipeTransport` (a local worker process
  behind a duplex pipe) and :class:`TcpTransport` (length-prefixed JSON
  frames over a socket), both satisfying the :class:`Transport`
  interface: ``request`` / ``request_many`` / ``ping`` / ``close``
  with **per-request timeouts**;
* **the standalone shard server** — :class:`ShardServer`, a threaded
  TCP listener hosting one engine, run as ``python -m repro
  shard-serve --port N`` so a :class:`~repro.service.sharding.
  ShardedBroker` on another host can place it on its hash ring via
  ``--shard host:port``.

Failure semantics are uniform: a dead peer raises
:class:`TransportError`, an expired per-request timeout raises
:class:`TransportTimeout`, and both leave the transport **closed** —
after a timeout the connection has an unread reply in flight, so
reusing it would pair that stale reply with the next request.  The
sharding layer reacts by restarting local workers or ejecting remote
shards from the ring; the transport's only job is to fail loudly and
atomically.  (:class:`TcpTransport` reconnects lazily on the next
request, which is what lets an ejected remote shard rejoin once its
host returns.)

The shape follows the ``comm/`` layer of Dask ``distributed`` (see the
related file set): an abstract message-oriented channel, concrete
in-process and socket backends, and explicit closed-channel errors.

**Multiplexing (the asyncio stack).**  The sync transports are strictly
one-in-one-out per connection; the async stack lifts that.  Frames may
carry a client-chosen ``id`` field; a host always echoes ``id`` back on
the reply (see :func:`handle_shard_message`), which is the *entire*
wire change — no version bump, and old peers interoperate both ways:

* a message **without** ``id`` is answered strictly in the order
  received (what a sync :class:`TcpTransport` pipelining
  ``request_many`` depends on);
* a message **with** ``id`` may be answered out of order — the client
  pairs replies to requests by id, so many requests can be in flight
  on one connection at once.

:class:`AsyncTcpTransport` implements the client side (a future per id,
one background read loop demultiplexing replies); a per-request
deadline abandons only its own id — the channel keeps serving every
other in-flight request, instead of the sync transports' close-on-
timeout rule.  :class:`AsyncShardServer` implements the host side: ops
execute on a bounded thread pool (the simplex is CPU-bound and exact —
it stays off the loop), pings are answered on the loop itself so a busy
shard never looks dead to a health probe, a server-side per-op deadline
answers ``ShardTimeoutError`` promptly instead of letting clients
guess, and in-flight solves are keyed by fingerprint so brokers sharing
a hot shard coalesce onto one engine run.  :class:`AsyncBridgeTransport`
is the sync facade (``asyncio.run_coroutine_threadsafe`` onto a shared
background loop) that lets :class:`~repro.service.sharding.
ShardedBroker` ride the multiplexed wire unchanged.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import socket
import socketserver
import struct
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from ..platform.serialization import platform_from_dict
from .broker import SolveEngine
from .cache import SolutionCache
from .incremental import IncrementalSolver
from .tracing import start_trace
from .wire import result_from_wire, result_to_wire


class TransportError(RuntimeError):
    """The peer died or the channel broke; the transport is closed."""


class TransportTimeout(TransportError):
    """No reply within the per-request timeout; the transport is closed
    (an unread reply may still arrive — reuse would desynchronise)."""


# ----------------------------------------------------------------------
# framing: 4-byte big-endian length prefix + UTF-8 JSON
# ----------------------------------------------------------------------
#: Upper bound on one frame; a platform corpus entry is a few KB, so
#: anything near this is a protocol error, not a big request.
MAX_FRAME_BYTES = 64 * 1024 * 1024
#: Bound on the ``sleep`` debug op (see :func:`handle_shard_message`).
MAX_SLEEP_SECONDS = 30.0
_HEADER = struct.Struct(">I")


def encode_frame(message: Dict[str, Any]) -> bytes:
    """One message as its wire bytes (length prefix + UTF-8 JSON).

    Shared by the sync socket path and the asyncio writers — one
    encoder, so the two stacks cannot drift.
    """
    blob = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(blob) > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame of {len(blob)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _HEADER.pack(len(blob)) + blob


def write_frame(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Serialise one message onto a socket (length-prefixed JSON)."""
    sock.sendall(encode_frame(message))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise TransportError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _check_frame_length(length: int) -> int:
    if length > MAX_FRAME_BYTES:
        raise TransportError(
            f"peer announced a {length}-byte frame (limit "
            f"{MAX_FRAME_BYTES}); not a shard protocol peer?"
        )
    return length


def _decode_frame_body(blob: bytes) -> Dict[str, Any]:
    try:
        message = json.loads(blob)
    except ValueError as exc:
        # JSONDecodeError, and UnicodeDecodeError for non-UTF-8 bytes —
        # both mean "not a protocol peer", never an unhandled escape
        raise TransportError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise TransportError(
            f"frame decodes to {type(message).__name__}, expected an "
            f"object"
        )
    return message


def read_frame(sock: socket.socket) -> Dict[str, Any]:
    """Read one length-prefixed JSON message from a socket.

    Raises :class:`TransportError` on a closed/odd peer and lets
    ``TimeoutError`` (the socket timeout) propagate to the caller, which
    knows whether a timeout is fatal.
    """
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    _check_frame_length(length)
    return _decode_frame_body(_recv_exact(sock, length))


async def read_frame_async(reader: "asyncio.StreamReader") -> Dict[str, Any]:
    """Asyncio twin of :func:`read_frame` over a ``StreamReader``.

    Same framing, same typed failures: a peer that hangs up mid-frame,
    announces an absurd length or ships undecodable bytes raises
    :class:`TransportError` — never a hang, never a silent partial read.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
        (length,) = _HEADER.unpack(header)
        _check_frame_length(length)
        blob = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TransportError("connection closed mid-frame") from exc
    except (ConnectionError, OSError) as exc:
        raise TransportError(f"connection broke mid-frame: {exc}") from exc
    return _decode_frame_body(blob)


def parse_shard_address(address: str) -> Tuple[str, int]:
    """``"host:port"`` or ``"tcp://host:port"`` → ``(host, port)``."""
    text = address.strip()
    if text.startswith("tcp://"):
        text = text[len("tcp://"):]
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"shard address {address!r} must look like host:port"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"shard address {address!r} has a non-numeric "
                         f"port") from None
    if not 0 < port < 65536:
        raise ValueError(f"shard address {address!r} port out of range")
    return host, port


# ----------------------------------------------------------------------
# the transport interface
# ----------------------------------------------------------------------
class Transport:
    """A message channel to one shard engine: strict request → reply.

    Implementations are *not* internally locked — the sharding layer
    serialises use per shard (one request in flight per shard is the
    design: cross-shard parallelism is the scaling axis).  All methods
    may raise :class:`TransportError` / :class:`TransportTimeout`;
    after either, the transport is closed and :attr:`closed` is true
    (a :class:`TcpTransport` transparently reconnects on the next
    request; a :class:`PipeTransport` does not — its worker is gone).
    """

    #: short label used in metrics endpoint names ("transport.<kind>")
    kind = "abstract"

    @property
    def address(self) -> str:
        """Where this transport leads (logging/metrics only)."""
        raise NotImplementedError

    @property
    def closed(self) -> bool:
        raise NotImplementedError

    def request(self, message: Dict[str, Any],
                timeout: Optional[float] = None) -> Dict[str, Any]:
        """Send one message, wait for its reply (``timeout`` seconds)."""
        raise NotImplementedError

    def request_many(self, messages: List[Dict[str, Any]],
                     timeout: Optional[float] = None,
                     ) -> List[Dict[str, Any]]:
        """Pipeline several messages; replies in message order.

        ``timeout`` bounds the wait for *each* reply, not the total.
        The default implementation loops :meth:`request`; backends
        override it to ship all messages before the first reply is
        read (one latency, not N — what batched shard dispatch rides).
        """
        return [self.request(message, timeout=timeout)
                for message in messages]

    def ping(self, timeout: float = 1.0) -> bool:
        """Health probe; never raises."""
        try:
            reply = self.request({"op": "ping"}, timeout=timeout)
        except TransportError:
            return False
        return bool(reply.get("ok"))

    def close(self) -> None:
        raise NotImplementedError


def connect(address: str, connect_timeout: float = 5.0) -> "TcpTransport":
    """A :class:`TcpTransport` for ``host:port`` / ``tcp://host:port``."""
    host, port = parse_shard_address(address)
    return TcpTransport(host, port, connect_timeout=connect_timeout)


# ----------------------------------------------------------------------
# pipe transport: a local worker process behind a duplex pipe
# ----------------------------------------------------------------------
class PipeTransport(Transport):
    """A long-lived local worker process reached over a duplex pipe.

    The pipe carries the same JSON-safe message dicts as TCP (the
    pickling a ``multiprocessing`` pipe applies to a plain dict is an
    implementation detail, not a schema).  Timeouts use
    ``Connection.poll`` — the fix for the wedged-broker hazard: a hung
    worker used to hold the parent's blocking ``recv`` (and with it the
    shard's call lock) forever.
    """

    kind = "pipe"

    def __init__(self, conn, process) -> None:
        self._conn = conn
        self.process = process
        self._closed = False

    @property
    def address(self) -> str:
        return f"pipe://pid={self.process.pid}"

    @property
    def closed(self) -> bool:
        return self._closed

    def _death_notice(self, exc: BaseException) -> TransportError:
        self._closed = True
        return TransportError(
            f"shard worker pid={self.process.pid} died "
            f"(exitcode={self.process.exitcode}): {exc}"
        )

    def request(self, message: Dict[str, Any],
                timeout: Optional[float] = None) -> Dict[str, Any]:
        if self._closed:
            raise TransportError("pipe transport is closed")
        try:
            self._conn.send(message)
        except (OSError, ValueError, BrokenPipeError) as exc:
            raise self._death_notice(exc) from exc
        return self._read_reply(timeout)

    def request_many(self, messages: List[Dict[str, Any]],
                     timeout: Optional[float] = None,
                     ) -> List[Dict[str, Any]]:
        if self._closed:
            raise TransportError("pipe transport is closed")
        try:
            for message in messages:
                self._conn.send(message)
        except (OSError, ValueError, BrokenPipeError) as exc:
            raise self._death_notice(exc) from exc
        return [self._read_reply(timeout) for _ in messages]

    def _read_reply(self, timeout: Optional[float]) -> Dict[str, Any]:
        if timeout is not None:
            try:
                ready = self._conn.poll(timeout)
            except (OSError, EOFError) as exc:
                raise self._death_notice(exc) from exc
            if not ready:
                self._closed = True  # a late reply would desynchronise
                raise TransportTimeout(
                    f"shard worker pid={self.process.pid} sent no reply "
                    f"within {timeout}s"
                )
        try:
            reply = self._conn.recv()
        except (EOFError, OSError) as exc:
            raise self._death_notice(exc) from exc
        return reply

    def close(self, stop_timeout: float = 5.0) -> None:
        """Stop the worker: handshake when healthy, terminate otherwise."""
        if not self._closed:
            self._closed = True
            try:
                self._conn.send({"op": "stop"})
                if self._conn.poll(stop_timeout):
                    self._conn.recv()
            except (EOFError, OSError, ValueError, BrokenPipeError):
                pass
        self.process.join(timeout=stop_timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=stop_timeout)
            if self.process.is_alive():  # pragma: no cover — last resort
                self.process.kill()
                self.process.join(timeout=stop_timeout)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover
            pass


def spawn_pipe_shard(ctx, cache_size: int, ttl: Optional[float],
                     incremental: bool) -> PipeTransport:
    """Start one local shard worker and return its transport."""
    parent, child = ctx.Pipe(duplex=True)
    process = ctx.Process(
        target=_shard_worker_main,
        args=(child, cache_size, ttl, incremental),
        daemon=True,
    )
    process.start()
    child.close()
    return PipeTransport(parent, process)


# ----------------------------------------------------------------------
# TCP transport: framed JSON to a shard server on any host
# ----------------------------------------------------------------------
class TcpTransport(Transport):
    """Length-prefixed JSON frames to a :class:`ShardServer`.

    Connects lazily and *re*connects after any failure, so an ejected
    remote shard rejoins the ring the moment its host is back: the
    health probe's next :meth:`ping` simply dials again.
    """

    kind = "tcp"

    def __init__(self, host: str, port: int,
                 connect_timeout: float = 5.0) -> None:
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self._sock: Optional[socket.socket] = None

    @property
    def address(self) -> str:
        return f"tcp://{self.host}:{self.port}"

    @property
    def closed(self) -> bool:
        return self._sock is None

    def _connected(self) -> socket.socket:
        if self._sock is None:
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout
                )
            except OSError as exc:
                raise TransportError(
                    f"cannot connect to shard {self.address}: {exc}"
                ) from exc
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self._sock

    def _drop(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass

    def request(self, message: Dict[str, Any],
                timeout: Optional[float] = None) -> Dict[str, Any]:
        sock = self._connected()
        sock.settimeout(timeout)
        try:
            write_frame(sock, message)
            return read_frame(sock)
        except TimeoutError as exc:  # socket.timeout is an alias
            self._drop()
            raise TransportTimeout(
                f"shard {self.address} sent no reply within {timeout}s"
            ) from exc
        except (TransportError, OSError) as exc:
            self._drop()
            raise TransportError(
                f"shard {self.address} connection failed: {exc}"
            ) from exc

    def request_many(self, messages: List[Dict[str, Any]],
                     timeout: Optional[float] = None,
                     ) -> List[Dict[str, Any]]:
        sock = self._connected()
        sock.settimeout(timeout)
        try:
            for message in messages:
                write_frame(sock, message)
            return [read_frame(sock) for _ in messages]
        except TimeoutError as exc:
            self._drop()
            raise TransportTimeout(
                f"shard {self.address} sent no reply within {timeout}s"
            ) from exc
        except (TransportError, OSError) as exc:
            self._drop()
            raise TransportError(
                f"shard {self.address} connection failed: {exc}"
            ) from exc

    def close(self) -> None:
        self._drop()


# ----------------------------------------------------------------------
# the shard op handler — one protocol implementation for every host
# ----------------------------------------------------------------------
def handle_shard_message(engine: SolveEngine,
                         msg: Dict[str, Any]) -> Dict[str, Any]:
    """Dispatch one shard-protocol message against an engine.

    Always returns a JSON-safe reply dict; failures are reported as
    ``{"ok": False, "error": ..., "type": ...}`` replies carrying the
    original exception class, never by raising (a worker must survive
    any request).  ``stop`` is *not* handled here — its meaning is
    host-specific (a pipe worker exits, a TCP server only drops the
    connection), so each host intercepts it before dispatching.

    A message carrying an ``id`` gets it echoed on the reply — every
    host (pipe worker, threaded TCP server, async server) does this
    uniformly, which is what lets :class:`AsyncTcpTransport` pair
    out-of-order replies to requests.
    """
    reply = _handle_shard_op(engine, msg)
    if "id" in msg:
        reply["id"] = msg["id"]
    return reply


def _handle_shard_op(engine: SolveEngine,
                     msg: Dict[str, Any]) -> Dict[str, Any]:
    reply = _shard_op_reply(engine, msg)
    if reply.get("ok") and "gen" not in reply:
        # every successful reply reports the shard's cache generation:
        # brokers keep it as a monotone per-shard lower bound that
        # guards replicated puts (a bound that lags only makes a put
        # reject safely — generations never move backwards)
        try:
            reply["gen"] = engine.cache.generation
        except Exception:  # noqa: BLE001 — introspection must not fail ops
            pass
    return reply


def _shard_op_reply(engine: SolveEngine,
                    msg: Dict[str, Any]) -> Dict[str, Any]:
    from .api import request_from_dict  # deferred: avoid import cycle

    op = msg.get("op")
    try:
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "solve":
            request = request_from_dict(msg["request"])
            if msg.get("trace"):
                # the caller is tracing: record this shard's own span
                # tree around the solve and ship it on the reply, to be
                # grafted into the caller's trace.  Old peers without
                # this field behave exactly as before — the protocol
                # needs no version bump.
                with start_trace("shard.solve") as tr:
                    result = engine.run(request, msg["fp"])
                return {"ok": True, "result": result_to_wire(result),
                        "trace": {"trace_id": tr.trace_id,
                                  "spans": tr.span_wire()}}
            result = engine.run(request, msg["fp"])
            return {"ok": True, "result": result_to_wire(result)}
        if op == "solve_many":
            # one round-trip for a whole shard batch; per-item error
            # isolation mirrors the JSON API's batch op (one failing
            # request must not discard its siblings' results)
            replies = []
            for item in msg["items"]:
                try:
                    request = request_from_dict(item["request"])
                    if item.get("trace"):
                        with start_trace("shard.solve") as tr:
                            result = engine.run(request, item["fp"])
                        replies.append({
                            "ok": True,
                            "result": result_to_wire(result),
                            "trace": {"trace_id": tr.trace_id,
                                      "spans": tr.span_wire()},
                        })
                        continue
                    result = engine.run(request, item["fp"])
                    replies.append({"ok": True,
                                    "result": result_to_wire(result)})
                except Exception as exc:  # noqa: BLE001 — reply carries it
                    replies.append({"ok": False, "error": str(exc),
                                    "type": type(exc).__name__})
            return {"ok": True, "results": replies}
        if op == "put":
            # replicated hot-key writes, batched (one round-trip per
            # replica shard per batch).  Every entry must carry the
            # generation its writer captured at solve start: an entry
            # without one is REJECTED — storing it unguarded could
            # silently undo an invalidation — and the reply's "gen"
            # seeds the writer's bound so its next put can land.
            stored = stale = skipped = 0
            for entry in msg.get("entries", ()):
                try:
                    gen = entry.get("gen")
                    if not isinstance(gen, int) or isinstance(gen, bool):
                        skipped += 1
                        continue
                    result = result_from_wire(entry["result"])
                    platform = platform_from_dict(entry["platform"])
                    if engine.cache.peek(entry["fp"]) is not None:
                        continue  # the replica already has it
                    landed = engine.cache.put(
                        entry["fp"], result.solution, platform,
                        schedule=result.schedule, generation=gen)
                    if landed is None:
                        stale += 1
                    else:
                        stored += 1
                except Exception:  # noqa: BLE001 — a bad entry, not a bad op
                    skipped += 1
            return {"ok": True, "stored": stored, "stale": stale,
                    "skipped": skipped}
        if op == "invalidate":
            platform = platform_from_dict(msg["platform"])
            return {"ok": True,
                    "removed": engine.invalidate_platform(platform)}
        if op == "snapshot":
            # keys ride along so the sharding layer's merged snapshots
            # can deduplicate hot-key-replicated entries
            return {"ok": True, "snapshot": engine.snapshot(include_keys=True)}
        if op == "clear":
            return {"ok": True, "cleared": engine.cache.clear()}
        if op == "sleep":
            # a test/benchmark aid: simulates a hung or overloaded
            # worker so timeout and failover paths can be exercised
            # deterministically.  Capped: the shard protocol is
            # unauthenticated, and on a TCP shard this op holds the
            # engine lock — an unbounded sleep would let any client
            # wedge a shared shard indefinitely
            seconds = min(float(msg.get("seconds", 0.0)), MAX_SLEEP_SECONDS)
            time.sleep(seconds)
            return {"ok": True, "slept": seconds}
        return {"ok": False, "error": f"unknown shard op {op!r}",
                "type": "SpecError"}
    except Exception as exc:  # noqa: BLE001 — reply carries it
        return {"ok": False, "error": str(exc),
                "type": type(exc).__name__}


def _shard_worker_main(conn, cache_size: int, ttl: Optional[float],
                       incremental: bool) -> None:
    """Long-lived pipe-shard worker: one engine, one pipe.

    The engine (cache + metrics + warm models) lives for the worker's
    whole life — that persistence is the point: re-spawning per request
    would throw the hot state away.
    """
    engine = SolveEngine(
        cache=SolutionCache(max_size=cache_size, ttl=ttl),
        incremental=IncrementalSolver() if incremental else None,
    )
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):  # parent went away
            return
        if msg.get("op") == "stop":
            try:
                conn.send({"ok": True})
            except (OSError, BrokenPipeError):  # pragma: no cover
                pass
            return
        conn.send(handle_shard_message(engine, msg))


# ----------------------------------------------------------------------
# the standalone TCP shard server (python -m repro shard-serve)
# ----------------------------------------------------------------------
class _ShardConnection(socketserver.BaseRequestHandler):
    server: "ShardServer"  # type: ignore[assignment]

    def handle(self) -> None:
        sock = self.request
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        while True:
            try:
                msg = read_frame(sock)
            except (TransportError, OSError):
                return  # client went away / spoke garbage: drop it
            if msg.get("op") == "stop":
                # stopping a *server* is the operator's call (signal /
                # shutdown()), not any client's: acknowledge and drop
                # only this connection
                try:
                    write_frame(sock, {"ok": True, "closing": True})
                except (TransportError, OSError):
                    pass
                return
            if msg.get("op") == "ping":
                # answered OUTSIDE the engine lock: a health probe asks
                # "is the host alive", and queueing it behind another
                # broker's long solve would make busy look dead (the
                # prober would eject a healthy shared shard)
                reply = handle_shard_message(self.server.engine, msg)
            else:
                # one op at a time across all connections: the engine's
                # warm models are not reentrant, and serial execution
                # gives every client the same strict solve → invalidate
                # ordering the pipe workers have
                with self.server.engine_lock:
                    reply = handle_shard_message(self.server.engine, msg)
            try:
                write_frame(sock, reply)
            except (TransportError, OSError):
                return


class ShardServer(socketserver.ThreadingTCPServer):
    """A standalone TCP shard: one :class:`SolveEngine` behind framed
    JSON, placed on a broker's hash ring via ``--shard host:port``.

    >>> server = ShardServer(("127.0.0.1", 0))
    >>> server.port  # doctest: +SKIP
    43521

    Run ``serve_forever()`` (the ``python -m repro shard-serve`` entry
    point does) and point any number of brokers at it; each connection
    gets its own handler thread, and the engine lock serialises ops so
    concurrent brokers interleave at message granularity.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address=("127.0.0.1", 0),
        cache_size: int = 256,
        ttl: Optional[float] = None,
        incremental: bool = True,
        engine: Optional[SolveEngine] = None,
    ) -> None:
        # the engine is shared by every connection thread; connections
        # serialise solves on engine_lock (see _ShardConnection — the
        # cross-class use is beyond the lock checker's own-class model)
        self.engine = engine if engine is not None else SolveEngine(
            cache=SolutionCache(max_size=cache_size, ttl=ttl),
            incremental=IncrementalSolver() if incremental else None,
        )
        self.engine_lock = threading.Lock()
        super().__init__(address, _ShardConnection)

    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def address(self) -> str:
        return f"tcp://{self.host}:{self.port}"


# ----------------------------------------------------------------------
# the asyncio stack: multiplexed client, sync bridge, async shard server
# ----------------------------------------------------------------------
class AsyncTcpTransport:
    """Multiplexing asyncio client for the shard protocol.

    One TCP connection carries many in-flight requests: each request is
    tagged with a fresh ``id``, registered in a future-per-id dispatch
    map, and a single background read loop pairs every reply frame back
    to its waiter.  All state is loop-confined — every coroutine here
    runs on one event loop, so no locks guard ``_pending``.

    Timeout semantics deliberately differ from the sync transports: a
    per-request timeout abandons *only its own id* (the read loop drops
    the late reply if it ever lands) and the connection keeps serving
    every other in-flight request.  Only a broken channel (peer died,
    read loop failed) fails the map wholesale — and like
    :class:`TcpTransport`, the next request redials.
    """

    kind = "async"

    def __init__(self, host: str, port: int,
                 connect_timeout: float = 5.0) -> None:
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._read_task: Optional[asyncio.Task] = None
        self._pending: Dict[int, asyncio.Future] = {}  # loop-confined
        self._ids = itertools.count(1)
        self._conn_lock = asyncio.Lock()
        self._write_lock = asyncio.Lock()

    @property
    def address(self) -> str:
        return f"tcp://{self.host}:{self.port}"

    @property
    def closed(self) -> bool:
        return self._writer is None

    async def _ensure_connected(self) -> None:
        async with self._conn_lock:
            if self._writer is not None:
                return
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(self.host, self.port),
                    self.connect_timeout,
                )
            except (OSError, asyncio.TimeoutError) as exc:
                raise TransportError(
                    f"cannot connect to shard {self.address}: {exc}"
                ) from exc
            sock = writer.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._reader, self._writer = reader, writer
            self._read_task = asyncio.ensure_future(self._read_loop(reader))

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                reply = await read_frame_async(reader)
                fut = self._pending.pop(reply.pop("id", None), None)
                if fut is not None and not fut.done():
                    fut.set_result(reply)
                # else: a reply for an id whose deadline already expired
                # (or an id-less frame) — dropped by design
        except TransportError as exc:
            self._channel_broke(exc)
        except asyncio.CancelledError:
            self._channel_broke(TransportError(
                f"transport to shard {self.address} closed"))
            raise

    def _channel_broke(self, exc: TransportError) -> None:
        """Fail every in-flight request; the next request redials."""
        writer, self._writer = self._writer, None
        self._reader = None
        self._read_task = None
        if writer is not None:
            try:
                writer.close()
            except OSError:  # pragma: no cover
                pass
        pending, self._pending = self._pending, {}
        for fut in pending.values():
            if not fut.done():
                fut.set_exception(TransportError(str(exc)))

    async def request(self, message: Dict[str, Any],
                      timeout: Optional[float] = None) -> Dict[str, Any]:
        """Send one message; many callers may be awaiting concurrently."""
        await self._ensure_connected()
        rid = next(self._ids)
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rid] = fut
        frame = encode_frame({**message, "id": rid})
        try:
            async with self._write_lock:
                assert self._writer is not None
                self._writer.write(frame)
                await self._writer.drain()
        except (ConnectionError, OSError, AssertionError) as exc:
            self._pending.pop(rid, None)
            self._channel_broke(TransportError(
                f"shard {self.address} connection failed: {exc}"))
            raise TransportError(
                f"shard {self.address} connection failed: {exc}"
            ) from exc
        try:
            return await asyncio.wait_for(fut, timeout)
        except asyncio.TimeoutError as exc:
            # abandon THIS id only: the channel stays open and every
            # other in-flight request keeps its future
            self._pending.pop(rid, None)
            raise TransportTimeout(
                f"shard {self.address} sent no reply to request {rid} "
                f"within {timeout}s (other in-flight requests unaffected)"
            ) from exc

    async def request_many(self, messages: List[Dict[str, Any]],
                           timeout: Optional[float] = None,
                           ) -> List[Dict[str, Any]]:
        """All messages in flight at once; replies in message order."""
        results = await asyncio.gather(
            # repro-lint: allow(asyncio) — coroutines handed to gather,
            # which awaits them; nothing runs before the await
            *(self.request(message, timeout=timeout)
              for message in messages),
            return_exceptions=True,
        )
        for item in results:
            if isinstance(item, BaseException):
                raise item
        return list(results)

    async def ping(self, timeout: float = 1.0) -> bool:
        """Health probe; never raises."""
        try:
            reply = await self.request({"op": "ping"}, timeout=timeout)
        except TransportError:
            return False
        return bool(reply.get("ok"))

    async def close(self) -> None:
        task = self._read_task
        self._channel_broke(TransportError(
            f"transport to shard {self.address} closed"))
        if task is not None:
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, TransportError):
                pass


# ----------------------------------------------------------------------
# the shared background loop + the sync bridge the broker rides
# ----------------------------------------------------------------------
_bridge_lock = threading.Lock()
# only read/written under _bridge_lock
_bridge_loop_singleton: Optional[asyncio.AbstractEventLoop] = None


def bridge_event_loop() -> asyncio.AbstractEventLoop:
    """The process-wide background event loop for sync→async bridging.

    Started lazily on a daemon thread and shared by every
    :class:`AsyncBridgeTransport` in the process — all multiplexed
    connections cost one thread total, which is the point.
    """
    global _bridge_loop_singleton
    with _bridge_lock:
        loop = _bridge_loop_singleton
        if loop is None or loop.is_closed():
            loop = asyncio.new_event_loop()
            thread = threading.Thread(
                target=loop.run_forever,
                name="repro-async-bridge",
                daemon=True,
            )
            thread.start()
            _bridge_loop_singleton = loop
    return loop


class AsyncBridgeTransport(Transport):
    """Sync :class:`Transport` facade over :class:`AsyncTcpTransport`.

    Calls are submitted to the shared background loop with
    ``asyncio.run_coroutine_threadsafe`` and awaited synchronously, so
    :class:`~repro.service.sharding.ShardedBroker` works unchanged —
    but because the underlying channel demultiplexes by request id,
    *concurrent* callers genuinely share one connection instead of
    serialising on it.  Unlike the raw sync transports this class is
    thread-safe by construction: all channel state lives on the loop.
    """

    kind = "async"

    def __init__(self, host: str, port: int,
                 connect_timeout: float = 5.0) -> None:
        self._loop = bridge_event_loop()
        self._transport = AsyncTcpTransport(
            host, port, connect_timeout=connect_timeout)

    @property
    def address(self) -> str:
        return self._transport.address

    @property
    def closed(self) -> bool:
        return self._transport.closed

    def _run(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def request(self, message: Dict[str, Any],
                timeout: Optional[float] = None) -> Dict[str, Any]:
        return self._run(self._transport.request(message, timeout=timeout))

    def request_many(self, messages: List[Dict[str, Any]],
                     timeout: Optional[float] = None,
                     ) -> List[Dict[str, Any]]:
        return self._run(
            self._transport.request_many(messages, timeout=timeout))

    def ping(self, timeout: float = 1.0) -> bool:
        try:
            return self._run(self._transport.ping(timeout=timeout))
        except TransportError:  # pragma: no cover — ping never raises
            return False

    def close(self) -> None:
        if not self._loop.is_closed():
            self._run(self._transport.close())


def connect_async(address: str,
                  connect_timeout: float = 5.0) -> AsyncBridgeTransport:
    """An :class:`AsyncBridgeTransport` for ``host:port`` addresses."""
    host, port = parse_shard_address(address)
    return AsyncBridgeTransport(host, port, connect_timeout=connect_timeout)


# ----------------------------------------------------------------------
# the async shard server (python -m repro shard-serve --async)
# ----------------------------------------------------------------------
class AsyncShardServer:
    """One event loop from socket to shard engine.

    The asyncio counterpart of :class:`ShardServer`.  Every connection
    is a coroutine on one loop; engine work runs on a bounded thread
    pool (``solve_workers``) because the exact simplex is CPU-bound —
    the loop itself only frames, routes, and answers.  What that buys
    over the threaded server:

    * **pings on the loop** — a health probe is answered immediately
      even while every executor thread is busy, so a *busy* shard never
      looks *dead* to a prober (the PR 5 busy-shard ping-miss leftover);
    * **server-side deadlines** — an op carrying ``deadline`` (or the
      server-wide ``op_deadline`` default) that cannot finish in time is
      answered promptly with a ``ShardTimeoutError``-typed reply; the
      connection keeps serving its other in-flight ids, and an
      abandoned solve still completes on its thread and warms the cache;
    * **cross-broker coalescing** — in-flight solves are keyed by
      fingerprint, so several brokers hammering one hot shard await the
      same engine run (counted in ``shard_coalesced``, traced as
      ``coalesce.remote`` spans on follower replies);
    * **old peers keep working** — frames without an ``id`` are
      answered strictly in order (the sync :class:`TcpTransport`
      contract); only id-tagged frames are answered out of order.

    All mutable coordination state (the in-flight map, the counters) is
    loop-confined: it is only ever touched from the event loop, which is
    the async replacement for the threaded server's ``engine_lock`` —
    the engine itself is still guarded by a real lock *inside* the
    executor jobs, never on the loop.
    """

    def __init__(
        self,
        address=("127.0.0.1", 0),
        cache_size: int = 256,
        ttl: Optional[float] = None,
        incremental: bool = True,
        engine: Optional[SolveEngine] = None,
        solve_workers: int = 2,
        op_deadline: Optional[float] = None,
    ) -> None:
        self.engine = engine if engine is not None else SolveEngine(
            cache=SolutionCache(max_size=cache_size, ttl=ttl),
            incremental=IncrementalSolver() if incremental else None,
        )
        self.solve_workers = max(1, int(solve_workers))
        self.op_deadline = op_deadline
        self._requested_address = address
        # the engine is single-threaded by contract; executor jobs take
        # this lock, so the pool bounds *queueing*, not engine reentry
        self._engine_lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=self.solve_workers,
            thread_name_prefix="repro-ashard",
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._thread: Optional[threading.Thread] = None
        # ---- loop-confined state (event loop only, no locks) ----
        self._inflight_solves: Dict[str, asyncio.Future] = {}
        self.shard_coalesced = 0
        self.inflight_ops = 0
        self.max_inflight = 0
        self.queue_depth = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "AsyncShardServer":
        """Bind the listener on the running loop."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._serve_connection,
            self._requested_address[0],
            self._requested_address[1],
        )
        return self

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    @property
    def host(self) -> str:
        assert self._server is not None
        return self._server.sockets[0].getsockname()[0]

    @property
    def port(self) -> int:
        assert self._server is not None
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        return f"tcp://{self.host}:{self.port}"

    def start_in_thread(self) -> "AsyncShardServer":
        """Run the server on a dedicated daemon loop thread (tests,
        embedding); returns once the port is bound."""
        started = threading.Event()

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            loop.run_until_complete(self.start())
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self._shutdown_on_loop())
                loop.close()

        self._thread = threading.Thread(
            target=_run, name="repro-ashard-serve", daemon=True)
        self._thread.start()
        if not started.wait(timeout=10):  # pragma: no cover — bind hang
            raise TransportError("async shard server failed to start")
        return self

    async def _shutdown_on_loop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    def shutdown(self) -> None:
        """Stop a :meth:`start_in_thread` server (thread-safe)."""
        if self._loop is not None and not self._loop.is_closed():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self._executor.shutdown(wait=False)

    # ------------------------------------------------------------------
    # the per-connection coroutine
    # ------------------------------------------------------------------
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        write_lock = asyncio.Lock()
        tasks: set = set()
        try:
            while True:
                try:
                    msg = await read_frame_async(reader)
                except TransportError:
                    return  # client went away / spoke garbage: drop it
                op = msg.get("op")
                if op == "stop":
                    # the operator stops a server; a client only drops
                    # its own connection (same rule as ShardServer)
                    await self._send(writer, write_lock,
                                     self._echo(msg, {"ok": True,
                                                      "closing": True}))
                    return
                if op == "ping":
                    # answered on the loop: never queued behind solves,
                    # so a saturated shard still proves it is alive
                    await self._send(writer, write_lock,
                                     self._echo(msg, {"ok": True,
                                                      "pong": True}))
                    continue
                if "id" in msg:
                    task = asyncio.ensure_future(
                        self._serve_op(msg, writer, write_lock))
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
                else:
                    # legacy sync peer: replies strictly in order, one
                    # op at a time on this connection
                    await self._serve_op(msg, writer, write_lock)
        finally:
            for task in tasks:
                task.cancel()
            writer.close()

    @staticmethod
    def _echo(msg: Dict[str, Any],
              reply: Dict[str, Any]) -> Dict[str, Any]:
        if "id" in msg:
            reply["id"] = msg["id"]
        return reply

    async def _send(self, writer: asyncio.StreamWriter,
                    write_lock: asyncio.Lock,
                    reply: Dict[str, Any]) -> None:
        frame = encode_frame(reply)
        try:
            async with write_lock:
                writer.write(frame)
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away; its loss

    # ------------------------------------------------------------------
    # op execution
    # ------------------------------------------------------------------
    async def _serve_op(self, msg: Dict[str, Any],
                        writer: asyncio.StreamWriter,
                        write_lock: asyncio.Lock) -> None:
        self.inflight_ops += 1
        self.max_inflight = max(self.max_inflight, self.inflight_ops)
        self._publish_gauges()
        try:
            deadline = msg.get("deadline", self.op_deadline)
            try:
                reply = await self._dispatch(msg, deadline)
            except asyncio.TimeoutError:
                reply = {
                    "ok": False,
                    "type": "ShardTimeoutError",
                    "error": (f"op {msg.get('op')!r} missed its "
                              f"{deadline}s server-side deadline "
                              f"(executor saturated or solve too slow)"),
                }
        finally:
            self.inflight_ops -= 1
            self._publish_gauges()
        await self._send(writer, write_lock, self._echo(msg, reply))

    async def _dispatch(self, msg: Dict[str, Any],
                        deadline: Optional[float]) -> Dict[str, Any]:
        op = msg.get("op")
        if op == "solve":
            return await self._solve_one(
                msg.get("fp"), msg.get("request"), bool(msg.get("trace")),
                deadline)
        if op == "solve_many":
            replies = []
            for item in msg.get("items", ()):
                replies.append(await self._solve_one(
                    item.get("fp"), item.get("request"),
                    bool(item.get("trace")), deadline))
            return {"ok": True, "results": replies}
        if op == "snapshot":
            # served on the loop: reads loop-confined counters plus the
            # engine's own (briefly) locked snapshot — microseconds, and
            # it must not queue behind saturated solve workers
            return {"ok": True, "snapshot": self._snapshot_with_async(),
                    "gen": self.engine.cache.generation}
        # invalidate / clear / sleep / unknown: the shared op handler,
        # on a thread, under the engine lock
        assert self._loop is not None
        future = self._loop.run_in_executor(
            self._executor, self._locked_message, msg)
        return await asyncio.wait_for(future, deadline)

    async def _solve_one(self, fp: Any, request_wire: Any, trace: bool,
                         deadline: Optional[float]) -> Dict[str, Any]:
        if not isinstance(fp, str) or request_wire is None:
            return {"ok": False, "type": "SpecError",
                    "error": "solve op requires 'fp' and 'request'"}
        shared = self._inflight_solves.get(fp)
        if shared is None:
            # leader: start the engine run; the shared future is
            # resolved by the executor-future's done callback (on the
            # loop), never by a waiter — a waiter's deadline cancels
            # only its own wait
            assert self._loop is not None
            shared = self._loop.create_future()
            self._inflight_solves[fp] = shared
            self.queue_depth += 1
            self._publish_gauges()
            job = self._loop.run_in_executor(
                self._executor, self._solve_job, fp, request_wire, trace)
            job.add_done_callback(
                lambda done, fp=fp, shared=shared:
                self._solve_finished(fp, shared, done))
            follower = False
        else:
            follower = True
            self.shard_coalesced += 1
        started = time.perf_counter()
        reply = dict(await asyncio.wait_for(asyncio.shield(shared),
                                            deadline))
        if follower:
            waited = time.perf_counter() - started
            # metered like any endpoint so /metrics and the Prometheus
            # view surface remote coalescing without a new schema
            self.engine.metrics.observe("coalesce.remote", waited)
            leader_trace = reply.pop("trace", None)
            if trace:
                reply["trace"] = self._follower_trace(
                    fp, waited, leader_trace)
        return reply

    def _solve_finished(self, fp: str, shared: "asyncio.Future",
                        done: "asyncio.Future") -> None:
        # runs on the loop (run_in_executor future callback)
        self._inflight_solves.pop(fp, None)
        self.queue_depth = max(0, self.queue_depth - 1)
        self._publish_gauges()
        if shared.done():  # pragma: no cover — defensive
            return
        exc = done.exception()
        if exc is not None:
            shared.set_result({"ok": False, "error": str(exc),
                               "type": type(exc).__name__})
        else:
            shared.set_result(done.result())

    def _solve_job(self, fp: str, request_wire: Any,
                   trace: bool) -> Dict[str, Any]:
        """Executor thread: the only place engine.run happens."""
        msg = {"op": "solve", "fp": fp, "request": request_wire}
        if trace:
            msg["trace"] = True
        with self._engine_lock:
            return _handle_shard_op(self.engine, msg)

    def _locked_message(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        with self._engine_lock:
            return _handle_shard_op(self.engine, msg)

    def _follower_trace(self, fp: str, waited: float,
                        leader_trace: Optional[Dict[str, Any]],
                        ) -> Dict[str, Any]:
        """A follower's span tree: one ``coalesce.remote`` span standing
        in for the engine run it never made."""
        from .tracing import Trace  # deferred: keep module import light
        tr = Trace("shard.solve")
        sp = tr.new_span("coalesce.remote", tr.root.span_id, start=0.0)
        sp.annotations.update({
            "fingerprint": fp[:12],
            "coalesced": True,
            "leader_trace": (leader_trace or {}).get("trace_id"),
        })
        sp.duration_seconds = waited
        tr.finish()
        return {"trace_id": tr.trace_id, "spans": tr.span_wire()}

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _publish_gauges(self) -> None:
        metrics = self.engine.metrics
        metrics.set_gauge("mux_inflight", self.inflight_ops)
        metrics.set_gauge("mux_inflight_max", self.max_inflight)
        metrics.set_gauge("solve_queue_depth", self.queue_depth)

    def _snapshot_with_async(self) -> Dict[str, Any]:
        self._publish_gauges()
        # include_keys for the same reason the sync snapshot op does:
        # merged snapshots deduplicate hot-key-replicated entries
        snap = self.engine.snapshot(include_keys=True)
        snap["async"] = {
            "solve_workers": self.solve_workers,
            "inflight": self.inflight_ops,
            "max_inflight": self.max_inflight,
            "queue_depth": self.queue_depth,
            "shard_coalesced": self.shard_coalesced,
        }
        return snap
