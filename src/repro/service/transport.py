"""Shard transport layer: one protocol, pluggable backends.

A shard is a :class:`~repro.service.broker.SolveEngine` somewhere else —
behind a pipe to a local worker process, or behind a TCP socket to
another host.  This module owns everything "somewhere else" implies, so
:mod:`repro.service.sharding` can treat every shard identically:

* **the message schema** — JSON-safe request dicts (``op`` +
  spec-wire-codec payloads, exactly what the PR 3 pipe protocol already
  spoke) and JSON-safe replies (results via the exact codec of
  :mod:`repro.service.wire`, so no pickle ever crosses a host
  boundary);
* **the shared op handler** — :func:`handle_shard_message` dispatches
  ``solve`` / ``solve_many`` / ``invalidate`` / ``snapshot`` /
  ``clear`` / ``ping`` against an engine, identically for the pipe
  worker and the TCP server (one protocol implementation, two hosts);
* **the transports** — :class:`PipeTransport` (a local worker process
  behind a duplex pipe) and :class:`TcpTransport` (length-prefixed JSON
  frames over a socket), both satisfying the :class:`Transport`
  interface: ``request`` / ``request_many`` / ``ping`` / ``close``
  with **per-request timeouts**;
* **the standalone shard server** — :class:`ShardServer`, a threaded
  TCP listener hosting one engine, run as ``python -m repro
  shard-serve --port N`` so a :class:`~repro.service.sharding.
  ShardedBroker` on another host can place it on its hash ring via
  ``--shard host:port``.

Failure semantics are uniform: a dead peer raises
:class:`TransportError`, an expired per-request timeout raises
:class:`TransportTimeout`, and both leave the transport **closed** —
after a timeout the connection has an unread reply in flight, so
reusing it would pair that stale reply with the next request.  The
sharding layer reacts by restarting local workers or ejecting remote
shards from the ring; the transport's only job is to fail loudly and
atomically.  (:class:`TcpTransport` reconnects lazily on the next
request, which is what lets an ejected remote shard rejoin once its
host returns.)

The shape follows the ``comm/`` layer of Dask ``distributed`` (see the
related file set): an abstract message-oriented channel, concrete
in-process and socket backends, and explicit closed-channel errors —
minus the async machinery, because shard calls are strictly
one-in-one-out per connection.
"""

from __future__ import annotations

import json
import socket
import socketserver
import struct
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from ..platform.serialization import platform_from_dict
from .broker import SolveEngine
from .cache import SolutionCache
from .incremental import IncrementalSolver
from .tracing import start_trace
from .wire import result_to_wire


class TransportError(RuntimeError):
    """The peer died or the channel broke; the transport is closed."""


class TransportTimeout(TransportError):
    """No reply within the per-request timeout; the transport is closed
    (an unread reply may still arrive — reuse would desynchronise)."""


# ----------------------------------------------------------------------
# framing: 4-byte big-endian length prefix + UTF-8 JSON
# ----------------------------------------------------------------------
#: Upper bound on one frame; a platform corpus entry is a few KB, so
#: anything near this is a protocol error, not a big request.
MAX_FRAME_BYTES = 64 * 1024 * 1024
#: Bound on the ``sleep`` debug op (see :func:`handle_shard_message`).
MAX_SLEEP_SECONDS = 30.0
_HEADER = struct.Struct(">I")


def write_frame(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Serialise one message onto a socket (length-prefixed JSON)."""
    blob = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(blob) > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame of {len(blob)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    sock.sendall(_HEADER.pack(len(blob)) + blob)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise TransportError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> Dict[str, Any]:
    """Read one length-prefixed JSON message from a socket.

    Raises :class:`TransportError` on a closed/odd peer and lets
    ``TimeoutError`` (the socket timeout) propagate to the caller, which
    knows whether a timeout is fatal.
    """
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise TransportError(
            f"peer announced a {length}-byte frame (limit "
            f"{MAX_FRAME_BYTES}); not a shard protocol peer?"
        )
    blob = _recv_exact(sock, length)
    try:
        message = json.loads(blob)
    except json.JSONDecodeError as exc:
        raise TransportError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise TransportError(
            f"frame decodes to {type(message).__name__}, expected an "
            f"object"
        )
    return message


def parse_shard_address(address: str) -> Tuple[str, int]:
    """``"host:port"`` or ``"tcp://host:port"`` → ``(host, port)``."""
    text = address.strip()
    if text.startswith("tcp://"):
        text = text[len("tcp://"):]
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"shard address {address!r} must look like host:port"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"shard address {address!r} has a non-numeric "
                         f"port") from None
    if not 0 < port < 65536:
        raise ValueError(f"shard address {address!r} port out of range")
    return host, port


# ----------------------------------------------------------------------
# the transport interface
# ----------------------------------------------------------------------
class Transport:
    """A message channel to one shard engine: strict request → reply.

    Implementations are *not* internally locked — the sharding layer
    serialises use per shard (one request in flight per shard is the
    design: cross-shard parallelism is the scaling axis).  All methods
    may raise :class:`TransportError` / :class:`TransportTimeout`;
    after either, the transport is closed and :attr:`closed` is true
    (a :class:`TcpTransport` transparently reconnects on the next
    request; a :class:`PipeTransport` does not — its worker is gone).
    """

    #: short label used in metrics endpoint names ("transport.<kind>")
    kind = "abstract"

    @property
    def address(self) -> str:
        """Where this transport leads (logging/metrics only)."""
        raise NotImplementedError

    @property
    def closed(self) -> bool:
        raise NotImplementedError

    def request(self, message: Dict[str, Any],
                timeout: Optional[float] = None) -> Dict[str, Any]:
        """Send one message, wait for its reply (``timeout`` seconds)."""
        raise NotImplementedError

    def request_many(self, messages: List[Dict[str, Any]],
                     timeout: Optional[float] = None,
                     ) -> List[Dict[str, Any]]:
        """Pipeline several messages; replies in message order.

        ``timeout`` bounds the wait for *each* reply, not the total.
        The default implementation loops :meth:`request`; backends
        override it to ship all messages before the first reply is
        read (one latency, not N — what batched shard dispatch rides).
        """
        return [self.request(message, timeout=timeout)
                for message in messages]

    def ping(self, timeout: float = 1.0) -> bool:
        """Health probe; never raises."""
        try:
            reply = self.request({"op": "ping"}, timeout=timeout)
        except TransportError:
            return False
        return bool(reply.get("ok"))

    def close(self) -> None:
        raise NotImplementedError


def connect(address: str, connect_timeout: float = 5.0) -> "TcpTransport":
    """A :class:`TcpTransport` for ``host:port`` / ``tcp://host:port``."""
    host, port = parse_shard_address(address)
    return TcpTransport(host, port, connect_timeout=connect_timeout)


# ----------------------------------------------------------------------
# pipe transport: a local worker process behind a duplex pipe
# ----------------------------------------------------------------------
class PipeTransport(Transport):
    """A long-lived local worker process reached over a duplex pipe.

    The pipe carries the same JSON-safe message dicts as TCP (the
    pickling a ``multiprocessing`` pipe applies to a plain dict is an
    implementation detail, not a schema).  Timeouts use
    ``Connection.poll`` — the fix for the wedged-broker hazard: a hung
    worker used to hold the parent's blocking ``recv`` (and with it the
    shard's call lock) forever.
    """

    kind = "pipe"

    def __init__(self, conn, process) -> None:
        self._conn = conn
        self.process = process
        self._closed = False

    @property
    def address(self) -> str:
        return f"pipe://pid={self.process.pid}"

    @property
    def closed(self) -> bool:
        return self._closed

    def _death_notice(self, exc: BaseException) -> TransportError:
        self._closed = True
        return TransportError(
            f"shard worker pid={self.process.pid} died "
            f"(exitcode={self.process.exitcode}): {exc}"
        )

    def request(self, message: Dict[str, Any],
                timeout: Optional[float] = None) -> Dict[str, Any]:
        if self._closed:
            raise TransportError("pipe transport is closed")
        try:
            self._conn.send(message)
        except (OSError, ValueError, BrokenPipeError) as exc:
            raise self._death_notice(exc) from exc
        return self._read_reply(timeout)

    def request_many(self, messages: List[Dict[str, Any]],
                     timeout: Optional[float] = None,
                     ) -> List[Dict[str, Any]]:
        if self._closed:
            raise TransportError("pipe transport is closed")
        try:
            for message in messages:
                self._conn.send(message)
        except (OSError, ValueError, BrokenPipeError) as exc:
            raise self._death_notice(exc) from exc
        return [self._read_reply(timeout) for _ in messages]

    def _read_reply(self, timeout: Optional[float]) -> Dict[str, Any]:
        if timeout is not None:
            try:
                ready = self._conn.poll(timeout)
            except (OSError, EOFError) as exc:
                raise self._death_notice(exc) from exc
            if not ready:
                self._closed = True  # a late reply would desynchronise
                raise TransportTimeout(
                    f"shard worker pid={self.process.pid} sent no reply "
                    f"within {timeout}s"
                )
        try:
            reply = self._conn.recv()
        except (EOFError, OSError) as exc:
            raise self._death_notice(exc) from exc
        return reply

    def close(self, stop_timeout: float = 5.0) -> None:
        """Stop the worker: handshake when healthy, terminate otherwise."""
        if not self._closed:
            self._closed = True
            try:
                self._conn.send({"op": "stop"})
                if self._conn.poll(stop_timeout):
                    self._conn.recv()
            except (EOFError, OSError, ValueError, BrokenPipeError):
                pass
        self.process.join(timeout=stop_timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=stop_timeout)
            if self.process.is_alive():  # pragma: no cover — last resort
                self.process.kill()
                self.process.join(timeout=stop_timeout)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover
            pass


def spawn_pipe_shard(ctx, cache_size: int, ttl: Optional[float],
                     incremental: bool) -> PipeTransport:
    """Start one local shard worker and return its transport."""
    parent, child = ctx.Pipe(duplex=True)
    process = ctx.Process(
        target=_shard_worker_main,
        args=(child, cache_size, ttl, incremental),
        daemon=True,
    )
    process.start()
    child.close()
    return PipeTransport(parent, process)


# ----------------------------------------------------------------------
# TCP transport: framed JSON to a shard server on any host
# ----------------------------------------------------------------------
class TcpTransport(Transport):
    """Length-prefixed JSON frames to a :class:`ShardServer`.

    Connects lazily and *re*connects after any failure, so an ejected
    remote shard rejoins the ring the moment its host is back: the
    health probe's next :meth:`ping` simply dials again.
    """

    kind = "tcp"

    def __init__(self, host: str, port: int,
                 connect_timeout: float = 5.0) -> None:
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self._sock: Optional[socket.socket] = None

    @property
    def address(self) -> str:
        return f"tcp://{self.host}:{self.port}"

    @property
    def closed(self) -> bool:
        return self._sock is None

    def _connected(self) -> socket.socket:
        if self._sock is None:
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout
                )
            except OSError as exc:
                raise TransportError(
                    f"cannot connect to shard {self.address}: {exc}"
                ) from exc
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self._sock

    def _drop(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass

    def request(self, message: Dict[str, Any],
                timeout: Optional[float] = None) -> Dict[str, Any]:
        sock = self._connected()
        sock.settimeout(timeout)
        try:
            write_frame(sock, message)
            return read_frame(sock)
        except TimeoutError as exc:  # socket.timeout is an alias
            self._drop()
            raise TransportTimeout(
                f"shard {self.address} sent no reply within {timeout}s"
            ) from exc
        except (TransportError, OSError) as exc:
            self._drop()
            raise TransportError(
                f"shard {self.address} connection failed: {exc}"
            ) from exc

    def request_many(self, messages: List[Dict[str, Any]],
                     timeout: Optional[float] = None,
                     ) -> List[Dict[str, Any]]:
        sock = self._connected()
        sock.settimeout(timeout)
        try:
            for message in messages:
                write_frame(sock, message)
            return [read_frame(sock) for _ in messages]
        except TimeoutError as exc:
            self._drop()
            raise TransportTimeout(
                f"shard {self.address} sent no reply within {timeout}s"
            ) from exc
        except (TransportError, OSError) as exc:
            self._drop()
            raise TransportError(
                f"shard {self.address} connection failed: {exc}"
            ) from exc

    def close(self) -> None:
        self._drop()


# ----------------------------------------------------------------------
# the shard op handler — one protocol implementation for every host
# ----------------------------------------------------------------------
def handle_shard_message(engine: SolveEngine,
                         msg: Dict[str, Any]) -> Dict[str, Any]:
    """Dispatch one shard-protocol message against an engine.

    Always returns a JSON-safe reply dict; failures are reported as
    ``{"ok": False, "error": ..., "type": ...}`` replies carrying the
    original exception class, never by raising (a worker must survive
    any request).  ``stop`` is *not* handled here — its meaning is
    host-specific (a pipe worker exits, a TCP server only drops the
    connection), so each host intercepts it before dispatching.
    """
    from .api import request_from_dict  # deferred: avoid import cycle

    op = msg.get("op")
    try:
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "solve":
            request = request_from_dict(msg["request"])
            if msg.get("trace"):
                # the caller is tracing: record this shard's own span
                # tree around the solve and ship it on the reply, to be
                # grafted into the caller's trace.  Old peers without
                # this field behave exactly as before — the protocol
                # needs no version bump.
                with start_trace("shard.solve") as tr:
                    result = engine.run(request, msg["fp"])
                return {"ok": True, "result": result_to_wire(result),
                        "trace": {"trace_id": tr.trace_id,
                                  "spans": tr.span_wire()}}
            result = engine.run(request, msg["fp"])
            return {"ok": True, "result": result_to_wire(result)}
        if op == "solve_many":
            # one round-trip for a whole shard batch; per-item error
            # isolation mirrors the JSON API's batch op (one failing
            # request must not discard its siblings' results)
            replies = []
            for item in msg["items"]:
                try:
                    request = request_from_dict(item["request"])
                    if item.get("trace"):
                        with start_trace("shard.solve") as tr:
                            result = engine.run(request, item["fp"])
                        replies.append({
                            "ok": True,
                            "result": result_to_wire(result),
                            "trace": {"trace_id": tr.trace_id,
                                      "spans": tr.span_wire()},
                        })
                        continue
                    result = engine.run(request, item["fp"])
                    replies.append({"ok": True,
                                    "result": result_to_wire(result)})
                except Exception as exc:  # noqa: BLE001 — reply carries it
                    replies.append({"ok": False, "error": str(exc),
                                    "type": type(exc).__name__})
            return {"ok": True, "results": replies}
        if op == "invalidate":
            platform = platform_from_dict(msg["platform"])
            return {"ok": True,
                    "removed": engine.invalidate_platform(platform)}
        if op == "snapshot":
            return {"ok": True, "snapshot": engine.snapshot()}
        if op == "clear":
            return {"ok": True, "cleared": engine.cache.clear()}
        if op == "sleep":
            # a test/benchmark aid: simulates a hung or overloaded
            # worker so timeout and failover paths can be exercised
            # deterministically.  Capped: the shard protocol is
            # unauthenticated, and on a TCP shard this op holds the
            # engine lock — an unbounded sleep would let any client
            # wedge a shared shard indefinitely
            seconds = min(float(msg.get("seconds", 0.0)), MAX_SLEEP_SECONDS)
            time.sleep(seconds)
            return {"ok": True, "slept": seconds}
        return {"ok": False, "error": f"unknown shard op {op!r}",
                "type": "SpecError"}
    except Exception as exc:  # noqa: BLE001 — reply carries it
        return {"ok": False, "error": str(exc),
                "type": type(exc).__name__}


def _shard_worker_main(conn, cache_size: int, ttl: Optional[float],
                       incremental: bool) -> None:
    """Long-lived pipe-shard worker: one engine, one pipe.

    The engine (cache + metrics + warm models) lives for the worker's
    whole life — that persistence is the point: re-spawning per request
    would throw the hot state away.
    """
    engine = SolveEngine(
        cache=SolutionCache(max_size=cache_size, ttl=ttl),
        incremental=IncrementalSolver() if incremental else None,
    )
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):  # parent went away
            return
        if msg.get("op") == "stop":
            try:
                conn.send({"ok": True})
            except (OSError, BrokenPipeError):  # pragma: no cover
                pass
            return
        conn.send(handle_shard_message(engine, msg))


# ----------------------------------------------------------------------
# the standalone TCP shard server (python -m repro shard-serve)
# ----------------------------------------------------------------------
class _ShardConnection(socketserver.BaseRequestHandler):
    server: "ShardServer"  # type: ignore[assignment]

    def handle(self) -> None:
        sock = self.request
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        while True:
            try:
                msg = read_frame(sock)
            except (TransportError, OSError):
                return  # client went away / spoke garbage: drop it
            if msg.get("op") == "stop":
                # stopping a *server* is the operator's call (signal /
                # shutdown()), not any client's: acknowledge and drop
                # only this connection
                try:
                    write_frame(sock, {"ok": True, "closing": True})
                except (TransportError, OSError):
                    pass
                return
            if msg.get("op") == "ping":
                # answered OUTSIDE the engine lock: a health probe asks
                # "is the host alive", and queueing it behind another
                # broker's long solve would make busy look dead (the
                # prober would eject a healthy shared shard)
                reply = handle_shard_message(self.server.engine, msg)
            else:
                # one op at a time across all connections: the engine's
                # warm models are not reentrant, and serial execution
                # gives every client the same strict solve → invalidate
                # ordering the pipe workers have
                with self.server.engine_lock:
                    reply = handle_shard_message(self.server.engine, msg)
            try:
                write_frame(sock, reply)
            except (TransportError, OSError):
                return


class ShardServer(socketserver.ThreadingTCPServer):
    """A standalone TCP shard: one :class:`SolveEngine` behind framed
    JSON, placed on a broker's hash ring via ``--shard host:port``.

    >>> server = ShardServer(("127.0.0.1", 0))
    >>> server.port  # doctest: +SKIP
    43521

    Run ``serve_forever()`` (the ``python -m repro shard-serve`` entry
    point does) and point any number of brokers at it; each connection
    gets its own handler thread, and the engine lock serialises ops so
    concurrent brokers interleave at message granularity.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address=("127.0.0.1", 0),
        cache_size: int = 256,
        ttl: Optional[float] = None,
        incremental: bool = True,
        engine: Optional[SolveEngine] = None,
    ) -> None:
        # the engine is shared by every connection thread; connections
        # serialise solves on engine_lock (see _ShardConnection — the
        # cross-class use is beyond the lock checker's own-class model)
        self.engine = engine if engine is not None else SolveEngine(
            cache=SolutionCache(max_size=cache_size, ttl=ttl),
            incremental=IncrementalSolver() if incremental else None,
        )
        self.engine_lock = threading.Lock()
        super().__init__(address, _ShardConnection)

    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def address(self) -> str:
        return f"tcp://{self.host}:{self.port}"
