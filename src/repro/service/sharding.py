"""Sharded broker: consistent-hash routing over N independent solve shards.

One :class:`~repro.service.broker.SolveEngine` owns one
:class:`~repro.service.cache.SolutionCache` and one
:class:`~repro.service.incremental.IncrementalSolver`.  That is exactly
the state that should *not* be shared once the platform corpus outgrows a
single cache or the solve load outgrows a single process — or a single
host.  :class:`ShardedBroker` routes each request by **consistent hash of
its fingerprint** to one of N shards, each owning its own engine, so
cache entries and hot models never contend across shards and the
aggregate capacity scales linearly with the shard count.  Identical
requests always land on the same shard, so sharding never duplicates
cache entries and per-request results are exactly the single-broker
results — ``Fraction``-exact.

Three shard placements, mixable on one hash ring:

``thread`` shards
    Full in-process :class:`~repro.service.broker.Broker`\\ s (worker
    pool + in-flight coalescing).  Zero serialization; all shards share
    the GIL, so this mode scales cache/model *capacity*, not CPU.

``process`` (pipe) shards
    Long-lived local worker **processes**, each hosting a bare
    :class:`~repro.service.broker.SolveEngine` behind a
    :class:`~repro.service.transport.PipeTransport`.  Requests travel
    as the spec wire codec, replies as the exact JSON result codec of
    :mod:`repro.service.wire`; the worker keeps its cache and warm LP
    models hot across calls.  One IPC round-trip per request, CPU
    scaling across cores, and **supervision**: a worker that dies or
    times out is restarted automatically (once per failure) and the
    request is retried — first on the fresh worker, then on the next
    ring shard.

``tcp`` (remote) shards
    ``python -m repro shard-serve --port N`` on any host, placed on the
    ring via ``shard_addresses=["host:port", ...]`` (CLI: repeated
    ``--shard host:port``).  Same protocol as the pipe shards over a
    :class:`~repro.service.transport.TcpTransport`.  A remote shard
    that fails or times out is **ejected** from the ring — its keys
    fail over to the clockwise-next live shard, moving only that
    shard's slice of the keyspace — and a background health probe
    re-admits it when its host returns (after clearing its cache, so
    invalidations it missed during the outage can never resurface).

Failure semantics, uniformly: a transport-level failure raises a typed
:class:`ShardUnavailableError` (a :class:`ShardError`) carrying the
shard id; per-request timeouts raise :class:`ShardTimeoutError`; and
every failure is counted — ``shard_failures`` / ``shard_timeouts`` /
``shard_restarts`` / ``failovers`` / ``rejoins`` all surface under
``shard_health`` in :meth:`ShardedBroker.snapshot` (and therefore in
``/metrics``), alongside per-backend transport round-trip latency
(``transport.pipe`` / ``transport.tcp`` endpoint timers).

:meth:`ShardedBroker.invalidate_platform` fans out to every shard and
**tolerates outages**: an unreachable shard is ejected and counted, not
raised — its entries are dropped wholesale before it rejoins, so cache
invalidation never fails the caller during a shard outage, and a solve
racing the invalidation still cannot re-insert a stale entry (each
shard's cache generation counter, see
:class:`~repro.service.cache.SolutionCache`).

The consistent-hash ring (many points per shard, like the routing rings
in Dask ``distributed``-style schedulers) keeps the fingerprint → shard
map stable and balanced; ejecting a shard remaps *only its own keys*
(each walks clockwise to the next live owner), which is what makes
failover cheap and rejoin cheap again.
"""

from __future__ import annotations

import bisect
import hashlib
import multiprocessing
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set

from ..platform.graph import Platform
from ..platform.serialization import platform_to_dict
from .broker import Broker, BrokerError, BrokerResult, SolveRequest
from .cache import HeatSketch, SolutionCache
from .metrics import MetricsRegistry, merge_snapshots
from .tracing import activate, current_span, graft_remote, log_event, span
from .transport import (
    TransportError,
    TransportTimeout,
    connect,
    connect_async,
    spawn_pipe_shard,
)
from .wire import result_from_wire


class ShardError(RuntimeError):
    """A shard failed; ``shard`` carries the shard id when known."""

    #: True when the *shard itself* reported the failure on a healthy
    #: channel (e.g. a server-side deadline) — the shard is alive, so
    #: the routing layer must not eject it or fail the request over.
    server_reported = False

    def __init__(self, message: str, shard: Optional[int] = None) -> None:
        super().__init__(message)
        self.shard = shard


class ShardUnavailableError(ShardError):
    """Transport-level shard failure: the worker died, the host is
    unreachable, or the channel broke mid-request.  The sharding layer
    reacts (restart / ejection / failover); callers only see this when
    every candidate shard is gone."""


class ShardTimeoutError(ShardUnavailableError):
    """The shard sent no reply within the per-request timeout — or, on
    the multiplexed transport, the shard itself answered that the op
    missed its server-side deadline (``server_reported`` is then True
    and the shard stays on the ring)."""


#: dynamically minted ShardError subclasses named after the worker-side
#: exception class, so ``type(exc).__name__`` — the JSON API's ``"type"``
#: field — reports the ORIGINAL class (RuntimeError, ZeroDivisionError,
#: ...) identically to the unsharded broker, while remaining catchable
#: as ShardError.
_REMOTE_ERROR_TYPES: Dict[str, type] = {}


def _remote_error(type_name: str, message: str) -> ShardError:
    cls = _REMOTE_ERROR_TYPES.get(type_name)
    if cls is None:
        cls = type(type_name, (ShardError,), {
            "__doc__": f"worker-side {type_name}, relayed over the shard "
                       f"transport",
        })
        _REMOTE_ERROR_TYPES[type_name] = cls
    return cls(message)


def _raise_worker_error(reply: Dict[str, Any],
                        shard: Optional[int] = None) -> Exception:
    """The exception for a worker-side ``{"ok": False, ...}`` reply —
    :class:`BrokerError` for spec validation, a genuine
    :class:`ShardTimeoutError` for a shard-reported deadline miss, a
    relayed :class:`ShardError` subclass otherwise (shared by
    single-solve replies and per-item ``solve_many`` replies)."""
    if reply.get("type") == "SpecError":
        return BrokerError(reply.get("error", "shard error"))
    if reply.get("type") == "ShardTimeoutError":
        # the async shard server answered — promptly, on a healthy
        # channel — that the op missed its server-side deadline.  Mint
        # the real class (not a dynamic relay) so callers catch it like
        # a client-side timeout, and flag it so routing does not treat
        # a live, honest shard as dead.
        exc = ShardTimeoutError(reply.get("error", "shard deadline"),
                                shard=shard)
        exc.server_reported = True
        return exc
    return _remote_error(reply.get("type", "ShardError"),
                         reply.get("error", ""))


# ----------------------------------------------------------------------
# consistent-hash ring
# ----------------------------------------------------------------------
def _hash_point(label: str) -> int:
    """A stable 64-bit point on the ring for a text label."""
    return int(hashlib.sha256(label.encode("utf-8")).hexdigest()[:16], 16)


class HashRing:
    """Consistent-hash ring mapping request fingerprints to shard ids.

    ``replicas`` virtual points per shard smooth the key distribution;
    routing is a binary search, and the map depends only on (shard count,
    replicas) — every :class:`ShardedBroker` with the same configuration
    routes identically, across processes and across restarts.

    :meth:`route` accepts a ``skip`` set of ejected shard ids: a skipped
    owner's keys walk clockwise to the next live owner, and keys owned
    by live shards are untouched — the **minimal-disruption invariant**
    failover relies on (dropping one shard remaps only that shard's
    keys).
    """

    def __init__(self, shards: int, replicas: int = 64) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.shards = shards
        self.replicas = replicas
        points = sorted(
            (_hash_point(f"shard:{shard}:replica:{rep}"), shard)
            for shard in range(shards)
            for rep in range(replicas)
        )
        self._keys = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def route(self, fingerprint: str, skip: Iterable[int] = ()) -> int:
        """Shard id owning this fingerprint (a hex SHA-256 digest).

        ``skip`` excludes ejected shards; raises :class:`ValueError`
        when every shard is excluded.
        """
        point = int(fingerprint[:16], 16)
        idx = bisect.bisect_right(self._keys, point)
        skip = frozenset(skip)
        if not skip:
            return self._owners[idx % len(self._owners)]
        for step in range(len(self._owners)):
            owner = self._owners[(idx + step) % len(self._owners)]
            if owner not in skip:
                return owner
        raise ValueError("every shard is excluded from routing")

    def successors(self, fingerprint: str, count: int,
                   skip: Iterable[int] = ()) -> List[int]:
        """The first ``count`` *distinct* live shards clockwise from the
        fingerprint's ring point — the replica set of a hot key.

        The walk is the same one :meth:`route` takes, so
        ``successors(fp, 1, skip)[0] == route(fp, skip)`` always, and the
        list is a prefix-stable ordering of the live shards: asking for
        ``count + 1`` appends one shard without reshuffling the first
        ``count`` (what lets a replication factor be raised without
        moving existing replicas), and ejecting one shard removes only
        *that shard* from every key's walk — the minimal-disruption
        invariant, extended from single owners to replica sets.

        Returns fewer than ``count`` shards when fewer are live; raises
        :class:`ValueError` when every shard is excluded.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        point = int(fingerprint[:16], 16)
        idx = bisect.bisect_right(self._keys, point)
        skip = frozenset(skip)
        out: List[int] = []
        seen: set = set()
        for step in range(len(self._owners)):
            owner = self._owners[(idx + step) % len(self._owners)]
            if owner in seen or owner in skip:
                continue
            seen.add(owner)
            out.append(owner)
            if len(out) == count:
                break
        if not out:
            raise ValueError("every shard is excluded from routing")
        return out


# ----------------------------------------------------------------------
# shard handles: one transport + one dispatch queue per shard
# ----------------------------------------------------------------------
class _TransportShard:
    """Parent-side handle: a transport, a call lock and a single-thread
    dispatch queue.

    The lock serialises transport use (one request in flight per shard —
    cross-shard parallelism is the scaling axis, and it also gives each
    shard a strict solve → invalidate ordering, which keeps fan-out
    invalidation race-free from the parent's point of view).  The
    per-shard **own** executor is what prevents head-of-line blocking: a
    burst of requests hashing to one busy shard queues on *that shard's*
    thread and can never starve dispatch to idle shards or the
    introspection fan-outs, which a shared pool would allow.

    ``epoch`` increments on every worker swap (local restart); a caller
    that saw a failure on epoch *e* only triggers recovery if the shard
    is still on epoch *e*, so concurrent failures cause one restart, not
    a stampede.
    """

    restartable = False
    #: True when the transport multiplexes many in-flight requests on
    #: one connection (calls then bypass the serialising lock and the
    #: dispatch queue gets real width)
    muxed = False

    def __init__(self, index: int, transport,
                 queue_width: int = 1) -> None:
        self.index = index
        self.transport = transport
        self.lock = threading.Lock()
        self.executor = ThreadPoolExecutor(
            max_workers=max(1, queue_width),
            thread_name_prefix=f"repro-shard-{index}",
        )
        # transport round-trips (one request+reply pair)
        self.calls = 0  # guarded-by: lock
        # failures/timeouts are mutated by the owning ShardedBroker
        # under ITS _health_lock (cross-object guarding the lock
        # checker cannot express), so they stay unannotated here
        self.failures = 0
        self.timeouts = 0
        self.restarts = 0  # guarded-by: lock
        self.epoch = 0  # guarded-by: lock
        self.ejected = False  # remote: off the ring until health rejoin
        self.dead = False  # local: respawn itself failed (permanent)

    @property
    def active(self) -> bool:
        return not (self.ejected or self.dead)

    def call(self, msg: Dict[str, Any],
             timeout: Optional[float] = None) -> Dict[str, Any]:
        """One locked round-trip; worker-side errors become exceptions."""
        with self.lock:
            self.calls += 1
            reply = self.transport.request(msg, timeout=timeout)
        if not reply.get("ok"):
            raise _raise_worker_error(reply, shard=self.index)
        return reply

    def restart(self, expected_epoch: int) -> bool:
        """Swap in a fresh worker; returns whether the shard is usable.
        Base shards (remote) cannot restart."""
        raise NotImplementedError

    def health(self) -> Dict[str, Any]:
        return {
            "shard": self.index,
            "kind": self.transport.kind,
            "address": self.transport.address,
            "active": self.active,
            "ejected": self.ejected,
            "dead": self.dead,
            # GIL-atomic int reads; taking self.lock here would block
            # the health probe behind an in-flight solve
            "calls": self.calls,  # repro-lint: allow(locks)
            "failures": self.failures,
            "timeouts": self.timeouts,
            "restarts": self.restarts,  # repro-lint: allow(locks)
        }

    def stop(self, timeout: float = 5.0) -> None:
        self.executor.shutdown(wait=True)  # drain queued dispatches first
        self.transport.close()


class _LocalShard(_TransportShard):
    """A pipe shard: worker process spawned (and respawned) by us."""

    restartable = True

    def __init__(self, index: int, ctx, cache_size: int,
                 ttl: Optional[float], incremental: bool) -> None:
        self._ctx = ctx
        self._cache_size = cache_size
        self._ttl = ttl
        self._incremental = incremental
        super().__init__(
            index, spawn_pipe_shard(ctx, cache_size, ttl, incremental)
        )

    @property
    def process(self):
        return self.transport.process

    def restart(self, expected_epoch: int) -> bool:
        with self.lock:
            if self.epoch != expected_epoch:
                return not self.dead  # another thread already recovered
            old = self.transport
            try:
                # the worker is dead or wedged: skip the stop handshake's
                # grace and terminate straight away
                old.close(stop_timeout=0.2)
            except Exception:  # noqa: BLE001 — already beyond saving
                pass
            try:
                self.transport = spawn_pipe_shard(
                    self._ctx, self._cache_size, self._ttl,
                    self._incremental,
                )
            except Exception:  # noqa: BLE001 — respawn failed: shard dead
                self.dead = True
                return False
            self.epoch += 1
            self.restarts += 1
            return True

    def stop(self, timeout: float = 5.0) -> None:
        self.executor.shutdown(wait=True)
        self.transport.close(stop_timeout=timeout)


class _RemoteShard(_TransportShard):
    """A TCP shard on another host; we supervise membership, not life."""

    def __init__(self, index: int, address: str,
                 connect_timeout: float = 5.0) -> None:
        super().__init__(index, connect(address, connect_timeout))


#: dispatch-queue width for a multiplexed shard: how many of one
#: shard's requests this broker keeps in flight on the shared
#: connection at once (the shard server bounds actual engine work with
#: its own solve executor, so this only caps wire-level concurrency)
ASYNC_SHARD_WIDTH = 8


class _AsyncRemoteShard(_TransportShard):
    """A TCP shard reached over the multiplexed async bridge.

    Calls do **not** serialise on the shard lock: the bridge transport
    is thread-safe and demultiplexes replies by request id, so many of
    this broker's threads keep requests in flight on one connection
    concurrently.  The lock still guards the counters and the health
    prober's rejoin handshake.
    """

    muxed = True

    def __init__(self, index: int, address: str,
                 connect_timeout: float = 5.0) -> None:
        super().__init__(index, connect_async(address, connect_timeout),
                         queue_width=ASYNC_SHARD_WIDTH)

    def call(self, msg: Dict[str, Any],
             timeout: Optional[float] = None) -> Dict[str, Any]:
        with self.lock:
            self.calls += 1
        # the round-trip happens OUTSIDE the lock — that is the whole
        # point of the multiplexed transport
        reply = self.transport.request(msg, timeout=timeout)
        if not reply.get("ok"):
            raise _raise_worker_error(reply, shard=self.index)
        return reply


# ----------------------------------------------------------------------
def _merge_cache_snapshots(snaps: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate per-shard cache snapshots: counters sum, rate re-derives.

    ``size`` stays the raw per-shard sum (what the shards actually hold);
    when the snapshots carry their key lists, ``unique_size`` reports the
    *deduplicated* fingerprint count alongside it — under hot-key
    replication the same fingerprint lives on several shards on purpose,
    so the raw sum over-counts the distinct solutions cached.
    """
    summed = {
        key: sum(s.get(key, 0) for s in snaps)
        for key in ("size", "max_size", "hits", "misses", "evictions",
                    "expirations", "invalidations", "stale_puts",
                    "generation")
    }
    lookups = summed["hits"] + summed["misses"]
    merged = {
        **summed,
        "ttl": snaps[0].get("ttl") if snaps else None,
        "hit_rate": summed["hits"] / lookups if lookups else 0.0,
        "shards": len(snaps),
    }
    key_lists = [s.get("keys") for s in snaps]
    if snaps and all(keys is not None for keys in key_lists):
        unique: Set[str] = set()
        for keys in key_lists:
            unique.update(keys)
        merged["unique_size"] = len(unique)
    return merged


class _AggregateCacheView:
    """Read-only stand-in for ``broker.cache`` over all shards.

    The JSON API (and any library caller poking ``broker.cache``) only
    needs the aggregate snapshot; per-shard caches stay private to their
    shards on purpose.
    """

    def __init__(self, owner: "ShardedBroker") -> None:
        self._owner = owner

    def snapshot(self) -> Dict[str, Any]:
        return _merge_cache_snapshots(
            [s["cache"] for s in self._owner.shard_snapshots()
             if s is not None]
        )


#: health-probe request budget: pings and rejoin clears are cheap ops,
#: so a shard that cannot answer within this is treated as down
_PING_TIMEOUT = 2.0


@dataclass
class _HotContext:
    """Everything captured *before* a hot request is dispatched.

    The generations are the PR 3 race discipline extended to fan-out:
    each replica's cache generation (and the near-cache's) is captured
    at solve start, and every replicated/near put passes its captured
    value back — a racing ``invalidate_platform`` bumps the counter in
    between and the late put is refused instead of reinstating a stale
    solution.  ``replicas`` is ``None`` when only the near-cache is in
    play (replication factor 1).
    """

    replicas: Optional[List[int]] = None
    #: the replica chosen to serve this request (rotation over replicas)
    target: Optional[int] = None
    #: shard id -> that replica's cache generation at solve start; in
    #: transport mode a monotone lower bound learned from shard replies
    #: (an entry may be absent when nothing was learned yet — the put is
    #: then skipped shard-side and the reply seeds the bound)
    generations: Dict[int, Optional[int]] = field(default_factory=dict)
    near_generation: Optional[int] = None


# ----------------------------------------------------------------------
class ShardedBroker:
    """Consistent-hash front-end over N independent solve shards.

    Drop-in for :class:`~repro.service.broker.Broker` where the JSON API
    is concerned (``solve`` / ``submit`` / ``solve_batch`` /
    ``invalidate_platform`` / ``snapshot`` / ``metrics`` / ``cache``).

    Parameters
    ----------
    shards:
        Number of **local** shards (>= 1 without remote addresses; may
        be 0 when ``shard_addresses`` supplies the whole ring).
    shard_mode:
        ``"thread"`` — in-process :class:`Broker` per shard (coalescing
        kept, zero serialization, shared GIL); ``"process"`` — one
        long-lived pipe worker per local shard, wire-codec dispatch.
        Defaults to ``"thread"``, or ``"process"`` when remote
        addresses are given (remote shards require the transport path,
        so local shards beside them run as pipe workers).
    workers:
        Thread-pool width *per shard* (thread mode only).
    cache_size / ttl:
        Per-shard :class:`SolutionCache` budget for local shards; the
        aggregate capacity is ``shards * cache_size`` plus whatever the
        remote servers were started with.
    incremental:
        Enable the per-shard warm re-solve path (local shards; remote
        servers decide for themselves at ``shard-serve`` time).
    replicas:
        Virtual ring points per shard (routing smoothness).
    mp_start_method:
        Override the multiprocessing start method for local pipe shards
        (``"fork"``/``"spawn"``/``"forkserver"``; default: platform
        default).
    shard_addresses:
        Remote shard servers (``"host:port"`` or ``"tcp://host:port"``)
        appended to the ring after the local shards.
    request_timeout:
        Per-request transport timeout in seconds (``None`` — the
        default — waits indefinitely, like the unsharded broker).  On
        expiry the shard's channel is abandoned, the shard is
        restarted (local) or ejected (remote) and the request fails
        over; pick a budget above the worst-case cold solve.
    health_interval:
        Seconds between background health probes.  ``None`` picks the
        default: 5 s when remote shards are present (they cannot rejoin
        without a prober), disabled otherwise; ``0`` disables
        explicitly.  Local-shard restart and remote ejection also
        happen reactively on request failures, prober or not.
    async_transport:
        Reach remote shards over the multiplexed async transport
        (:class:`~repro.service.transport.AsyncBridgeTransport`): many
        requests in flight per connection, request-id demultiplexing,
        and — when ``request_timeout`` is set — server-side deadlines
        (the shard answers a deadline miss itself, promptly, and stays
        on the ring instead of being ejected for being busy).  Requires
        ``shard_addresses``; local pipe shards are unaffected.  Solving
        against an async ``shard-serve --async`` server with the
        default sync transport also works (the wire is compatible) but
        serialises per connection.
    replication_factor:
        Replica count for **hot** fingerprints.  With ``R >= 2`` a
        fingerprint whose heat (lookup count in the broker's
        :class:`~repro.service.cache.HeatSketch`) reaches
        ``hot_threshold`` is served by rotating over its first R live
        ring successors (:meth:`HashRing.successors`), and solutions
        are fanned to the replicas that miss them — generation-checked
        puts piggybacked on the solve reply path, so a racing
        invalidation can never be undone by a replica write.  The
        default ``1`` keeps classic single-owner routing.
    near_cache_size:
        Entry budget of a tiny broker-side cache in front of the ring
        for the very head of the key distribution (``0`` disables).
        Hot entries (heat >= ``hot_threshold``) are admitted with the
        generation captured at solve start and revalidated the same
        way shard caches are — :meth:`invalidate_platform`/:meth:`clear`
        bump its generation, so serving a stale near-cache entry is
        structurally impossible.
    hot_threshold:
        Lookup count (per the heat sketch) at which a fingerprint is
        treated as hot — replicated and near-cached.
    heat_capacity:
        Tracked-key budget of the broker's space-saving heat sketch
        (``0`` disables heat tracking, and with it replication and the
        near-cache).
    """

    def __init__(
        self,
        shards: int = 2,
        shard_mode: Optional[str] = None,
        workers: int = 2,
        cache_size: int = 256,
        ttl: Optional[float] = None,
        incremental: bool = True,
        replicas: int = 64,
        mp_start_method: Optional[str] = None,
        shard_addresses: Optional[List[str]] = None,
        request_timeout: Optional[float] = None,
        health_interval: Optional[float] = None,
        async_transport: bool = False,
        replication_factor: int = 1,
        near_cache_size: int = 64,
        hot_threshold: int = 8,
        heat_capacity: int = 512,
    ) -> None:
        addresses = list(shard_addresses or [])
        if async_transport and not addresses:
            raise ValueError(
                "async_transport multiplexes remote shard connections; "
                "it requires shard_addresses"
            )
        self.async_transport = bool(async_transport)
        if shard_mode is None:
            shard_mode = "process" if addresses else "thread"
        if shard_mode not in ("thread", "process"):
            raise ValueError("shard_mode must be 'thread' or 'process'")
        if addresses and shard_mode == "thread":
            raise ValueError(
                "remote shard addresses require shard_mode='process' "
                "(local shards run as pipe workers beside them)"
            )
        if shard_mode == "thread" and request_timeout:
            # fail loudly: thread shards solve in-process with no channel
            # to time out, so the flag would silently buy no protection
            raise ValueError(
                "request_timeout applies to transport shards only; "
                "thread-mode shards solve in-process and cannot be "
                "timed out"
            )
        local_count = int(shards)
        if local_count < 0:
            raise ValueError("shards must be >= 0")
        self.shard_mode = shard_mode
        self.workers = max(1, int(workers))
        self.ring = HashRing(local_count + len(addresses),
                             replicas=replicas)
        self.metrics = MetricsRegistry()  # front-door ops + transport RTT
        self.cache = _AggregateCacheView(self)
        self.request_timeout = (request_timeout
                                if request_timeout and request_timeout > 0
                                else None)
        self._health_lock = threading.Lock()
        # requests that abandoned a shard mid-flight
        self.failovers = 0  # guarded-by: _health_lock
        # ejected remote shards re-admitted to the ring
        self.rejoins = 0  # guarded-by: _health_lock
        self._closed = False
        # ---- hot-key replication + near-cache ------------------------
        if replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        if hot_threshold < 1:
            raise ValueError("hot_threshold must be >= 1")
        if near_cache_size < 0:
            raise ValueError("near_cache_size must be >= 0")
        if heat_capacity < 0:
            raise ValueError("heat_capacity must be >= 0")
        self.replication_factor = int(replication_factor)
        self.hot_threshold = int(hot_threshold)
        hot_features = self.replication_factor > 1 or near_cache_size > 0
        self._heat = (HeatSketch(heat_capacity)
                      if heat_capacity > 0 and hot_features else None)
        self._near_cache = (SolutionCache(max_size=near_cache_size, ttl=ttl)
                            if near_cache_size > 0 and self._heat is not None
                            else None)
        self._rep_lock = threading.Lock()
        # hot-key solutions written to replicas that missed them
        self.replicated_puts = 0  # guarded-by: _rep_lock
        # replicated puts refused: generation moved (stale), no known
        # generation yet, or the replica's transport failed
        self.replica_put_rejects = 0  # guarded-by: _rep_lock
        # hot reads served by a non-primary replica (rotation working)
        self.replica_reads = 0  # guarded-by: _rep_lock
        # per-shard cache-generation lower bounds learned from transport
        # replies ("gen" rides on every shard reply); monotone, so a lag
        # only makes a replicated put reject safely, never land stale
        self._known_gens: Dict[int, int] = {}  # guarded-by: _rep_lock
        # in-flight replica put dispatches (drained by flush_replication)
        self._put_futures: Set[Future] = set()  # guarded-by: _rep_lock
        self._thread_shards: List[Broker] = []
        self._transport_shards: List[_TransportShard] = []
        if shard_mode == "thread":
            self._thread_shards = [
                Broker(
                    cache=SolutionCache(max_size=cache_size, ttl=ttl),
                    workers=self.workers,
                    executor="thread",
                    incremental=incremental,
                )
                for _ in range(self.ring.shards)
            ]
        else:
            ctx = (multiprocessing.get_context(mp_start_method)
                   if mp_start_method else multiprocessing.get_context())
            remote_cls = (_AsyncRemoteShard if self.async_transport
                          else _RemoteShard)
            self._transport_shards = [
                _LocalShard(index, ctx, cache_size, ttl, incremental)
                for index in range(local_count)
            ] + [
                remote_cls(local_count + offset, address)
                for offset, address in enumerate(addresses)
            ]
        if health_interval is None:
            health_interval = 5.0 if addresses else 0.0
        self.health_interval = (health_interval
                                if health_interval > 0 else None)
        self._stop_event = threading.Event()
        self._health_thread: Optional[threading.Thread] = None
        if self._transport_shards and self.health_interval:
            self._health_thread = threading.Thread(
                target=self._health_loop,
                name="repro-shard-health",
                daemon=True,
            )
            self._health_thread.start()

    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        return self.ring.shards

    def shard_for(self, fingerprint: str) -> int:
        """The shard id a fingerprint routes to (stable, deterministic;
        ignores ejections — the *home* shard, not today's stand-in)."""
        return self.ring.route(fingerprint)

    @property
    def ipc_round_trips(self) -> int:
        """Total transport round-trips across all pipe/TCP shards (0 in
        thread mode) — what ``solve_many`` batching is measured by."""
        return sum(shard.calls for shard in self._transport_shards)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._stop_event.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=10.0)
        for broker in self._thread_shards:
            broker.close()
        for shard in self._transport_shards:
            shard.stop()

    def __enter__(self) -> "ShardedBroker":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # transport dispatch: metered calls, recovery, ring failover
    # ------------------------------------------------------------------
    def _shard_call(self, shard: _TransportShard,
                    msg: Dict[str, Any]) -> Dict[str, Any]:
        """One metered call; transport failures trigger recovery and
        re-raise as typed :class:`ShardUnavailableError`\\ s."""
        endpoint = f"transport.{shard.transport.kind}"
        epoch = shard.epoch
        timeout = self.request_timeout
        if timeout is not None and msg.get("op") == "solve_many":
            # request_timeout is a PER-REQUEST budget; a solve_many
            # round-trip carries a whole sub-batch, so the wait scales
            # with it — otherwise any batch longer than one budget would
            # deterministically "time out" a healthy shard and wipe its
            # warm state
            timeout *= max(1, len(msg.get("items", ())))
        if timeout is not None and shard.muxed:
            # multiplexed shard: ship the budget as a server-side
            # deadline and wait a little longer client-side, so the
            # *shard* answers the deadline miss (promptly, channel
            # intact) rather than this end guessing and abandoning a
            # healthy connection
            msg = {**msg, "deadline": timeout}
            timeout = timeout + max(1.0, timeout * 0.5)
        with span(endpoint, shard=shard.index,
                  address=shard.transport.address,
                  op=msg.get("op")) as sp:
            start = time.perf_counter()
            try:
                reply = shard.call(msg, timeout=timeout)
            except ShardTimeoutError as exc:
                # server-reported deadline miss (shard.call minted it
                # from the reply): the shard is alive and the channel is
                # fine — count the timeout, never eject or restart
                self.metrics.observe(endpoint, time.perf_counter() - start,
                                     error=True)
                with self._health_lock:
                    shard.timeouts += 1
                log_event("shard.deadline", shard=shard.index,
                          kind=shard.transport.kind,
                          address=shard.transport.address,
                          op=msg.get("op"))
                raise
            except TransportTimeout as exc:
                self.metrics.observe(endpoint, time.perf_counter() - start,
                                     error=True)
                self._note_transport_failure(shard, epoch, timeout=True)
                raise ShardTimeoutError(
                    f"shard {shard.index} ({shard.transport.address}): "
                    f"{exc}",
                    shard=shard.index,
                ) from exc
            except TransportError as exc:
                self.metrics.observe(endpoint, time.perf_counter() - start,
                                     error=True)
                self._note_transport_failure(shard, epoch)
                raise ShardUnavailableError(
                    f"shard {shard.index} ({shard.transport.address}): "
                    f"{exc}",
                    shard=shard.index,
                ) from exc
            rtt = time.perf_counter() - start
            self.metrics.observe(endpoint, rtt)
            gen = reply.get("gen")
            if isinstance(gen, int):
                self._note_generation(shard.index, gen)
            if sp is not None:
                # re-parent shard-side span trees (single replies and
                # solve_many items alike) into this caller's trace
                remote = reply.get("trace")
                if remote:
                    graft_remote(sp, remote.get("spans", []), rtt)
                for item in reply.get("results", ()):
                    item_trace = item.get("trace") if isinstance(item, dict) \
                        else None
                    if item_trace:
                        graft_remote(sp, item_trace.get("spans", []), rtt)
            return reply

    def _note_transport_failure(self, shard: _TransportShard, epoch: int,
                                timeout: bool = False) -> None:
        """Count one failure and recover the shard: local shards get one
        automatic restart, remote shards are ejected until the health
        probe sees them answer again."""
        with self._health_lock:
            shard.failures += 1
            if timeout:
                shard.timeouts += 1
        log_event("shard.timeout" if timeout else "shard.failure",
                  shard=shard.index, kind=shard.transport.kind,
                  address=shard.transport.address)
        if shard.restartable:
            usable = shard.restart(epoch)  # marks dead if respawn fails
            log_event("shard.restart", shard=shard.index, usable=usable)
        else:
            shard.ejected = True
            log_event("shard.eject", shard=shard.index,
                      address=shard.transport.address)

    def _inactive_ids(self) -> set:
        return {s.index for s in self._transport_shards if not s.active}

    # ------------------------------------------------------------------
    # hot-key machinery: heat, near-cache, replica fan-out
    # ------------------------------------------------------------------
    def _note_generation(self, shard_id: int, gen: int) -> None:
        """Raise the learned generation lower bound for a shard (every
        transport reply carries the shard's current cache generation)."""
        with self._rep_lock:
            prev = self._known_gens.get(shard_id)
            if prev is None or gen > prev:
                self._known_gens[shard_id] = gen

    def _record_heat(self, fp: str) -> int:
        """Count one lookup; 0 when heat tracking is disabled."""
        return self._heat.record(fp) if self._heat is not None else 0

    def _near_lookup(self, request: SolveRequest,
                     fp: str) -> Optional[BrokerResult]:
        """Serve from the broker near-cache when possible.

        Counts a hit/miss on the near-cache's own stats either way.  A
        hit that cannot satisfy ``include_schedule`` (the near entry
        holds no schedule) falls through to the owning shard, which can
        reconstruct it; that rare case still counts as a near hit.
        """
        near = self._near_cache
        if near is None:
            return None
        start = time.perf_counter()
        entry = near.get(fp)
        if entry is None:
            return None
        if request.include_schedule and entry.schedule is None:
            return None
        elapsed = time.perf_counter() - start
        # a near hit never reaches a shard engine, so the front-door
        # registry must count the request for the merged totals
        self.metrics.observe("solve", elapsed)
        self.metrics.observe("solve.near", elapsed)
        with span("near_cache.hit", fingerprint=fp[:12]):
            pass
        return BrokerResult(
            fingerprint=fp,
            solution=entry.solution,
            schedule=entry.schedule if request.include_schedule else None,
            cached=True,
            latency_seconds=elapsed,
        )

    def _hot_context(self, fp: str, count: int) -> Optional[_HotContext]:
        """Capture the replica set and all generations for a hot solve —
        *before* dispatch, per the PR 3 race discipline.  ``None`` when
        the fingerprint is not (yet) hot or the features are off."""
        if count < self.hot_threshold:
            return None
        if self.replication_factor < 2 and self._near_cache is None:
            return None
        ctx = _HotContext()
        if self.replication_factor > 1:
            try:
                replica_ids = self.ring.successors(
                    fp, self.replication_factor, skip=self._inactive_ids())
            except ValueError:
                replica_ids = []
            if len(replica_ids) > 1:
                ctx.replicas = replica_ids
                ctx.target = replica_ids[count % len(replica_ids)]
                if self._thread_shards:
                    ctx.generations = {
                        sid: self._thread_shards[sid].cache.generation
                        for sid in replica_ids
                    }
                else:
                    with self._rep_lock:
                        ctx.generations = {
                            sid: self._known_gens.get(sid)
                            for sid in replica_ids
                        }
        if self._near_cache is not None:
            ctx.near_generation = self._near_cache.generation
        return ctx

    def _count_replica_read(self, ctx: Optional[_HotContext]) -> None:
        """A hot read about to be served off the primary replica."""
        if ctx is not None and ctx.replicas and ctx.target != ctx.replicas[0]:
            with self._rep_lock:
                self.replica_reads += 1

    def _propagate(self, request: SolveRequest, fp: str,
                   result: BrokerResult, ctx: Optional[_HotContext],
                   wire_result: Optional[Dict[str, Any]] = None,
                   entry_sink: Optional[
                       Dict[int, List[Dict[str, Any]]]] = None) -> None:
        """Fan a hot solution out: near-cache admission plus writes to
        the replicas that missed it, each put guarded by the generation
        captured at solve start (:class:`_HotContext`).

        ``entry_sink`` (transport mode) collects the put entries instead
        of dispatching them, so a batch fans all its hot keys to a shard
        in ONE round-trip — the ``solve_many`` batching discipline
        applied to replication.
        """
        if ctx is None:
            return
        near = self._near_cache
        if near is not None and near.peek(fp) is None:
            near.put(fp, result.solution, request.platform,
                     schedule=result.schedule,
                     generation=ctx.near_generation)
        if not ctx.replicas:
            return
        if self._thread_shards:
            with span("ring.replicate", fingerprint=fp[:12],
                      replicas=len(ctx.replicas)):
                for sid in ctx.replicas:
                    if sid == ctx.target:
                        continue
                    gen = ctx.generations.get(sid)
                    if gen is None:
                        # no captured generation — an unguarded put could
                        # land stale, so it must not happen
                        with self._rep_lock:
                            self.replica_put_rejects += 1
                        continue
                    cache = self._thread_shards[sid].cache
                    if cache.peek(fp) is not None:
                        continue
                    stored = cache.put(fp, result.solution, request.platform,
                                       schedule=result.schedule,
                                       generation=gen)
                    with self._rep_lock:
                        if stored is not None:
                            self.replicated_puts += 1
                        else:
                            self.replica_put_rejects += 1
            return
        if wire_result is None:
            return  # failover re-dispatch path: nothing to fan out
        entries_by_shard: Dict[int, List[Dict[str, Any]]] = (
            {} if entry_sink is None else entry_sink
        )
        encoded = platform_to_dict(request.platform)
        for sid in ctx.replicas:
            if sid == ctx.target:
                continue
            entry = {"fp": fp, "result": wire_result, "platform": encoded}
            gen = ctx.generations.get(sid)
            if gen is not None:
                entry["gen"] = gen
            entries_by_shard.setdefault(sid, []).append(entry)
        if entry_sink is None:
            self._dispatch_puts(entries_by_shard)

    def _dispatch_puts(
        self, entries_by_shard: Dict[int, List[Dict[str, Any]]]
    ) -> None:
        """Queue batched replica puts on each shard's own dispatch
        queue — fire-and-forget from the solve path (the reply already
        went to the caller), drainable via :meth:`flush_replication`."""
        parent = current_span()
        for sid, entries in entries_by_shard.items():
            shard = self._transport_shards[sid]
            if not shard.active:
                with self._rep_lock:
                    self.replica_put_rejects += len(entries)
                continue
            fut = shard.executor.submit(self._run_put, shard, entries,
                                        parent)
            with self._rep_lock:
                self._put_futures.add(fut)
            fut.add_done_callback(self._discard_put_future)

    def _discard_put_future(self, fut: Future) -> None:
        with self._rep_lock:
            self._put_futures.discard(fut)

    def _run_put(self, shard: _TransportShard,
                 entries: List[Dict[str, Any]], parent) -> None:
        with activate(parent):
            with span("ring.replicate", shard=shard.index,
                      entries=len(entries)):
                try:
                    reply = self._shard_call(
                        shard, {"op": "put", "entries": entries})
                except ShardError:
                    with self._rep_lock:
                        self.replica_put_rejects += len(entries)
                    return
        with self._rep_lock:
            self.replicated_puts += reply.get("stored", 0)
            self.replica_put_rejects += (reply.get("stale", 0)
                                         + reply.get("skipped", 0))

    def flush_replication(self, timeout: Optional[float] = None) -> int:
        """Block until queued replica puts land; returns how many
        dispatches were waited on (tests use this for determinism —
        production callers never need it)."""
        with self._rep_lock:
            pending = list(self._put_futures)
        if pending:
            wait(pending, timeout=timeout)
        return len(pending)

    def _routed_call(self, fp: str, msg: Dict[str, Any],
                     prefer: Optional[int] = None) -> Dict[str, Any]:
        """Route to the fingerprint's shard with automatic failover.

        ``prefer`` names the shard to try first (a hot key's rotating
        replica); failover from it walks the ring exactly as before.  A
        transport failure retries once on the same shard when it was
        just restarted (local), then walks the ring to the next live
        shard.  Worker-*reported* errors (the shard is alive and said
        no) propagate immediately — failing over a deterministic solver
        error would just fail N times.
        """
        tried: set = set()
        first_error: Optional[ShardUnavailableError] = None
        while True:
            skip = tried | self._inactive_ids()
            if prefer is not None and prefer not in skip:
                shard_id = prefer
                prefer = None  # one preferred attempt, then ring order
            else:
                try:
                    shard_id = self.ring.route(fp, skip=skip)
                except ValueError:
                    raise first_error or ShardError(
                        "no shards available (all ejected or dead)"
                    )
            shard = self._transport_shards[shard_id]
            retried_fresh_worker = False
            while True:
                try:
                    return self._shard_call(shard, msg)
                except ShardUnavailableError as exc:
                    if exc.server_reported:
                        # the shard is alive and answered within budget
                        # that the op itself blew its deadline; failing
                        # over would just run the same slow solve again
                        # somewhere colder
                        raise
                    if first_error is None:
                        first_error = exc
                    if (shard.restartable and shard.active
                            and not retried_fresh_worker):
                        # the failure handler just swapped in a fresh
                        # worker — the request gets one try on it
                        retried_fresh_worker = True
                        continue
                    break
            tried.add(shard_id)
            with self._health_lock:
                self.failovers += 1
            log_event("shard.failover", from_shard=shard_id,
                      fingerprint=fp[:12])
            # a zero-length marker in the waterfall: the request left
            # this shard and re-entered routing
            with span("ring.failover", from_shard=shard_id):
                pass

    # ------------------------------------------------------------------
    # the solve paths
    # ------------------------------------------------------------------
    def solve(self, request: SolveRequest) -> BrokerResult:
        """Route one request to its shard and solve synchronously.

        Hot fingerprints (heat >= ``hot_threshold``) take the skew
        path: near-cache first, then a rotating replica, with the
        solution fanned to the replicas (and the near-cache) that
        missed it — see :class:`_HotContext` for the staleness
        discipline.
        """
        fp = request.fingerprint()
        count = self._record_heat(fp)
        near = self._near_lookup(request, fp)
        if near is not None:
            return near
        ctx = self._hot_context(fp, count)
        if self._thread_shards:
            if ctx is not None and ctx.replicas:
                shard_id = ctx.target
            else:
                shard_id = self.ring.route(fp)
            self._count_replica_read(ctx)
            with span("shard.solve", shard=shard_id, mode="thread"):
                result = self._thread_shards[shard_id].solve(request)
            self._propagate(request, fp, result, ctx)
            return result
        return self._transport_solve(request, fp, ctx)

    def submit(self, request: SolveRequest) -> "Future[BrokerResult]":
        """Asynchronous solve on the owning shard.

        Thread mode keeps the shard broker's in-flight coalescing:
        identical concurrent requests always route to the same shard, so
        they still share one LP (a hot key's rotation step changes the
        target only every ``len(replicas)`` lookups, and the replicas
        serve repeats from their own caches).  Transport mode serialises
        per shard (the channel), so a duplicate behind an in-flight twin
        resolves as a cache hit instead.
        """
        fp = request.fingerprint()
        count = self._record_heat(fp)
        near = self._near_lookup(request, fp)
        if near is not None:
            done: "Future[BrokerResult]" = Future()
            done.set_result(near)
            return done
        ctx = self._hot_context(fp, count)
        if self._thread_shards:
            if ctx is not None and ctx.replicas:
                shard_id = ctx.target
            else:
                shard_id = self.ring.route(fp)
            self._count_replica_read(ctx)
            fut = self._thread_shards[shard_id].submit(request)
            if ctx is not None:
                fut.add_done_callback(
                    lambda f: self._propagate_future(request, fp, ctx, f))
            return fut
        shard = self._transport_shards[self._queue_shard_id(fp, ctx)]
        # the caller's span must follow the request onto the shard's
        # dispatch thread (where the transport span is opened)
        parent = current_span()
        return shard.executor.submit(self._dispatch_solve, request, fp,
                                     parent, ctx)

    def _propagate_future(self, request: SolveRequest, fp: str,
                          ctx: _HotContext,
                          fut: "Future[BrokerResult]") -> None:
        """Fan out a hot async solve once it lands (runs on the shard's
        worker thread; put failures must never surface to the waiter)."""
        try:
            result = fut.result()
        except Exception:  # noqa: BLE001 — the solve failed; caller sees it
            return
        try:
            self._propagate(request, fp, result, ctx)
        except Exception:  # noqa: BLE001 — replication is best-effort
            pass

    def _dispatch_solve(self, request: SolveRequest, fp: str, parent,
                        ctx: Optional[_HotContext] = None) -> BrokerResult:
        with activate(parent):
            return self._transport_solve(request, fp, ctx)

    def _queue_shard_id(self, fp: str,
                        ctx: Optional[_HotContext] = None) -> int:
        """The dispatch queue for an async solve: the hot key's chosen
        replica, else the fingerprint's live owner, or its home shard
        when nothing is live (the routed call will then raise the
        no-shards error inside the future)."""
        if ctx is not None and ctx.target is not None:
            return ctx.target
        try:
            return self.ring.route(fp, skip=self._inactive_ids())
        except ValueError:
            return self.ring.route(fp)

    def _transport_solve(self, request: SolveRequest, fp: str,
                         ctx: Optional[_HotContext] = None) -> BrokerResult:
        from .api import _request_wire  # deferred: avoid import cycle

        # the memoized read-only encoding: re-sends never re-encode the
        # platform, whichever shard (or failover stand-in) receives it
        msg = {
            "op": "solve",
            "fp": fp,
            "request": _request_wire(request),
        }
        if current_span() is not None:
            msg["trace"] = True  # ask the shard for its span tree
        prefer = ctx.target if ctx is not None else None
        self._count_replica_read(ctx)
        reply = self._routed_call(fp, msg, prefer=prefer)
        result = result_from_wire(reply["result"])
        self._propagate(request, fp, result, ctx,
                        wire_result=reply["result"])
        return result

    def solve_batch(self, requests: List[SolveRequest]) -> List[BrokerResult]:
        """Fan a mixed batch out across shards; order preserved.

        Transport shards receive ONE ``solve_many`` message per shard
        (the whole sub-batch crosses in a single round-trip instead of
        one per request — the IPC/network cost that dominates hit-heavy
        workloads); thread shards keep the in-process submit path.  A
        sub-batch whose shard dies mid-call fails over: its requests are
        re-dispatched individually through the ring, so a killed shard
        loses no requests.  As with
        :meth:`~repro.service.broker.Broker.solve_batch`, a failing
        *request* propagates its exception; callers needing per-request
        error isolation submit individually.
        """
        with self.metrics.timer("solve.batch"):
            if self._thread_shards:
                futures = [self.submit(request) for request in requests]
                return [fut.result() for fut in futures]
            return self._transport_solve_batch(requests)

    def _dispatch_call(self, shard: _TransportShard, msg: Dict[str, Any],
                       parent) -> Dict[str, Any]:
        with activate(parent):
            return self._shard_call(shard, msg)

    def _transport_solve_batch(
        self, requests: List[SolveRequest]
    ) -> List[BrokerResult]:
        from .api import _request_wire  # deferred: avoid import cycle

        fps = [request.fingerprint() for request in requests]
        parent = current_span()
        traced = parent is not None
        inactive = self._inactive_ids()
        by_shard: Dict[Optional[int], List[int]] = {}
        ctxs: Dict[int, Optional[_HotContext]] = {}
        outcomes: List[Any] = [None] * len(requests)
        for index, fp in enumerate(fps):
            count = self._record_heat(fp)
            near = self._near_lookup(requests[index], fp)
            if near is not None:
                outcomes[index] = near  # served before touching a shard
                continue
            ctx = self._hot_context(fp, count)
            ctxs[index] = ctx
            if ctx is not None and ctx.target is not None:
                self._count_replica_read(ctx)
                owner: Optional[int] = ctx.target
            else:
                try:
                    owner = self.ring.route(fp, skip=inactive)
                except ValueError:
                    owner = None  # nothing live: the retry path will raise
            by_shard.setdefault(owner, []).append(index)
        # one solve_many per shard, dispatched through the shard's own
        # queue (ordered with its other work), all shards in parallel
        futures = {
            shard_id: self._transport_shards[shard_id].executor.submit(
                self._dispatch_call,
                self._transport_shards[shard_id],
                {
                    "op": "solve_many",
                    "items": [
                        {"fp": fps[i], "request": _request_wire(requests[i]),
                         **({"trace": True} if traced else {})}
                        for i in indices
                    ],
                },
                parent,
            )
            for shard_id, indices in by_shard.items()
            if shard_id is not None
        }
        retry: List[int] = list(by_shard.get(None, ()))
        for shard_id, indices in by_shard.items():
            if shard_id is None:
                continue
            try:
                reply = futures[shard_id].result()
            except ShardUnavailableError as exc:
                if exc.server_reported:
                    raise  # the shard is alive; see _routed_call
                # the shard died holding this whole sub-batch: fail its
                # members over individually (recovery already ran)
                retry.extend(indices)
                with self._health_lock:
                    self.failovers += 1
                continue
            for i, item in zip(indices, reply["results"]):
                outcomes[i] = item
        for i in sorted(retry):
            outcomes[i] = self._transport_solve(requests[i], fps[i],
                                                ctxs.get(i))
        results: List[BrokerResult] = []
        # hot keys fan out in ONE batched put per replica shard, not one
        # round-trip per hot item
        put_sink: Dict[int, List[Dict[str, Any]]] = {}
        for index, item in enumerate(outcomes):
            assert item is not None
            if isinstance(item, BrokerResult):  # near hit / failover
                results.append(item)
                continue
            if not item.get("ok"):
                raise _raise_worker_error(item)
            result = result_from_wire(item["result"])
            results.append(result)
            self._propagate(requests[index], fps[index], result,
                            ctxs.get(index), wire_result=item["result"],
                            entry_sink=put_sink)
        if put_sink:
            self._dispatch_puts(put_sink)
        return results

    # ------------------------------------------------------------------
    # invalidation + introspection
    # ------------------------------------------------------------------
    def invalidate_platform(self, platform: Platform) -> int:
        """Drop this platform's entries and hot models on *every* shard.

        A platform's requests spread across shards (each problem/option
        combination fingerprints differently), so invalidation must fan
        out.  Each shard's generation counter makes the fan-out sound
        under racing in-flight solves, and an **unreachable shard never
        fails the caller**: it is ejected (remote) or restarted with an
        empty cache (local) and counted in ``shard_health`` — either
        way its stale entries are gone before it serves again (a remote
        shard's cache is cleared on rejoin).

        The broker near-cache is invalidated first (its generation
        bumps, so a replicated or near put racing this call is refused);
        near-cache removals are duplicates of shard entries and are NOT
        counted in the returned total.
        """
        if self._near_cache is not None:
            self._near_cache.invalidate_platform(platform)
        if self._thread_shards:
            return sum(broker.invalidate_platform(platform)
                       for broker in self._thread_shards)
        encoded = platform_to_dict(platform)
        return sum(
            reply["removed"]
            for _shard, reply in self._fanout({"op": "invalidate",
                                               "platform": encoded})
            if reply is not None
        )

    def clear(self) -> int:
        """Drop every cached entry on every shard; returns entries removed.

        (The per-shard generation counters advance — the near-cache's
        too — so in-flight solves cannot re-populate the caches with
        pre-clear solutions.  Like :meth:`invalidate_platform`, an
        unreachable shard is recovered and counted, never raised; near-
        cache removals are duplicates and are not counted.)
        """
        if self._near_cache is not None:
            self._near_cache.clear()
        if self._thread_shards:
            return sum(broker.cache.clear()
                       for broker in self._thread_shards)
        return sum(reply["cleared"]
                   for _shard, reply in self._fanout({"op": "clear"})
                   if reply is not None)

    def _fanout(self, msg: Dict[str, Any]):
        """Send one op to every *live* transport shard concurrently,
        ahead of each shard's queued solves.

        Transient threads contend on the shard locks directly rather
        than joining the per-shard dispatch queues, so a metrics scrape
        or an invalidation waits for (roughly) one in-flight call per
        shard — not for a deep solve backlog to drain — and the shards
        are visited in parallel, so the total wait is the slowest
        shard's, not the sum.  Returns ``(shard, reply-or-None)`` pairs
        in shard-id order; ``None`` marks a shard that failed at the
        transport level mid-fan-out (recovery already ran — it was
        restarted or ejected).  Worker-*reported* errors still raise:
        the shard is alive, the request itself is at fault.
        """
        shards = [s for s in self._transport_shards if s.active]
        if not shards:
            return []
        with ThreadPoolExecutor(
            max_workers=len(shards),
            thread_name_prefix="repro-shard-fanout",
        ) as pool:
            futures = [(shard, pool.submit(self._shard_call, shard,
                                           dict(msg)))
                       for shard in shards]
            out = []
            for shard, fut in futures:
                try:
                    out.append((shard, fut.result()))
                except ShardUnavailableError:
                    out.append((shard, None))
            return out

    def shard_snapshots(self) -> List[Optional[Dict[str, Any]]]:
        """Per-shard engine snapshots (``cache`` / ``metrics`` /
        ``incremental``), in shard-id order; ``None`` for shards that
        are ejected, dead, or failed mid-scrape (transport shards are
        queried concurrently — see :meth:`_fanout`)."""
        if self._thread_shards:
            # keys ride along so merged snapshots can deduplicate
            # replicated entries (transport shards do the same server-side)
            return [broker.engine.snapshot(include_keys=True)
                    for broker in self._thread_shards]
        snaps: List[Optional[Dict[str, Any]]] = (
            [None] * len(self._transport_shards)
        )
        for shard, reply in self._fanout({"op": "snapshot"}):
            if reply is not None:
                snaps[shard.index] = reply["snapshot"]
        return snaps

    def shard_health(self) -> Dict[str, Any]:
        """Supervision counters + per-shard liveness (JSON-safe)."""
        with self._health_lock:
            out: Dict[str, Any] = {
                "shard_failures": sum(s.failures
                                      for s in self._transport_shards),
                "shard_timeouts": sum(s.timeouts
                                      for s in self._transport_shards),
                "shard_restarts": sum(s.restarts
                                      for s in self._transport_shards),
                "failovers": self.failovers,
                "rejoins": self.rejoins,
            }
        out["shards"] = [s.health() for s in self._transport_shards]
        return out

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe aggregate state: merged cache counters, merged
        metrics (see :func:`~repro.service.metrics.merge_snapshots` for
        the aggregation semantics), supervision counters and a compact
        per-shard breakdown (unreachable shards flagged, not omitted)."""
        shard_snaps = self.shard_snapshots()
        present = [s for s in shard_snaps if s is not None]
        coalesced = sum(b.coalesced for b in self._thread_shards)
        # the front-door registry's uptime is the service's routing age;
        # remote shards start/restart/rejoin at their own times, so their
        # uptimes must not dilate the derived requests/sec
        merged_metrics = merge_snapshots(
            [self.metrics.snapshot()] + [s["metrics"] for s in present],
            uptime_seconds=self.metrics.uptime_seconds,
        )
        per_shard = []
        for idx, s in enumerate(shard_snaps):
            if s is None:
                shard = self._transport_shards[idx]
                per_shard.append({"shard": idx, "unreachable": True,
                                  **shard.health()})
                continue
            per_shard.append({
                "shard": idx,
                "requests": s["metrics"]["total_requests"],
                "cache_size": s["cache"]["size"],
                "hits": s["cache"]["hits"],
                "misses": s["cache"]["misses"],
                # the full warm-path breakdown of this shard (hot
                # models, evictions, basis restarts, pivots, ...)
                **({"incremental": s["incremental"]}
                   if "incremental" in s else {}),
                # async shard servers report their loop state (in-flight
                # ops, queue depth, cross-broker coalescing)
                **({"async": s["async"]} if "async" in s else {}),
            })
        out: Dict[str, Any] = {
            "executor": f"sharded-{self.shard_mode}",
            "shards": self.shards,
            "shard_mode": self.shard_mode,
            "workers": self.workers,
            "coalesced": coalesced,
            # solves coalesced ON the shards across all their brokers
            # (this broker's view is whatever its shards report)
            "shard_coalesced": sum(
                s.get("async", {}).get("shard_coalesced", 0)
                for s in present
            ),
            "cache": _merge_cache_snapshots([s["cache"] for s in present]),
            "metrics": merged_metrics,
            "shard_health": self.shard_health(),
            "per_shard": per_shard,
            "replication": self._replication_snapshot(per_shard),
        }
        incremental = [s["incremental"] for s in present
                       if "incremental" in s]
        if incremental:
            # sum over the union of counters so new WarmSolveStats fields
            # (evictions, basis_restarts, pivot counts, ...) surface in
            # /metrics without this list needing maintenance; *_max keys
            # are high-water marks and merge by max, not sum
            keys = sorted({key for snap in incremental for key in snap})
            out["incremental"] = {
                key: (max if key.endswith("_max") else sum)(
                    snap.get(key, 0) for snap in incremental)
                for key in keys
            }
        return out

    def _replication_snapshot(
        self, per_shard: List[Dict[str, Any]]
    ) -> Dict[str, Any]:
        """The hot-key subsystem's JSON view: config, fan-out counters,
        near-cache stats, the sketch's hot head, and the per-shard
        request imbalance (max/mean — 1.0 is perfectly even; the gauge
        replication exists to pull down under Zipf skew)."""
        with self._rep_lock:
            out: Dict[str, Any] = {
                "factor": self.replication_factor,
                "hot_threshold": self.hot_threshold,
                "replicated_puts": self.replicated_puts,
                "replica_put_rejects": self.replica_put_rejects,
                "replica_reads": self.replica_reads,
            }
        loads = [s["requests"] for s in per_shard if "requests" in s]
        if loads and sum(loads) > 0:
            mean = sum(loads) / len(loads)
            out["load_imbalance"] = max(loads) / mean
        else:
            out["load_imbalance"] = None
        if self._heat is not None:
            out["heat"] = self._heat.snapshot()
        if self._near_cache is not None:
            near = self._near_cache.snapshot()
            out["near_cache"] = {
                "size": near["size"],
                "max_size": near["max_size"],
                "generation": near["generation"],
                "hits": near["hits"],
                "misses": near["misses"],
                "hit_rate": near["hit_rate"],
                # a refused put IS the staleness guarantee working: the
                # generation moved between solve start and admission
                "stale_rejects": near["stale_puts"],
            }
        return out

    # ------------------------------------------------------------------
    # background health: probe, restart, eject, rejoin
    # ------------------------------------------------------------------
    def _health_loop(self) -> None:
        while not self._stop_event.wait(self.health_interval):
            for shard in self._transport_shards:
                if self._closed:
                    return
                try:
                    self._health_check(shard)
                except Exception:  # noqa: BLE001 — the prober must live
                    pass

    def _health_check(self, shard: _TransportShard) -> None:
        if shard.dead:
            return  # local respawn failed: permanent until close
        if shard.ejected:
            # rejoin probe; TcpTransport reconnects lazily, so a ping
            # answered means the host is back.  Clear before re-admitting:
            # invalidations fanned out during the outage skipped this
            # shard, so whatever it still caches may be stale.
            if not shard.transport.ping(timeout=_PING_TIMEOUT):
                return
            try:
                with shard.lock:
                    shard.transport.request({"op": "clear"},
                                            timeout=_PING_TIMEOUT)
            except TransportError:
                return  # came back and vanished again; next round retries
            shard.ejected = False
            with self._health_lock:
                self.rejoins += 1
            log_event("shard.rejoin", shard=shard.index,
                      address=shard.transport.address)
            return
        # a busy shard holds its lock mid-request: that is proof of life,
        # and probing through the same channel would interleave frames
        if not shard.lock.acquire(blocking=False):
            return
        try:
            epoch = shard.epoch
            alive = shard.transport.ping(timeout=_PING_TIMEOUT)
        finally:
            shard.lock.release()
        if not alive:
            self._note_transport_failure(shard, epoch)
