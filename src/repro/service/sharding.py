"""Sharded broker: consistent-hash routing over N independent solve shards.

One :class:`~repro.service.broker.SolveEngine` owns one
:class:`~repro.service.cache.SolutionCache` and one
:class:`~repro.service.incremental.IncrementalSolver`.  That is exactly
the state that should *not* be shared once the platform corpus outgrows a
single cache or the solve load outgrows a single process:

* every lookup contends on one cache lock and one in-flight table;
* every hot LP model lives in one process, bounded by one
  ``max_models`` budget and one GIL.

:class:`ShardedBroker` routes each request by **consistent hash of its
fingerprint** to one of N shards, each owning its own engine, so cache
entries and hot models never contend across shards and the aggregate
cache/model capacity scales linearly with the shard count.  Identical
requests always land on the same shard (hash routing is deterministic),
so sharding never duplicates cache entries and per-request results are
exactly the single-broker results — ``Fraction``-exact.

Two shard modes:

``thread`` (default)
    Each shard is a full in-process :class:`~repro.service.broker.Broker`
    (worker pool + in-flight coalescing).  Zero serialization cost; all
    shards share the GIL, so this mode scales cache/model *capacity*, not
    CPU.

``process``
    Each shard is a long-lived worker **process** hosting a bare
    :class:`~repro.service.broker.SolveEngine` behind a pipe.  Requests
    travel as the PR 2 wire codec (``spec.to_wire()`` inside
    :func:`~repro.service.api.request_to_dict`, with the platform as
    ``platform_to_dict``) — JSON-safe dicts, not pickled ``Platform``
    objects — and the worker keeps its cache and warm LP models hot
    across calls, so only the *request description* crosses the process
    boundary, never the solver state.  Results return as pickled
    :class:`~repro.service.broker.BrokerResult` objects (``Fraction``
    arithmetic pickles exactly).  This mode adds one IPC round-trip per
    request but scales CPU-bound solve load across cores and isolates
    solver state per shard.

:meth:`ShardedBroker.invalidate_platform` fans out to every shard (a
platform's requests spread across shards as their fingerprints differ),
and each shard's generation counter (see
:class:`~repro.service.cache.SolutionCache`) guarantees a solve that was
in flight when the invalidation arrived cannot re-populate the shard
cache with a stale solution.

The consistent-hash ring (many points per shard, like the routing rings
in Dask ``distributed``-style schedulers) keeps the fingerprint → shard
map stable and balanced; remapping when the shard count changes moves
only ~1/N of the keyspace.
"""

from __future__ import annotations

import bisect
import hashlib
import multiprocessing
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Dict, List, Optional

from ..platform.graph import Platform
from ..platform.serialization import platform_from_dict, platform_to_dict
from .broker import Broker, BrokerError, BrokerResult, SolveEngine, SolveRequest
from .cache import SolutionCache
from .incremental import IncrementalSolver
from .metrics import MetricsRegistry, merge_snapshots


class ShardError(RuntimeError):
    """A shard worker process failed or died mid-request."""


#: dynamically minted ShardError subclasses named after the worker-side
#: exception class, so ``type(exc).__name__`` — the JSON API's ``"type"``
#: field — reports the ORIGINAL class (RuntimeError, ZeroDivisionError,
#: ...) identically to the unsharded broker, while remaining catchable
#: as ShardError.
_REMOTE_ERROR_TYPES: Dict[str, type] = {}


def _remote_error(type_name: str, message: str) -> ShardError:
    cls = _REMOTE_ERROR_TYPES.get(type_name)
    if cls is None:
        cls = type(type_name, (ShardError,), {
            "__doc__": f"worker-side {type_name}, relayed over the pipe",
        })
        _REMOTE_ERROR_TYPES[type_name] = cls
    return cls(message)


def _raise_worker_error(reply: Dict[str, Any]) -> Exception:
    """The exception for a worker-side ``{"ok": False, ...}`` reply —
    :class:`BrokerError` for spec validation, a relayed
    :class:`ShardError` subclass otherwise (shared by single-solve
    replies and per-item ``solve_many`` replies)."""
    if reply.get("type") == "SpecError":
        return BrokerError(reply.get("error", "shard error"))
    return _remote_error(reply.get("type", "ShardError"),
                         reply.get("error", ""))


# ----------------------------------------------------------------------
# consistent-hash ring
# ----------------------------------------------------------------------
def _hash_point(label: str) -> int:
    """A stable 64-bit point on the ring for a text label."""
    return int(hashlib.sha256(label.encode("utf-8")).hexdigest()[:16], 16)


class HashRing:
    """Consistent-hash ring mapping request fingerprints to shard ids.

    ``replicas`` virtual points per shard smooth the key distribution;
    routing is a binary search, and the map depends only on (shard count,
    replicas) — every :class:`ShardedBroker` with the same configuration
    routes identically, across processes and across restarts.
    """

    def __init__(self, shards: int, replicas: int = 64) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.shards = shards
        self.replicas = replicas
        points = sorted(
            (_hash_point(f"shard:{shard}:replica:{rep}"), shard)
            for shard in range(shards)
            for rep in range(replicas)
        )
        self._keys = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def route(self, fingerprint: str) -> int:
        """Shard id owning this fingerprint (a hex SHA-256 digest)."""
        point = int(fingerprint[:16], 16)
        idx = bisect.bisect_right(self._keys, point)
        if idx == len(self._keys):  # wrap around the ring
            idx = 0
        return self._owners[idx]


# ----------------------------------------------------------------------
# process-shard worker
# ----------------------------------------------------------------------
def _shard_worker_main(
    conn, cache_size: int, ttl: Optional[float], incremental: bool
) -> None:
    """Long-lived shard worker: one engine, one pipe, wire-codec requests.

    The engine (cache + metrics + warm models) lives for the worker's
    whole life — that persistence is the point: re-spawning per request
    would throw the hot state away.  One message in, one reply out;
    failures are reported as ``{"ok": False, ...}`` replies, never by
    killing the worker.
    """
    from .api import request_from_dict  # deferred: avoid import cycle

    engine = SolveEngine(
        cache=SolutionCache(max_size=cache_size, ttl=ttl),
        incremental=IncrementalSolver() if incremental else None,
    )
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):  # parent went away
            return
        op = msg.get("op")
        try:
            if op == "stop":
                conn.send({"ok": True})
                return
            if op == "solve":
                request = request_from_dict(msg["request"])
                result = engine.run(request, msg["fp"])
                conn.send({"ok": True, "result": result})
            elif op == "solve_many":
                # one round-trip for a whole shard batch; per-item error
                # isolation mirrors the JSON API's batch op (one failing
                # request must not discard its siblings' results)
                replies = []
                for item in msg["items"]:
                    try:
                        request = request_from_dict(item["request"])
                        replies.append({
                            "ok": True,
                            "result": engine.run(request, item["fp"]),
                        })
                    except Exception as exc:  # noqa: BLE001 — reply carries it
                        replies.append({"ok": False, "error": str(exc),
                                        "type": type(exc).__name__})
                conn.send({"ok": True, "results": replies})
            elif op == "invalidate":
                platform = platform_from_dict(msg["platform"])
                removed = engine.invalidate_platform(platform)
                conn.send({"ok": True, "removed": removed})
            elif op == "snapshot":
                conn.send({"ok": True, "snapshot": engine.snapshot()})
            elif op == "clear":
                conn.send({"ok": True, "cleared": engine.cache.clear()})
            else:
                conn.send({"ok": False, "error": f"unknown shard op {op!r}",
                           "type": "SpecError"})
        except Exception as exc:  # noqa: BLE001 — reply carries it
            conn.send({"ok": False, "error": str(exc),
                       "type": type(exc).__name__})


class _ProcessShard:
    """Parent-side handle: a worker process, its pipe, a call lock and a
    single-thread dispatch queue.

    The lock serialises pipe use (one request in flight per shard —
    cross-shard parallelism is the scaling axis, and it also gives each
    shard a strict solve → invalidate ordering, which keeps fan-out
    invalidation race-free from the parent's point of view).  The
    per-shard **own** executor is what prevents head-of-line blocking: a
    burst of requests hashing to one busy shard queues on *that shard's*
    thread and can never starve dispatch to idle shards or the
    introspection fan-outs, which a shared pool would allow.
    """

    def __init__(self, index: int, ctx, cache_size: int,
                 ttl: Optional[float], incremental: bool) -> None:
        self.conn, child = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_shard_worker_main,
            args=(child, cache_size, ttl, incremental),
            daemon=True,
        )
        self.process.start()
        child.close()
        self.lock = threading.Lock()
        self.calls = 0  # IPC round-trips (one send+recv pair per call)
        self.executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"repro-shard-{index}"
        )

    def call(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        with self.lock:
            self.calls += 1
            try:
                self.conn.send(msg)
                reply = self.conn.recv()
            except (EOFError, OSError, BrokenPipeError) as exc:
                raise ShardError(
                    f"shard worker pid={self.process.pid} died "
                    f"(exitcode={self.process.exitcode}): {exc}"
                ) from exc
        if not reply.get("ok"):
            raise _raise_worker_error(reply)
        return reply

    def stop(self, timeout: float = 5.0) -> None:
        self.executor.shutdown(wait=True)  # drain queued dispatches first
        try:
            with self.lock:
                self.conn.send({"op": "stop"})
                self.conn.recv()
        except (EOFError, OSError, BrokenPipeError):
            pass
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=timeout)
        self.conn.close()


# ----------------------------------------------------------------------
def _merge_cache_snapshots(snaps: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate per-shard cache snapshots: counters sum, rate re-derives."""
    summed = {
        key: sum(s.get(key, 0) for s in snaps)
        for key in ("size", "max_size", "hits", "misses", "evictions",
                    "expirations", "invalidations", "stale_puts",
                    "generation")
    }
    lookups = summed["hits"] + summed["misses"]
    return {
        **summed,
        "ttl": snaps[0].get("ttl") if snaps else None,
        "hit_rate": summed["hits"] / lookups if lookups else 0.0,
        "shards": len(snaps),
    }


class _AggregateCacheView:
    """Read-only stand-in for ``broker.cache`` over all shards.

    The JSON API (and any library caller poking ``broker.cache``) only
    needs the aggregate snapshot; per-shard caches stay private to their
    shards on purpose.
    """

    def __init__(self, owner: "ShardedBroker") -> None:
        self._owner = owner

    def snapshot(self) -> Dict[str, Any]:
        return _merge_cache_snapshots(
            [s["cache"] for s in self._owner.shard_snapshots()]
        )


# ----------------------------------------------------------------------
class ShardedBroker:
    """Consistent-hash front-end over N independent solve shards.

    Drop-in for :class:`~repro.service.broker.Broker` where the JSON API
    is concerned (``solve`` / ``submit`` / ``solve_batch`` /
    ``invalidate_platform`` / ``snapshot`` / ``metrics`` / ``cache``).

    Parameters
    ----------
    shards:
        Number of independent shards (>= 1; 1 is the unsharded baseline
        with the same code path, useful for benchmarking).
    shard_mode:
        ``"thread"`` — in-process :class:`Broker` per shard (coalescing
        kept, zero serialization, shared GIL); ``"process"`` — long-lived
        worker process per shard, wire-codec dispatch (see module docs).
    workers:
        Thread-pool width *per shard* (thread mode only).
    cache_size / ttl:
        Per-shard :class:`SolutionCache` budget; the aggregate capacity
        is ``shards * cache_size``.
    incremental:
        Enable the per-shard warm re-solve path.
    replicas:
        Virtual ring points per shard (routing smoothness).
    mp_start_method:
        Override the multiprocessing start method for process shards
        (``"fork"``/``"spawn"``/``"forkserver"``; default: platform
        default).
    """

    def __init__(
        self,
        shards: int = 2,
        shard_mode: str = "thread",
        workers: int = 2,
        cache_size: int = 256,
        ttl: Optional[float] = None,
        incremental: bool = True,
        replicas: int = 64,
        mp_start_method: Optional[str] = None,
    ) -> None:
        if shard_mode not in ("thread", "process"):
            raise ValueError("shard_mode must be 'thread' or 'process'")
        self.shard_mode = shard_mode
        self.workers = max(1, int(workers))
        self.ring = HashRing(int(shards), replicas=replicas)
        self.metrics = MetricsRegistry()  # front-door ops (ping/metrics/...)
        self.cache = _AggregateCacheView(self)
        self._closed = False
        self._thread_shards: List[Broker] = []
        self._process_shards: List[_ProcessShard] = []
        if shard_mode == "thread":
            self._thread_shards = [
                Broker(
                    cache=SolutionCache(max_size=cache_size, ttl=ttl),
                    workers=self.workers,
                    executor="thread",
                    incremental=incremental,
                )
                for _ in range(self.ring.shards)
            ]
        else:
            ctx = (multiprocessing.get_context(mp_start_method)
                   if mp_start_method else multiprocessing.get_context())
            self._process_shards = [
                _ProcessShard(index, ctx, cache_size, ttl, incremental)
                for index in range(self.ring.shards)
            ]

    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        return self.ring.shards

    def shard_for(self, fingerprint: str) -> int:
        """The shard id a fingerprint routes to (stable, deterministic)."""
        return self.ring.route(fingerprint)

    @property
    def ipc_round_trips(self) -> int:
        """Total pipe round-trips across all process shards (0 in thread
        mode) — what ``solve_many`` batching is measured by."""
        return sum(shard.calls for shard in self._process_shards)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for broker in self._thread_shards:
            broker.close()
        for shard in self._process_shards:
            shard.stop()

    def __enter__(self) -> "ShardedBroker":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the solve paths
    # ------------------------------------------------------------------
    def solve(self, request: SolveRequest) -> BrokerResult:
        """Route one request to its shard and solve synchronously."""
        fp = request.fingerprint()
        shard = self.shard_for(fp)
        if self._thread_shards:
            return self._thread_shards[shard].solve(request)
        return self._process_solve(shard, request, fp)

    def submit(self, request: SolveRequest) -> "Future[BrokerResult]":
        """Asynchronous solve on the owning shard.

        Thread mode keeps the shard broker's in-flight coalescing:
        identical concurrent requests always route to the same shard, so
        they still share one LP.  Process mode serialises per shard (the
        pipe), so a duplicate behind an in-flight twin resolves as a
        cache hit instead.
        """
        fp = request.fingerprint()
        shard = self.shard_for(fp)
        if self._thread_shards:
            return self._thread_shards[shard].submit(request)
        return self._process_shards[shard].executor.submit(
            self._process_solve, shard, request, fp
        )

    def solve_batch(self, requests: List[SolveRequest]) -> List[BrokerResult]:
        """Fan a mixed batch out across shards; order preserved.

        Process shards receive ONE ``solve_many`` pipe message per shard
        (the whole sub-batch crosses in a single round-trip instead of one
        per request — the ~0.4 ms IPC cost that dominates hit-heavy
        workloads); thread shards keep the in-process submit path.  As
        with :meth:`~repro.service.broker.Broker.solve_batch`, a failing
        request propagates its exception (earliest by batch position);
        callers needing per-request error isolation submit individually.
        """
        with self.metrics.timer("solve.batch"):
            if self._thread_shards:
                futures = [self.submit(request) for request in requests]
                return [fut.result() for fut in futures]
            return self._process_solve_batch(requests)

    def _process_solve_batch(
        self, requests: List[SolveRequest]
    ) -> List[BrokerResult]:
        from .api import _request_wire  # deferred: avoid import cycle

        fps = [request.fingerprint() for request in requests]
        by_shard: Dict[int, List[int]] = {}
        for index, fp in enumerate(fps):
            by_shard.setdefault(self.shard_for(fp), []).append(index)
        # one solve_many per shard, dispatched through the shard's own
        # queue (ordered with its other work), all shards in parallel
        futures = {
            shard: self._process_shards[shard].executor.submit(
                self._process_shards[shard].call,
                {
                    "op": "solve_many",
                    "items": [
                        {"fp": fps[i], "request": _request_wire(requests[i])}
                        for i in indices
                    ],
                },
            )
            for shard, indices in by_shard.items()
        }
        outcomes: List[Optional[Dict[str, Any]]] = [None] * len(requests)
        for shard, indices in by_shard.items():
            reply = futures[shard].result()  # ShardError if the worker died
            for i, item in zip(indices, reply["results"]):
                outcomes[i] = item
        results: List[BrokerResult] = []
        for item in outcomes:
            assert item is not None
            if not item.get("ok"):
                raise _raise_worker_error(item)
            results.append(item["result"])
        return results

    def _process_solve(
        self, shard: int, request: SolveRequest, fp: str
    ) -> BrokerResult:
        from .api import _request_wire  # deferred: avoid import cycle

        # the memoized read-only encoding: the pipe pickles it immediately,
        # so no copy is needed and re-sends never re-encode the platform
        reply = self._process_shards[shard].call({
            "op": "solve",
            "fp": fp,
            "request": _request_wire(request),
        })
        return reply["result"]

    # ------------------------------------------------------------------
    # invalidation + introspection
    # ------------------------------------------------------------------
    def invalidate_platform(self, platform: Platform) -> int:
        """Drop this platform's entries and hot models on *every* shard.

        A platform's requests spread across shards (each problem/option
        combination fingerprints differently), so invalidation must fan
        out.  Each shard's generation counter makes the fan-out sound
        under racing in-flight solves: a solve that started before the
        invalidation reached its shard cannot re-insert a stale entry.
        """
        if self._thread_shards:
            return sum(broker.invalidate_platform(platform)
                       for broker in self._thread_shards)
        encoded = platform_to_dict(platform)
        return sum(
            reply["removed"]
            for reply in self._fanout({"op": "invalidate",
                                       "platform": encoded})
        )

    def clear(self) -> int:
        """Drop every cached entry on every shard; returns entries removed.

        (The per-shard generation counters advance, so in-flight solves
        cannot re-populate the caches with pre-clear solutions.)
        """
        if self._thread_shards:
            return sum(broker.cache.clear()
                       for broker in self._thread_shards)
        return sum(reply["cleared"]
                   for reply in self._fanout({"op": "clear"}))

    def _fanout(self, msg: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Send one op to every process shard *concurrently*, ahead of
        each shard's queued solves.

        Transient threads contend on the pipe locks directly rather than
        joining the per-shard dispatch queues, so a metrics scrape or an
        invalidation waits for (roughly) one in-flight call per shard —
        not for a deep solve backlog to drain — and the shards are
        visited in parallel, so the total wait is the slowest shard's,
        not the sum.  Replies come back in shard-id order.
        """
        with ThreadPoolExecutor(
            max_workers=len(self._process_shards),
            thread_name_prefix="repro-shard-fanout",
        ) as pool:
            futures = [pool.submit(shard.call, dict(msg))
                       for shard in self._process_shards]
            return [fut.result() for fut in futures]

    def shard_snapshots(self) -> List[Dict[str, Any]]:
        """Per-shard engine snapshots (``cache`` / ``metrics`` /
        ``incremental``), in shard-id order (process shards queried
        concurrently — see :meth:`_fanout`)."""
        if self._thread_shards:
            return [broker.engine.snapshot()
                    for broker in self._thread_shards]
        return [reply["snapshot"]
                for reply in self._fanout({"op": "snapshot"})]

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe aggregate state: merged cache counters, merged
        metrics (see :func:`~repro.service.metrics.merge_snapshots` for
        the aggregation semantics) and a compact per-shard breakdown."""
        shard_snaps = self.shard_snapshots()
        coalesced = sum(b.coalesced for b in self._thread_shards)
        merged_metrics = merge_snapshots(
            [self.metrics.snapshot()] + [s["metrics"] for s in shard_snaps]
        )
        out: Dict[str, Any] = {
            "executor": f"sharded-{self.shard_mode}",
            "shards": self.shards,
            "shard_mode": self.shard_mode,
            "workers": self.workers,
            "coalesced": coalesced,
            "cache": _merge_cache_snapshots(
                [s["cache"] for s in shard_snaps]
            ),
            "metrics": merged_metrics,
            "per_shard": [
                {
                    "shard": idx,
                    "requests": s["metrics"]["total_requests"],
                    "cache_size": s["cache"]["size"],
                    "hits": s["cache"]["hits"],
                    "misses": s["cache"]["misses"],
                    # the full warm-path breakdown of this shard (hot
                    # models, evictions, basis restarts, pivots, ...)
                    **({"incremental": s["incremental"]}
                       if "incremental" in s else {}),
                }
                for idx, s in enumerate(shard_snaps)
            ],
        }
        incremental = [s["incremental"] for s in shard_snaps
                       if "incremental" in s]
        if incremental:
            # sum over the union of counters so new WarmSolveStats fields
            # (evictions, basis_restarts, pivot counts, ...) surface in
            # /metrics without this list needing maintenance
            keys = sorted({key for snap in incremental for key in snap})
            out["incremental"] = {
                key: sum(snap.get(key, 0) for snap in incremental)
                for key in keys
            }
        return out
