"""JSON request/response API for the scheduling service.

The wire format reuses the conventions of
:mod:`repro.platform.serialization` (exact rationals as ``"p/q"``
strings, ``"inf"`` for forwarders).  One envelope per message::

    {"op": "solve",  "request":  {<solve request>}}
    {"op": "batch",  "requests": [<solve request>, ...]}
    {"op": "invalidate", "platform": {<platform>}}
    {"op": "metrics"} | {"op": "cache"} | {"op": "ping"} | {"op": "problems"}

A solve request carries a versioned, typed **spec envelope** (the
canonical form — field names come straight from the registered
:class:`~repro.problems.specs.ProblemSpec` classes)::

    {"spec": {"version": 1,
              "problem": "gather",       # any registered problem
              "sink": "P1",              # spec-typed fields
              "sources": ["P5", "P6"]},
     "platform": {...},                  # platform_to_dict format
     "options": {"backend": "exact"},    # execution options
     "include_schedule": false}

The flat legacy fields of PR 1 are still accepted (``"problem"`` +
``"source"``/``"master"``/``"targets"``/``"dag"``/``"options"`` at the
top level of the request); both forms decode into the same typed spec::

    {"problem": "master-slave", "platform": {...}, "source": "P1",
     "options": {"backend": "exact"}, "include_schedule": false}

Responses always carry ``"ok"``; solve responses add the fingerprint,
cache/warm flags, latency, the throughput and a problem-shaped
``"solution"`` payload (plus ``"schedule"`` when requested).  The
``{"op": "problems"}`` envelope (and ``GET /problems``) lists every
registered problem with its spec fields and declared capabilities.

Transport is pluggable: :func:`handle_request` is a pure
dict-in/dict-out function, and the HTTP routing on top of it is a pair
of pure functions (:func:`route_get`, :func:`route_post`) returning
``(status, content-type, body)`` triples.  Two servers share them:
:class:`ServiceServer` (threaded stdlib HTTP server, one thread per
connection) and :class:`AsyncServiceServer` (asyncio HTTP/1.1
keep-alive server — idle connections are parked coroutines, so
thousands of keep-alive clients cost no threads; the blocking broker
dispatch runs on a bounded executor).  Both serve ``POST /api`` and
``GET /metrics`` / ``/cache`` / ``/healthz`` for
``python -m repro serve``, and the same :func:`handle_request` drives
the ``--stdio`` JSON-lines mode used in tests and pipelines.
"""

from __future__ import annotations

import asyncio
import copy
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..core.activities import SteadyStateSolution
from ..core.broadcast import BroadcastSolution
from ..core.multicast import MulticastAnalysis
from ..platform.serialization import (
    encode_weight as _encode_fraction,
    platform_from_dict,
    platform_to_dict,
    schedule_to_dict,
    solution_to_dict,
)
from ..problems import (
    SpecError,
    dag_from_dict,
    describe as registry_describe,
    spec_from_wire,
)
from .broker import Broker, BrokerError, BrokerResult, SolveRequest
from .metrics import render_prometheus
from .tracing import EVENTS, TraceStore, start_trace


# ----------------------------------------------------------------------
# request decoding
# ----------------------------------------------------------------------
def request_from_dict(data: Dict[str, Any]) -> SolveRequest:
    """Decode a solve request envelope into a :class:`SolveRequest`.

    Accepts both wire forms: the versioned typed ``"spec"`` envelope (the
    canonical encoding, also what :func:`request_to_dict` emits) and the
    flat legacy fields of PR 1.
    """
    if "platform" not in data:
        raise BrokerError("solve request needs a 'platform'")
    platform = platform_from_dict(data["platform"])
    if "spec" in data:
        payload = data["spec"]
        if isinstance(payload, dict) and "problem" in data \
                and data["problem"] != payload.get("problem"):
            raise BrokerError(
                f"request names problem {data['problem']!r} but its spec "
                f"envelope says {payload.get('problem')!r}"
            )
        # problem fields live INSIDE the spec envelope; silently ignoring
        # flat legacy fields (or solver options) alongside it would let a
        # half-migrated client solve a different problem than it asked for
        stray = {"source", "master", "targets", "dag"} & set(data)
        if stray:
            raise BrokerError(
                f"request mixes a 'spec' envelope with legacy field(s) "
                f"{sorted(stray)}; put them in the spec"
            )
        options = dict(data.get("options", {}))
        backend = str(options.pop("backend", "exact"))
        if options:
            raise BrokerError(
                f"with a 'spec' envelope, 'options' may only carry "
                f"'backend'; move {sorted(options)} into the spec"
            )
        spec = spec_from_wire(platform, payload)
        return SolveRequest.from_spec(
            spec,
            include_schedule=bool(data.get("include_schedule", False)),
            backend=backend,
        )
    if "problem" not in data:
        raise BrokerError("solve request needs a 'problem' or a 'spec'")
    dag = None
    if data.get("dag") is not None:
        dag = dag_from_dict(data["dag"])
    return SolveRequest(
        problem=str(data["problem"]),
        platform=platform,
        source=data.get("source"),
        master=data.get("master"),
        targets=data.get("targets", ()),  # SolveRequest rejects bare strings
        dag=dag,
        options=dict(data.get("options", {})),
        include_schedule=bool(data.get("include_schedule", False)),
    )


def _request_wire(request: SolveRequest) -> Dict[str, Any]:
    """The memoized wire encoding of a request — INTERNAL and read-only.

    Memoized on the (frozen) request so re-dispatching the same request
    object never re-encodes the platform; this is what keeps the
    process-shard dispatch of :mod:`repro.service.sharding` cheap (its
    only per-call cost is the pipe's pickle of this dict).  Callers must
    never mutate the returned structure — hand external callers
    :func:`request_to_dict` instead.
    """
    cached = request.__dict__.get("_wire_dict")
    if cached is None:
        cached = {
            "spec": request.spec.to_wire(),
            "platform": platform_to_dict(request.platform),
            "options": {
                "backend": request.option_dict().get("backend", "exact")
            },
            "include_schedule": request.include_schedule,
        }
        object.__setattr__(request, "_wire_dict", cached)
    return cached


def request_to_dict(request: SolveRequest) -> Dict[str, Any]:
    """Encode a :class:`SolveRequest` (inverse of :func:`request_from_dict`).

    Emits the canonical versioned spec envelope; the platform travels as
    a sibling key so platform-level ops (``invalidate``) and the two
    request forms share one platform encoding.  The returned dict is
    fully private to the caller — mutate anything, nested values
    included, without affecting later encodings of the same request.
    """
    return copy.deepcopy(_request_wire(request))


# ----------------------------------------------------------------------
# response encoding
# ----------------------------------------------------------------------
def _solution_payload(solution: Any) -> Dict[str, Any]:
    if isinstance(solution, SteadyStateSolution):
        return solution_to_dict(solution)
    if isinstance(solution, BroadcastSolution):
        return {
            "problem": "broadcast",
            "lp_bound": _encode_fraction(solution.lp_bound),
            "achieved": _encode_fraction(solution.achieved),
            "optimal": solution.optimal,
            "exhaustive": solution.exhaustive,
            "packing": [
                {"rate": _encode_fraction(rate),
                 "edges": sorted([u, v] for u, v in tree)}
                for tree, rate in solution.packing.items()
            ],
        }
    if isinstance(solution, MulticastAnalysis):
        return {
            "problem": "multicast",
            "sum_lp": _encode_fraction(solution.sum_lp),
            "tree_optimal": _encode_fraction(solution.tree_optimal),
            "max_lp": _encode_fraction(solution.max_lp),
            "exhaustive": solution.exhaustive,
            "max_lp_achievable": solution.max_lp_achievable,
        }
    # DagSolution and anything else with a throughput
    payload: Dict[str, Any] = {"problem": type(solution).__name__}
    if hasattr(solution, "throughput"):
        payload["throughput"] = _encode_fraction(solution.throughput)
    if hasattr(solution, "cons"):
        payload["cons"] = [
            {"node": n, "type": t, "rate": _encode_fraction(r)}
            for (n, t), r in solution.cons.items() if r != 0
        ]
    return payload


def response_to_dict(result: BrokerResult) -> Dict[str, Any]:
    """Encode a broker result as the solve response payload."""
    out: Dict[str, Any] = {
        "ok": True,
        "fingerprint": result.fingerprint,
        "cached": result.cached,
        "warm": result.warm,
        "coalesced": result.coalesced,
        "latency_seconds": result.latency_seconds,
        "throughput": _encode_fraction(result.throughput),
        "solution": _solution_payload(result.solution),
    }
    if result.schedule is not None:
        out["schedule"] = schedule_to_dict(result.schedule)
    return out


def _error_response(
    exc: BaseException, status: Optional[int] = None
) -> Dict[str, Any]:
    """Error payload; ``status`` is the HTTP status the transport should
    use (and a transport-independent client/server distinction: 4xx means
    "fix your request", 5xx means "server bug").  ``type`` always carries
    the original exception class so clients can tell a validation failure
    from a solver crash."""
    out = {"ok": False, "error": str(exc), "type": type(exc).__name__}
    if status is not None:
        out["status"] = status
    return out


class _BadRequest(Exception):
    """Wraps a non-``SpecError`` decode failure so the dispatcher can map
    it to 400 while letting it propagate through metric timers (which
    record the error) without being mistaken for a server bug."""

    def __init__(self, original: BaseException) -> None:
        super().__init__(str(original))
        self.original = original


def _decode_or_error(data: Dict[str, Any]):
    """Decode a solve request; on failure return the error *response*.

    Everything raised while decoding is a client error by construction —
    the request never reached a solver — so a malformed spec maps to 422
    (well-formed JSON, invalid semantics) and any other decode failure
    (broken platform dict, wrong types) to 400.
    """
    try:
        return request_from_dict(data)
    except SpecError as exc:
        return _error_response(exc, status=422)
    except Exception as exc:  # noqa: BLE001 — wire boundary
        return _error_response(exc, status=400)


# ----------------------------------------------------------------------
# the dispatcher
# ----------------------------------------------------------------------
def _run_batch(broker: Broker, data: Dict[str, Any]) -> Dict[str, Any]:
    """The ``batch`` op body: per-request error isolation — one
    malformed/failing request must not discard its siblings' solves."""
    decoded = [
        _decode_or_error(raw) for raw in data.get("requests", [])
    ]
    with broker.metrics.timer("solve.batch"):
        futures = [
            broker.submit(item) if isinstance(item, SolveRequest)
            else None
            for item in decoded
        ]
        results = []
        for item, fut in zip(decoded, futures):
            if fut is None:
                results.append(item)  # the decode error
                continue
            try:
                results.append(response_to_dict(fut.result()))
            except SpecError as exc:
                results.append(_error_response(exc, status=422))
            except Exception as exc:  # noqa: BLE001 — wire boundary
                results.append(_error_response(exc, status=500))
    return {"ok": True, "results": results}



def handle_request(broker: Broker, data: Dict[str, Any],
                   trace_store: Optional[TraceStore] = None,
                   ) -> Dict[str, Any]:
    """Dispatch one decoded envelope; never raises.

    Error responses carry ``"type"`` (the exception class) and
    ``"status"`` — 400 for undecodable requests, 422 for well-formed but
    invalid ones (:class:`SpecError`), 500 for unexpected solver/server
    failures — so clients can tell "fix your request" from "server bug"
    on any transport.

    ``trace_store``, when given, turns tracing on for every solve/batch
    (captured into the store, retrievable by the ``traces``/``trace``
    ops); a request may also opt in per-call with ``"trace": true``,
    which additionally inlines the full span tree on the response.
    Traced responses always carry ``"trace_id"``.
    """
    try:
        op = data.get("op", "solve")
        # solve/batch are metered inside the broker ("solve", "solve.batch");
        # the lightweight ops are metered here so every documented endpoint
        # shows up in /metrics
        if op == "ping":
            with broker.metrics.timer("ping"):
                return {"ok": True, "pong": True}
        if op == "metrics":
            with broker.metrics.timer("metrics"):
                out = {"ok": True, **broker.snapshot()}
                if trace_store is not None:
                    out["traces"] = trace_store.snapshot()
                return out
        if op == "traces":
            with broker.metrics.timer("traces"):
                if trace_store is None:
                    return {"ok": True, "traces": [], "store": None}
                return {
                    "ok": True,
                    "traces": trace_store.index(
                        limit=int(data.get("limit", 100))),
                    "store": trace_store.snapshot(),
                }
        if op == "trace":
            with broker.metrics.timer("traces"):
                trace_id = str(data.get("id", data.get("trace_id", "")))
                trace = (trace_store.get(trace_id)
                         if trace_store is not None else None)
                if trace is None:
                    return {"ok": False, "status": 404, "type": "KeyError",
                            "error": f"no stored trace {trace_id!r}"}
                return {"ok": True, "trace": trace.as_dict()}
        if op == "events":
            with broker.metrics.timer("events"):
                return {"ok": True,
                        "events": EVENTS.recent(
                            limit=int(data.get("limit", 100)))}
        if op == "cache":
            with broker.metrics.timer("cache"):
                return {"ok": True, "cache": broker.cache.snapshot()}
        if op == "problems":
            with broker.metrics.timer("problems"):
                return {"ok": True, "problems": registry_describe()}
        if op == "invalidate":
            with broker.metrics.timer("invalidate"):
                if "platform" not in data:
                    raise BrokerError("invalidate needs a 'platform'")
                try:
                    platform = platform_from_dict(data["platform"])
                except SpecError:
                    raise
                except Exception as exc:  # noqa: BLE001 — wire boundary
                    # raise (not return): the timer must record the error
                    raise _BadRequest(exc) from exc
                return {"ok": True,
                        "invalidated": broker.invalidate_platform(platform)}
        if op == "solve":
            request = _decode_or_error(data.get("request", data))
            if not isinstance(request, SolveRequest):
                return request  # the decode-error response
            inline = bool(data.get("trace"))
            if inline or trace_store is not None:
                with start_trace("request.solve", store=trace_store,
                                 problem=request.problem) as tr:
                    result = broker.submit(request).result()
                out = response_to_dict(result)
                out["trace_id"] = tr.trace_id
                if inline:
                    out["trace"] = tr.as_dict()
                return out
            # submit() rather than solve(): concurrent identical requests
            # arriving on different transport threads coalesce into one LP
            return response_to_dict(broker.submit(request).result())
        if op == "batch":
            inline = bool(data.get("trace"))
            if inline or trace_store is not None:
                with start_trace("request.batch", store=trace_store) as tr:
                    out = _run_batch(broker, data)
                out["trace_id"] = tr.trace_id
                if inline:
                    out["trace"] = tr.as_dict()
                return out
            return _run_batch(broker, data)
        raise BrokerError(f"unknown op {op!r}")
    except _BadRequest as exc:  # undecodable request (past the timer)
        return _error_response(exc.original, status=400)
    except SpecError as exc:  # malformed request / unknown op
        return _error_response(exc, status=422)
    except Exception as exc:  # noqa: BLE001 — unexpected: a server bug
        return _error_response(exc, status=500)


# ----------------------------------------------------------------------
# HTTP routing — pure functions shared by both servers
# ----------------------------------------------------------------------
_JSON_TYPE = "application/json"
_PROMETHEUS_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: ``(status, content-type, body)`` — everything a transport needs to
#: write one HTTP response.
HttpResponse = Tuple[int, str, bytes]


def _json_reply(payload: Dict[str, Any], status: int = 200) -> HttpResponse:
    return status, _JSON_TYPE, json.dumps(payload).encode("utf-8")


def _query_int(query: Dict[str, list], key: str, default: int) -> int:
    try:
        return int(query[key][0])
    except (KeyError, IndexError, ValueError):
        return default


def route_get(broker: Broker, path: str, query: Dict[str, list],
              trace_store: Optional[TraceStore] = None) -> HttpResponse:
    """Route one GET; pure — no I/O beyond the broker dispatch."""
    if path in ("/healthz", "/"):
        return _json_reply({"ok": True, "service": "repro", "ready": True})
    if path == "/metrics":
        response = handle_request(broker, {"op": "metrics"},
                                  trace_store=trace_store)
        if query.get("format", [""])[0] == "prometheus":
            return (200, _PROMETHEUS_TYPE,
                    render_prometheus(response).encode("utf-8"))
        return _json_reply(response)
    if path == "/cache":
        return _json_reply(handle_request(broker, {"op": "cache"}))
    if path == "/problems":
        return _json_reply(handle_request(broker, {"op": "problems"}))
    if path == "/traces":
        limit = _query_int(query, "limit", 100)
        return _json_reply(handle_request(
            broker, {"op": "traces", "limit": limit},
            trace_store=trace_store))
    if path.startswith("/trace/"):
        response = handle_request(
            broker, {"op": "trace", "id": path[len("/trace/"):]},
            trace_store=trace_store)
        status = response.get("status", 200 if response.get("ok") else 404)
        return _json_reply(response, status=status)
    if path == "/events":
        limit = _query_int(query, "limit", 100)
        return _json_reply(handle_request(
            broker, {"op": "events", "limit": limit},
            trace_store=trace_store))
    return _json_reply({"ok": False, "error": "not found"}, status=404)


def route_post(broker: Broker, path: str, body: bytes,
               trace_store: Optional[TraceStore] = None) -> HttpResponse:
    """Route one POST body; pure — no I/O beyond the broker dispatch."""
    if path not in ("/api", "/"):
        # mirror route_get: a POST to /metrics or a typo'd path is client
        # misconfiguration, not a solve request
        return _json_reply({"ok": False, "error": "not found"}, status=404)
    try:
        data = json.loads(body or b"{}")
    except (ValueError, json.JSONDecodeError) as exc:
        return _json_reply(_error_response(exc, status=400), status=400)
    response = handle_request(broker, data, trace_store=trace_store)
    # the dispatcher stamps every error with its status (400 bad
    # request / 422 invalid spec / 500 server bug); default defensively
    # for responses predating the field
    status = response.get("status", 200 if response.get("ok") else 422)
    return _json_reply(response, status=status)


# ----------------------------------------------------------------------
# HTTP transport — threaded
# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    server: "ServiceServer"  # type: ignore[assignment]

    def _send(self, response: HttpResponse) -> None:
        status, content_type, blob = response
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        parsed = urlparse(self.path)
        self._send(route_get(self.server.broker, parsed.path,
                             parse_qs(parsed.query),
                             trace_store=self.server.trace_store))

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        try:
            length = int(self.headers.get("Content-Length", "0"))
            body = self.rfile.read(length)
        except ValueError as exc:
            self._send(_json_reply(_error_response(exc, status=400),
                                   status=400))
            return
        self._send(route_post(self.server.broker, self.path, body,
                              trace_store=self.server.trace_store))

    def log_message(self, fmt: str, *args) -> None:  # quiet by default
        if self.server.verbose:
            super().log_message(fmt, *args)


class ServiceServer(ThreadingHTTPServer):
    """Threaded HTTP front-end over a :class:`Broker`.

    >>> server = ServiceServer(("127.0.0.1", 0), broker=Broker())
    >>> server.port  # doctest: +SKIP
    43521
    """

    daemon_threads = True

    def __init__(
        self,
        address=("127.0.0.1", 8585),
        broker: Optional[Broker] = None,
        verbose: bool = False,
        trace_store: Optional[TraceStore] = None,
        tracing: bool = True,
    ) -> None:
        self.broker = broker if broker is not None else Broker()
        self.verbose = verbose
        # every request is traced into the bounded store by default
        # (slow ones protected from eviction); ``tracing=False`` turns
        # the subsystem off entirely for this server
        self.trace_store = (
            trace_store if trace_store is not None
            else (TraceStore() if tracing else None)
        )
        super().__init__(address, _Handler)

    @property
    def port(self) -> int:
        return self.server_address[1]


# ----------------------------------------------------------------------
# HTTP transport — asyncio
# ----------------------------------------------------------------------
class AsyncServiceServer:
    """asyncio HTTP/1.1 keep-alive front-end over a :class:`Broker`.

    The threaded :class:`ServiceServer` spends one thread per open
    connection, so a thousand idle keep-alive clients cost a thousand
    parked threads.  Here every connection is a coroutine: parsing and
    framing happen on one event loop, and only the blocking broker
    dispatch (:func:`route_get` / :func:`route_post`) is handed to a
    bounded executor (``http_workers`` threads).  Idle connections cost
    nothing; the executor bounds concurrent *dispatch*, not clients.

    In-flight dispatch is published on the broker's metrics as the
    ``http_inflight`` / ``http_inflight_max`` gauges (merged into
    ``/metrics`` and the Prometheus view), so saturation of the HTTP
    tier is observable next to the shard-side queue gauges.
    """

    def __init__(
        self,
        address=("127.0.0.1", 0),
        broker: Optional[Broker] = None,
        trace_store: Optional[TraceStore] = None,
        tracing: bool = True,
        http_workers: int = 8,
    ) -> None:
        self.broker = broker if broker is not None else Broker()
        self.trace_store = (
            trace_store if trace_store is not None
            else (TraceStore() if tracing else None)
        )
        self.http_workers = max(1, int(http_workers))
        self._requested_address = address
        self._executor = ThreadPoolExecutor(
            max_workers=self.http_workers, thread_name_prefix="repro-http")
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._thread: Optional[threading.Thread] = None
        # loop-confined gauge state (event loop only, no locks)
        self._inflight = 0
        self._max_inflight = 0

    # ------------------------------------------------------------------
    # lifecycle (mirrors AsyncShardServer)
    # ------------------------------------------------------------------
    async def start(self) -> "AsyncServiceServer":
        """Bind the listener on the running loop."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._serve_connection,
            self._requested_address[0],
            self._requested_address[1],
        )
        return self

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    @property
    def host(self) -> str:
        assert self._server is not None
        return self._server.sockets[0].getsockname()[0]

    @property
    def port(self) -> int:
        assert self._server is not None
        return self._server.sockets[0].getsockname()[1]

    def start_in_thread(self) -> "AsyncServiceServer":
        """Run the server on a dedicated daemon loop thread (tests,
        embedding); returns once the port is bound."""
        started = threading.Event()

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            loop.run_until_complete(self.start())
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self._shutdown_on_loop())
                loop.close()

        self._thread = threading.Thread(
            target=_run, name="repro-http-serve", daemon=True)
        self._thread.start()
        if not started.wait(timeout=10):  # pragma: no cover — bind hang
            raise RuntimeError("async HTTP server failed to start")
        return self

    async def _shutdown_on_loop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    def shutdown(self) -> None:
        """Stop a :meth:`start_in_thread` server (thread-safe)."""
        if self._loop is not None and not self._loop.is_closed():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self._executor.shutdown(wait=False)

    # ------------------------------------------------------------------
    # the per-connection coroutine
    # ------------------------------------------------------------------
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    return
                method, target, version, headers, body = request
                parsed = urlparse(target)
                self._inflight += 1
                self._max_inflight = max(self._max_inflight, self._inflight)
                self._publish_gauges()
                try:
                    if method == "GET":
                        response = await self._loop.run_in_executor(
                            self._executor, route_get, self.broker,
                            parsed.path, parse_qs(parsed.query),
                            self.trace_store)
                    elif method == "POST":
                        response = await self._loop.run_in_executor(
                            self._executor, route_post, self.broker,
                            parsed.path, body, self.trace_store)
                    else:
                        response = _json_reply(
                            {"ok": False,
                             "error": f"method {method} not allowed"},
                            status=405)
                finally:
                    self._inflight -= 1
                    self._publish_gauges()
                close = (headers.get("connection", "").lower() == "close"
                         or (version == "HTTP/1.0"
                             and headers.get("connection", "").lower()
                             != "keep-alive"))
                await self._write_response(writer, response, close=close)
                if close:
                    return
        except (ConnectionError, OSError):
            pass  # client went away mid-exchange
        finally:
            writer.close()

    async def _read_request(self, reader: asyncio.StreamReader):
        """One request head + body; ``None`` when the client is done.

        Malformed heads are answered by returning ``None`` (drop the
        connection) — a client that cannot frame HTTP cannot be sent a
        response it will parse either.
        """
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            return None  # clean close between requests, or mid-head drop
        except asyncio.LimitOverrunError:
            return None  # absurd header block: drop it
        try:
            lines = head.decode("latin-1").split("\r\n")
            method, target, version = lines[0].split(" ", 2)
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if ":" in line:
                key, _, value = line.partition(":")
                headers[key.strip().lower()] = value.strip()
        body = b""
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            return None
        if length:
            try:
                body = await reader.readexactly(length)
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return None
        return method.upper(), target, version, headers, body

    async def _write_response(self, writer: asyncio.StreamWriter,
                              response: HttpResponse, close: bool) -> None:
        status, content_type, blob = response
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(blob)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + blob)
        await writer.drain()

    def _publish_gauges(self) -> None:
        metrics = getattr(self.broker, "metrics", None)
        if metrics is not None:
            metrics.set_gauge("http_inflight", float(self._inflight))
            metrics.set_gauge("http_inflight_max", float(self._max_inflight))


_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 422: "Unprocessable Entity",
    500: "Internal Server Error",
}


def serve_stdio(broker: Broker, stdin, stdout,
                trace_store: Optional[TraceStore] = None) -> int:
    """JSON-lines loop: one envelope per input line, one response per line."""
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            response = _error_response(exc, status=400)
        else:
            if data.get("op") == "shutdown":
                print(json.dumps({"ok": True, "bye": True}), file=stdout,
                      flush=True)
                break
            response = handle_request(broker, data, trace_store=trace_store)
        print(json.dumps(response), file=stdout, flush=True)
    return 0
