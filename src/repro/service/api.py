"""JSON request/response API for the scheduling service.

The wire format reuses the conventions of
:mod:`repro.platform.serialization` (exact rationals as ``"p/q"``
strings, ``"inf"`` for forwarders).  One envelope per message::

    {"op": "solve",  "request":  {<solve request>}}
    {"op": "batch",  "requests": [<solve request>, ...]}
    {"op": "invalidate", "platform": {<platform>}}
    {"op": "metrics"} | {"op": "cache"} | {"op": "ping"} | {"op": "problems"}

A solve request carries a versioned, typed **spec envelope** (the
canonical form — field names come straight from the registered
:class:`~repro.problems.specs.ProblemSpec` classes)::

    {"spec": {"version": 1,
              "problem": "gather",       # any registered problem
              "sink": "P1",              # spec-typed fields
              "sources": ["P5", "P6"]},
     "platform": {...},                  # platform_to_dict format
     "options": {"backend": "exact"},    # execution options
     "include_schedule": false}

The flat legacy fields of PR 1 are still accepted (``"problem"`` +
``"source"``/``"master"``/``"targets"``/``"dag"``/``"options"`` at the
top level of the request); both forms decode into the same typed spec::

    {"problem": "master-slave", "platform": {...}, "source": "P1",
     "options": {"backend": "exact"}, "include_schedule": false}

Responses always carry ``"ok"``; solve responses add the fingerprint,
cache/warm flags, latency, the throughput and a problem-shaped
``"solution"`` payload (plus ``"schedule"`` when requested).  The
``{"op": "problems"}`` envelope (and ``GET /problems``) lists every
registered problem with its spec fields and declared capabilities.

Transport is pluggable: :func:`handle_request` is a pure
dict-in/dict-out function; :class:`ServiceServer` wraps it in a
threaded stdlib HTTP server (``POST /api``, ``GET /metrics`` /
``/cache`` / ``/healthz``) for ``python -m repro serve``, and the same
handler drives the ``--stdio`` JSON-lines mode used in tests and
pipelines.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional

from ..core.activities import SteadyStateSolution
from ..core.broadcast import BroadcastSolution
from ..core.multicast import MulticastAnalysis
from ..platform.serialization import (
    encode_weight as _encode_fraction,
    platform_from_dict,
    platform_to_dict,
    schedule_to_dict,
    solution_to_dict,
)
from ..problems import dag_from_dict, describe as registry_describe, spec_from_wire
from .broker import Broker, BrokerError, BrokerResult, SolveRequest


# ----------------------------------------------------------------------
# request decoding
# ----------------------------------------------------------------------
def request_from_dict(data: Dict[str, Any]) -> SolveRequest:
    """Decode a solve request envelope into a :class:`SolveRequest`.

    Accepts both wire forms: the versioned typed ``"spec"`` envelope (the
    canonical encoding, also what :func:`request_to_dict` emits) and the
    flat legacy fields of PR 1.
    """
    if "platform" not in data:
        raise BrokerError("solve request needs a 'platform'")
    platform = platform_from_dict(data["platform"])
    if "spec" in data:
        payload = data["spec"]
        if isinstance(payload, dict) and "problem" in data \
                and data["problem"] != payload.get("problem"):
            raise BrokerError(
                f"request names problem {data['problem']!r} but its spec "
                f"envelope says {payload.get('problem')!r}"
            )
        # problem fields live INSIDE the spec envelope; silently ignoring
        # flat legacy fields (or solver options) alongside it would let a
        # half-migrated client solve a different problem than it asked for
        stray = {"source", "master", "targets", "dag"} & set(data)
        if stray:
            raise BrokerError(
                f"request mixes a 'spec' envelope with legacy field(s) "
                f"{sorted(stray)}; put them in the spec"
            )
        options = dict(data.get("options", {}))
        backend = str(options.pop("backend", "exact"))
        if options:
            raise BrokerError(
                f"with a 'spec' envelope, 'options' may only carry "
                f"'backend'; move {sorted(options)} into the spec"
            )
        spec = spec_from_wire(platform, payload)
        return SolveRequest.from_spec(
            spec,
            include_schedule=bool(data.get("include_schedule", False)),
            backend=backend,
        )
    if "problem" not in data:
        raise BrokerError("solve request needs a 'problem' or a 'spec'")
    dag = None
    if data.get("dag") is not None:
        dag = dag_from_dict(data["dag"])
    return SolveRequest(
        problem=str(data["problem"]),
        platform=platform,
        source=data.get("source"),
        master=data.get("master"),
        targets=data.get("targets", ()),  # SolveRequest rejects bare strings
        dag=dag,
        options=dict(data.get("options", {})),
        include_schedule=bool(data.get("include_schedule", False)),
    )


def request_to_dict(request: SolveRequest) -> Dict[str, Any]:
    """Encode a :class:`SolveRequest` (inverse of :func:`request_from_dict`).

    Emits the canonical versioned spec envelope; the platform travels as
    a sibling key so platform-level ops (``invalidate``) and the two
    request forms share one platform encoding.
    """
    return {
        "spec": request.spec.to_wire(),
        "platform": platform_to_dict(request.platform),
        "options": {
            "backend": request.option_dict().get("backend", "exact")
        },
        "include_schedule": request.include_schedule,
    }


# ----------------------------------------------------------------------
# response encoding
# ----------------------------------------------------------------------
def _solution_payload(solution: Any) -> Dict[str, Any]:
    if isinstance(solution, SteadyStateSolution):
        return solution_to_dict(solution)
    if isinstance(solution, BroadcastSolution):
        return {
            "problem": "broadcast",
            "lp_bound": _encode_fraction(solution.lp_bound),
            "achieved": _encode_fraction(solution.achieved),
            "optimal": solution.optimal,
            "exhaustive": solution.exhaustive,
            "packing": [
                {"rate": _encode_fraction(rate),
                 "edges": sorted([u, v] for u, v in tree)}
                for tree, rate in solution.packing.items()
            ],
        }
    if isinstance(solution, MulticastAnalysis):
        return {
            "problem": "multicast",
            "sum_lp": _encode_fraction(solution.sum_lp),
            "tree_optimal": _encode_fraction(solution.tree_optimal),
            "max_lp": _encode_fraction(solution.max_lp),
            "exhaustive": solution.exhaustive,
            "max_lp_achievable": solution.max_lp_achievable,
        }
    # DagSolution and anything else with a throughput
    payload: Dict[str, Any] = {"problem": type(solution).__name__}
    if hasattr(solution, "throughput"):
        payload["throughput"] = _encode_fraction(solution.throughput)
    if hasattr(solution, "cons"):
        payload["cons"] = [
            {"node": n, "type": t, "rate": _encode_fraction(r)}
            for (n, t), r in solution.cons.items() if r != 0
        ]
    return payload


def response_to_dict(result: BrokerResult) -> Dict[str, Any]:
    """Encode a broker result as the solve response payload."""
    out: Dict[str, Any] = {
        "ok": True,
        "fingerprint": result.fingerprint,
        "cached": result.cached,
        "warm": result.warm,
        "latency_seconds": result.latency_seconds,
        "throughput": _encode_fraction(result.throughput),
        "solution": _solution_payload(result.solution),
    }
    if result.schedule is not None:
        out["schedule"] = schedule_to_dict(result.schedule)
    return out


def _error_response(exc: BaseException) -> Dict[str, Any]:
    return {"ok": False, "error": str(exc), "type": type(exc).__name__}


# ----------------------------------------------------------------------
# the dispatcher
# ----------------------------------------------------------------------
def handle_request(broker: Broker, data: Dict[str, Any]) -> Dict[str, Any]:
    """Dispatch one decoded envelope; never raises for request errors."""
    try:
        op = data.get("op", "solve")
        # solve/batch are metered inside the broker ("solve", "solve.batch");
        # the lightweight ops are metered here so every documented endpoint
        # shows up in /metrics
        if op == "ping":
            with broker.metrics.timer("ping"):
                return {"ok": True, "pong": True}
        if op == "metrics":
            with broker.metrics.timer("metrics"):
                return {"ok": True, **broker.snapshot()}
        if op == "cache":
            with broker.metrics.timer("cache"):
                return {"ok": True, "cache": broker.cache.snapshot()}
        if op == "problems":
            with broker.metrics.timer("problems"):
                return {"ok": True, "problems": registry_describe()}
        if op == "invalidate":
            with broker.metrics.timer("invalidate"):
                if "platform" not in data:
                    raise BrokerError("invalidate needs a 'platform'")
                removed = broker.invalidate_platform(
                    platform_from_dict(data["platform"])
                )
                return {"ok": True, "invalidated": removed}
        if op == "solve":
            request = request_from_dict(data.get("request", data))
            # submit() rather than solve(): concurrent identical requests
            # arriving on different transport threads coalesce into one LP
            return response_to_dict(broker.submit(request).result())
        if op == "batch":
            # per-request error isolation: one malformed/failing request
            # must not discard the other members' completed solves
            decoded = []
            for raw in data.get("requests", []):
                try:
                    decoded.append(request_from_dict(raw))
                except Exception as exc:  # noqa: BLE001 — wire boundary
                    decoded.append(_error_response(exc))
            with broker.metrics.timer("solve.batch"):
                futures = [
                    broker.submit(item) if isinstance(item, SolveRequest)
                    else None
                    for item in decoded
                ]
                results = []
                for item, fut in zip(decoded, futures):
                    if fut is None:
                        results.append(item)  # the decode error
                        continue
                    try:
                        results.append(response_to_dict(fut.result()))
                    except Exception as exc:  # noqa: BLE001 — wire boundary
                        results.append(_error_response(exc))
            return {"ok": True, "results": results}
        raise BrokerError(f"unknown op {op!r}")
    except Exception as exc:  # noqa: BLE001 — wire boundary
        return _error_response(exc)


# ----------------------------------------------------------------------
# HTTP transport
# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    server: "ServiceServer"  # type: ignore[assignment]

    def _send_json(self, payload: Dict[str, Any], status: int = 200) -> None:
        blob = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        broker = self.server.broker
        if self.path in ("/healthz", "/"):
            self._send_json({"ok": True, "service": "repro", "ready": True})
        elif self.path == "/metrics":
            self._send_json(handle_request(broker, {"op": "metrics"}))
        elif self.path == "/cache":
            self._send_json(handle_request(broker, {"op": "cache"}))
        elif self.path == "/problems":
            self._send_json(handle_request(broker, {"op": "problems"}))
        else:
            self._send_json({"ok": False, "error": "not found"}, status=404)

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        if self.path not in ("/api", "/"):
            # mirror do_GET: a POST to /metrics or a typo'd path is client
            # misconfiguration, not a solve request
            self._send_json({"ok": False, "error": "not found"}, status=404)
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            data = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_json(_error_response(exc), status=400)
            return
        response = handle_request(self.server.broker, data)
        self._send_json(response, status=200 if response.get("ok") else 422)

    def log_message(self, fmt: str, *args) -> None:  # quiet by default
        if self.server.verbose:
            super().log_message(fmt, *args)


class ServiceServer(ThreadingHTTPServer):
    """Threaded HTTP front-end over a :class:`Broker`.

    >>> server = ServiceServer(("127.0.0.1", 0), broker=Broker())
    >>> server.port  # doctest: +SKIP
    43521
    """

    daemon_threads = True

    def __init__(
        self,
        address=("127.0.0.1", 8585),
        broker: Optional[Broker] = None,
        verbose: bool = False,
    ) -> None:
        self.broker = broker if broker is not None else Broker()
        self.verbose = verbose
        super().__init__(address, _Handler)

    @property
    def port(self) -> int:
        return self.server_address[1]


def serve_stdio(broker: Broker, stdin, stdout) -> int:
    """JSON-lines loop: one envelope per input line, one response per line."""
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            response = _error_response(exc)
        else:
            if data.get("op") == "shutdown":
                print(json.dumps({"ok": True, "bye": True}), file=stdout,
                      flush=True)
                break
            response = handle_request(broker, data)
        print(json.dumps(response), file=stdout, flush=True)
    return 0
