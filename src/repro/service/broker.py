"""Request broker: coalescing, batching and worker-pool fan-out.

The broker sits between the JSON API (or a library caller) and the LP
solvers.  For every :class:`SolveRequest` it:

1. computes the request's canonical fingerprint
   (:mod:`repro.service.fingerprint`);
2. serves it from the :class:`~repro.service.cache.SolutionCache` when a
   structurally identical request was solved before;
3. **coalesces** duplicate in-flight requests — two concurrent submissions
   with the same fingerprint share one solve (one LP, two futures
   resolved);
4. otherwise dispatches the request through the problem registry
   (:mod:`repro.problems.registry`) on a worker pool — threads by
   default, an optional process pool for CPU-bound sweeps — taking the
   warm re-solve shortcut of :mod:`repro.service.incremental` whenever
   the registered solver declares the ``warm_resolve`` capability and a
   model with the same topology is already hot.

:meth:`Broker.solve_batch` accepts a mixed list of requests, dedupes them
by fingerprint and fans the distinct ones out concurrently — the service
analogue of the paper's observation that one LP per platform is cheap
enough to recompute freely.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core.activities import SteadyStateSolution
from ..core.dag import TaskGraph
from ..platform.graph import NodeId, Platform
from ..problems import (
    ProblemSpec,
    SpecError,
    reconstructable_problems,
    resolve,
)
from .cache import CacheEntry, HeatSketch, SolutionCache
from .fingerprint import request_fingerprint
from .incremental import IncrementalSolver
from .metrics import MetricsRegistry
from .tracing import activate, current_span, span

#: Malformed request (unknown problem kind, missing fields, ...).  The
#: historical broker-level error type is the spec-validation error of the
#: problem registry: a request is malformed exactly when its typed spec
#: cannot be built, so both layers raise the same class.
BrokerError = SpecError


def solution_throughput(solution: Any):
    """The throughput of any registered problem's solution object."""
    for attr in ("throughput", "achieved", "tree_optimal"):
        if hasattr(solution, attr):
            return getattr(solution, attr)
    raise AttributeError(f"no throughput on {type(solution).__name__}")


@dataclass(frozen=True)
class SolveRequest:
    """One steady-state solve, in solver-neutral form.

    ``problem`` names a registered problem (see
    :func:`repro.problems.registered_problems`); ``source`` is the
    distinguished node (master / scatter source / broadcast source /
    gather sink / DAG master — absent for all-to-all); ``targets`` is the
    commodity set (scatter targets, gather sources, multicast targets,
    all-to-all participants).  ``options`` carries solver keywords
    (``backend``, ``ports``, ``port_model``, ``tree_limit``);
    ``include_schedule`` asks for the reconstructed periodic schedule
    alongside the solution.

    Construction builds the problem's typed
    :class:`~repro.problems.specs.ProblemSpec` (available as
    :attr:`spec`), so a malformed request fails here with a
    :class:`BrokerError` — never with a ``KeyError`` inside a solver.
    The flat fields are re-derived from the validated spec, which also
    folds every option default in: a request relying on a default and one
    spelling it out explicitly hash to the same fingerprint (and
    therefore share cache entries and coalesce).
    """

    problem: str
    platform: Platform
    source: Optional[NodeId] = None
    targets: Tuple[NodeId, ...] = ()
    dag: Optional[TaskGraph] = None
    options: Tuple[Tuple[str, Any], ...] = ()
    include_schedule: bool = False

    def __init__(
        self,
        problem: str,
        platform: Platform,
        source: Optional[NodeId] = None,
        master: Optional[NodeId] = None,
        targets: Any = (),
        dag: Optional[TaskGraph] = None,
        options: Any = (),
        include_schedule: bool = False,
    ) -> None:
        if master is not None and source is not None and master != source:
            raise BrokerError("pass either source or master, not both")
        entry = resolve(problem)
        opts = dict(options)
        # snapshot: Platform is mutable (add_node/add_edge), and both the
        # memoized fingerprint and any cached solution must describe the
        # platform as it was when the request was made — not whatever the
        # caller mutates it into afterwards
        spec = entry.spec_type.from_request_fields(
            platform.copy(),
            source=source if source is not None else master,
            targets=targets,
            dag=dag,
            options=opts,
        )
        self._init_from_spec(
            entry, spec,
            backend=str(opts.get("backend", "exact")),
            include_schedule=include_schedule,
        )

    @classmethod
    def from_spec(
        cls,
        spec: ProblemSpec,
        include_schedule: bool = False,
        backend: str = "exact",
    ) -> "SolveRequest":
        """Build a request straight from a typed spec.

        The already-validated spec is kept as-is (with the platform
        snapshotted) rather than being round-tripped through the flat
        legacy fields, so spec types stay the single source of truth for
        what a request can express.
        """
        snapshot = dataclasses.replace(spec, platform=spec.platform.copy())
        self = object.__new__(cls)
        self._init_from_spec(
            resolve(spec.problem), snapshot,
            backend=backend, include_schedule=include_schedule,
        )
        return self

    def _init_from_spec(
        self, entry, spec: ProblemSpec, backend: str, include_schedule: bool
    ) -> None:
        if include_schedule and not entry.capabilities.reconstructs_schedule:
            # fail loudly up front rather than returning a response whose
            # missing "schedule" the client cannot tell from a server bug
            raise BrokerError(
                f"include_schedule is not supported for {spec.problem!r}; "
                f"schedules are reconstructable for: "
                f"{sorted(reconstructable_problems())}"
            )
        object.__setattr__(self, "problem", entry.problem)
        object.__setattr__(self, "platform", spec.platform)
        object.__setattr__(self, "source", spec.source_node())
        object.__setattr__(self, "targets", spec.target_nodes())
        object.__setattr__(self, "dag", spec.dag_graph())
        normalized = {"backend": backend}
        normalized.update(spec.option_fields())
        object.__setattr__(self, "options", tuple(sorted(normalized.items())))
        object.__setattr__(self, "include_schedule", bool(include_schedule))
        object.__setattr__(self, "_spec", spec)

    @property
    def spec(self) -> ProblemSpec:
        """The validated typed spec this request was built from."""
        return self.__dict__["_spec"]

    @property
    def master(self) -> Optional[NodeId]:
        return self.source

    def option_dict(self) -> Dict[str, Any]:
        return dict(self.options)

    def fingerprint(self) -> str:
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached
        options = self.option_dict()
        if self.dag is not None:
            # fold the DAG spec into the canonical options so two requests
            # with the same platform but different task graphs never collide
            options["__dag_types"] = tuple(
                (t, str(w)) for t, w in sorted(self.dag.types.items())
            )
            options["__dag_files"] = tuple(
                (a, b, str(sz)) for (a, b), sz in sorted(self.dag.files.items())
            )
        fp = request_fingerprint(
            self.platform,
            self.problem,
            source=self.source,
            targets=self.targets,
            options=options,
        )
        object.__setattr__(self, "_fingerprint", fp)
        return fp


@dataclass
class BrokerResult:
    """What a solve request resolves to.

    ``cached`` / ``warm`` describe how *this request's own* solve went;
    ``coalesced`` marks a request that never solved at all because it
    piggybacked on an identical in-flight solve (the cache-hit
    equivalent for requests that arrive while the answer is still being
    computed).  A coalesced result carries its *own* latency — the time
    this caller waited — not the leader's.
    """

    fingerprint: str
    solution: Any
    schedule: Any = None
    cached: bool = False
    warm: bool = False
    coalesced: bool = False
    latency_seconds: float = 0.0

    @property
    def throughput(self):
        return solution_throughput(self.solution)


# ----------------------------------------------------------------------
# cold execution — module-level so a process pool can pickle it
# ----------------------------------------------------------------------
def execute_request(request: SolveRequest) -> Any:
    """Dispatch one request through the problem registry.

    One generic path for every registered problem: the request's typed
    spec (validated at construction) goes straight to the registered
    solver — no per-problem branches, no argument adapters.
    """
    backend = str(request.option_dict().get("backend", "exact"))
    return resolve(request.problem).solve(request.spec, backend=backend)


# ----------------------------------------------------------------------
class SolveEngine:
    """The cache → warm → cold solve core of *one* shard.

    Owns exactly the state that must never be shared across shards — a
    :class:`SolutionCache`, a :class:`MetricsRegistry` and (optionally) an
    :class:`~repro.service.incremental.IncrementalSolver` with its hot LP
    models — and nothing else: no pools, no futures, no coalescing.
    :class:`Broker` wraps one engine with a worker pool and in-flight
    coalescing; :class:`~repro.service.sharding.ShardedBroker` runs N of
    them side by side, and its process-shard workers host a bare engine
    behind a pipe.

    ``cold_executor``, when given, is called for every cold solve instead
    of the in-process :func:`execute_request` (the process-pool broker
    bounces CPU-bound requests through it); the warm path is skipped in
    that case, since patching a hot in-process model would silently defeat
    the isolation the caller asked for.
    """

    def __init__(
        self,
        cache: Optional[SolutionCache] = None,
        metrics: Optional[MetricsRegistry] = None,
        incremental: Optional[IncrementalSolver] = None,
        cold_executor=None,
        heat_capacity: int = 128,
    ) -> None:
        self.cache = cache if cache is not None else SolutionCache()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.incremental = incremental
        self.cold_executor = cold_executor
        # per-fingerprint lookup frequencies (space-saving top-K): what
        # the sharding layer's hot-key replication keys off, and an
        # operator's view of the request skew in `snapshot` either way
        self.heat = HeatSketch(heat_capacity) if heat_capacity > 0 else None

    # ------------------------------------------------------------------
    def run(self, request: SolveRequest, fp: str) -> BrokerResult:
        """Solve one request (cache -> warm -> cold), metered."""
        start = time.perf_counter()
        if self.heat is not None:
            self.heat.record(fp)
        with span("engine.run") as sp:
            try:
                # captured before the lookup: a solution computed from here
                # on is only storable if no invalidation arrives meanwhile
                generation = self.cache.generation
                lookup_started = time.perf_counter()
                entry = self.cache.get(fp)
                if entry is not None:
                    # on a hit engine.run *is* the lookup — a child span
                    # would only repeat it, so the hit path stays lean
                    result = self._from_cache(request, fp, entry)
                    self.metrics.observe("solve.hit",
                                         time.perf_counter() - start)
                else:
                    if sp is not None:
                        lookup = sp.trace.new_span(
                            "cache.lookup", sp.span_id,
                            start=lookup_started - sp.trace._t0)
                        lookup.finish()
                    result = self._solve_cold(request, fp, generation)
                    endpoint = "solve.warm" if result.warm else "solve.cold"
                    self.metrics.observe(endpoint,
                                         time.perf_counter() - start)
                if sp is not None:
                    sp.annotate(cached=result.cached, warm=result.warm)
                result.latency_seconds = time.perf_counter() - start
                self.metrics.observe("solve", result.latency_seconds)
                return result
            except BaseException:
                self.metrics.observe("solve", time.perf_counter() - start,
                                     error=True)
                raise

    def _from_cache(
        self, request: SolveRequest, fp: str, entry: CacheEntry
    ) -> BrokerResult:
        schedule = entry.schedule
        if request.include_schedule and schedule is None:
            schedule = self._reconstruct(request, entry.solution)
            if schedule is not None:
                self.cache.attach_schedule(fp, schedule)
        return BrokerResult(
            fingerprint=fp,
            solution=entry.solution,
            schedule=schedule if request.include_schedule else None,
            cached=True,
        )

    def _solve_cold(
        self, request: SolveRequest, fp: str, generation: int
    ) -> BrokerResult:
        warm = False
        backend = request.option_dict().get("backend", "exact")
        if (
            self.incremental is not None
            and self.cold_executor is None
            and resolve(request.problem).capabilities.warm_resolve
            and backend == "exact"
        ):
            solution, warm = self.incremental.solve_spec_ex(request.spec)
        elif self.cold_executor is not None:
            with span("solver.solve", path="cold_executor"):
                solution = self.cold_executor(request)
        else:
            with span("solver.solve", path="registry"):
                solution = execute_request(request)
        schedule = None
        if request.include_schedule:
            schedule = self._reconstruct(request, solution)
        self.cache.put(fp, solution, request.platform, schedule=schedule,
                       generation=generation)
        return BrokerResult(
            fingerprint=fp,
            solution=solution,
            schedule=schedule,
            cached=False,
            warm=warm,
        )

    def tailor_schedule(
        self, request: SolveRequest, result: BrokerResult
    ) -> BrokerResult:
        """Shape a shared (coalesced/deduped) result to this caller's
        ``include_schedule``: reconstruct lazily when asked, strip when not
        (so the response shape never depends on which twin solved first)."""
        if request.include_schedule:
            if result.schedule is not None:
                return result
            # another waiter may have reconstructed and attached it already
            entry = self.cache.peek(result.fingerprint)
            schedule = entry.schedule if entry is not None else None
            if schedule is None:
                schedule = self._reconstruct(request, result.solution)
                if schedule is None:
                    return result
                self.cache.attach_schedule(result.fingerprint, schedule)
        else:
            if result.schedule is None:
                return result
            schedule = None
        return dataclasses.replace(result, schedule=schedule)

    @staticmethod
    def _reconstruct(request: SolveRequest, solution: Any):
        if (
            not resolve(request.problem).capabilities.reconstructs_schedule
            or not isinstance(solution, SteadyStateSolution)
        ):
            return None
        from ..schedule.reconstruction import reconstruct_schedule

        with span("schedule.reconstruct"):
            return reconstruct_schedule(solution)

    # ------------------------------------------------------------------
    def invalidate_platform(self, platform: Platform) -> int:
        """Drop cached results and hot LP models for this platform shape."""
        removed = self.cache.invalidate_platform(platform)
        if self.incremental is not None:
            self.incremental.forget(platform)
        return removed

    def snapshot(self, include_keys: bool = False) -> Dict[str, Any]:
        """JSON-safe operational state of this shard.

        ``include_keys`` adds the cache's live fingerprints to the
        ``cache`` sub-dict — the sharding layer asks for them so merged
        snapshots can report a *deduplicated* unique-key count under
        hot-key replication (a plain broker's snapshot stays compact).
        """
        cache = self.cache.snapshot()
        if include_keys:
            cache["keys"] = self.cache.keys()
        out: Dict[str, Any] = {
            "cache": cache,
            "metrics": self.metrics.snapshot(),
        }
        if self.heat is not None:
            out["heat"] = self.heat.snapshot()
        if self.incremental is not None:
            out["incremental"] = {
                "hot_models": len(self.incremental),
                **self.incremental.stats.as_dict(),
            }
        return out


# ----------------------------------------------------------------------
class Broker:
    """Cached, coalescing, batching front-end over the solver library.

    Parameters
    ----------
    cache:
        A :class:`SolutionCache` (a default one is created when omitted);
        pass ``None``-like ``max_size``/``ttl`` choices through it.
    metrics:
        A :class:`MetricsRegistry`; created when omitted.
    workers:
        Worker-pool width for :meth:`submit` / :meth:`solve_batch`.
    executor:
        ``"thread"`` (default) runs solves on a thread pool — fine for the
        exact simplex, whose Fraction arithmetic releases the GIL rarely
        but whose requests are short; ``"process"`` adds a process pool
        for genuinely CPU-bound sweeps (requests must be picklable);
        ``"sync"`` executes inline (no pool — deterministic, for tests).
    incremental:
        Use the warm re-solve path for requests whose registered solver
        declares the ``warm_resolve`` capability (master-slave, scatter,
        gather) and whose topology was seen before (default on; exact
        backend only).
    """

    def __init__(
        self,
        cache: Optional[SolutionCache] = None,
        metrics: Optional[MetricsRegistry] = None,
        workers: int = 4,
        executor: str = "thread",
        incremental: bool = True,
    ) -> None:
        if executor not in ("thread", "process", "sync"):
            raise ValueError("executor must be 'thread', 'process' or 'sync'")
        self.workers = max(1, int(workers))
        self.executor_kind = executor
        self._pool: Optional[ThreadPoolExecutor] = None
        self._process_pool: Optional[ProcessPoolExecutor] = None
        if executor != "sync":
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-broker"
            )
        if executor == "process":
            self._process_pool = ProcessPoolExecutor(max_workers=self.workers)
        self.engine = SolveEngine(
            cache=cache,
            metrics=metrics,
            incremental=IncrementalSolver() if incremental else None,
            cold_executor=(
                self._dispatch_to_process_pool
                if self._process_pool is not None else None
            ),
        )
        # RLock: a future that completes before add_done_callback returns
        # runs its callback inline on the submitting thread, re-entering
        # the lock held by submit()
        self._inflight_lock = threading.RLock()
        self._inflight: Dict[str, Future] = {}  # guarded-by: _inflight_lock
        # submissions answered by an in-flight future
        self.coalesced = 0  # guarded-by: _inflight_lock

    # the per-shard state lives on the engine; expose it under the
    # historical names so `broker.cache.stats` / `broker.metrics` keep
    # working for library users
    @property
    def cache(self) -> SolutionCache:
        return self.engine.cache

    @property
    def metrics(self) -> MetricsRegistry:
        return self.engine.metrics

    def _dispatch_to_process_pool(self, request: SolveRequest) -> Any:
        return self._process_pool.submit(execute_request, request).result()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=True)

    def __enter__(self) -> "Broker":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the solve paths
    # ------------------------------------------------------------------
    def solve(self, request: SolveRequest) -> BrokerResult:
        """Synchronous solve (cache -> warm -> cold), metered."""
        return self.engine.run(request, request.fingerprint())

    def submit(self, request: SolveRequest) -> "Future[BrokerResult]":
        """Asynchronous solve; duplicate in-flight requests share a future."""
        fp = request.fingerprint()
        start = time.perf_counter()
        if self._pool is None:  # sync broker: resolve immediately
            fut: "Future[BrokerResult]" = Future()
            try:
                fut.set_result(self.engine.run(request, fp))
            except BaseException as exc:  # noqa: BLE001 — future carries it
                fut.set_exception(exc)
            return fut
        # the caller's span (if any) must follow the request onto the pool
        # thread; the leader future also remembers which trace it solves
        # under so coalesced followers can link the two trees
        parent = current_span()
        with self._inflight_lock:
            inflight = self._inflight.get(fp)
            if inflight is None:
                fut = self._pool.submit(self._run_pooled, request, fp, parent)
                fut._repro_trace_id = (  # type: ignore[attr-defined]
                    parent.trace.trace_id if parent is not None else None
                )
                self._inflight[fp] = fut
                fut.add_done_callback(
                    lambda _f, fp=fp: self._forget_inflight(fp)
                )
            else:
                self.coalesced += 1
        if inflight is None:
            return fut
        # outside the lock: chaining onto an already-completed future runs
        # the relay (possibly a full schedule reconstruction) inline on this
        # thread, which must not stall other submitters.  The in-flight
        # request may not have asked for a schedule; honour this caller's
        # include_schedule on top of its result.
        follower_span = None
        if parent is not None:
            follower_span = parent.trace.new_span("coalesce.wait",
                                                  parent.span_id)
            leader_trace = getattr(inflight, "_repro_trace_id", None)
            if leader_trace is not None:
                follower_span.annotate(leader_trace=leader_trace)
        return self._chain_schedule(inflight, request, start, follower_span)

    def _run_pooled(self, request: SolveRequest, fp: str,
                    parent) -> BrokerResult:
        with activate(parent):
            return self.engine.run(request, fp)

    def _forget_inflight(self, fp: str) -> None:
        with self._inflight_lock:
            self._inflight.pop(fp, None)

    def _chain_schedule(
        self,
        fut: "Future[BrokerResult]",
        request: SolveRequest,
        start: float,
        follower_span=None,
    ) -> "Future[BrokerResult]":
        """Resolve a coalesced follower on top of the leader's future.

        The follower is a first-class request: it gets its own ``solve``
        observation (plus the ``solve.coalesced`` sub-timer) and its own
        latency — the time *this* caller waited — and is flagged
        ``coalesced=True`` rather than echoing the leader's ``cached`` /
        ``warm`` flags, which describe how the *leader's* solve went.
        ``follower_span``, when tracing, covers the wait-on-leader window
        in the follower's own trace (annotated with the leader's trace id
        — the cross-trace link).
        """
        out: "Future[BrokerResult]" = Future()

        def _relay(done: "Future[BrokerResult]") -> None:
            try:
                with activate(follower_span):
                    tailored = self.engine.tailor_schedule(request,
                                                           done.result())
                out.set_result(self._mark_coalesced(tailored, start))
            except BaseException as exc:  # noqa: BLE001 — future carries it
                self.metrics.observe("solve", time.perf_counter() - start,
                                     error=True)
                out.set_exception(exc)
            finally:
                if follower_span is not None:
                    follower_span.finish()

        fut.add_done_callback(_relay)
        return out

    def _mark_coalesced(
        self, result: BrokerResult, start: float
    ) -> BrokerResult:
        """Stamp a follower result: own latency, own ``solve`` /
        ``solve.coalesced`` observations, ``coalesced=True`` instead of
        the leader's ``cached``/``warm`` flags."""
        latency = time.perf_counter() - start
        self.metrics.observe("solve", latency)
        self.metrics.observe("solve.coalesced", latency)
        return dataclasses.replace(
            result,
            cached=False,
            warm=False,
            coalesced=True,
            latency_seconds=latency,
        )

    def solve_batch(self, requests: List[SolveRequest]) -> List[BrokerResult]:
        """Solve a mixed batch: dedupe by fingerprint, fan out, keep order.

        Duplicates share one solve; each caller's ``include_schedule`` is
        still honoured individually (the schedule is reconstructed lazily
        on top of the shared solution when needed).  A request that fails
        propagates its exception from here — callers needing per-request
        error isolation should :meth:`submit` individually (the JSON API's
        batch op does).
        """
        with self.metrics.timer("solve.batch"), \
                span("solve.batch", requests=len(requests)):
            start = time.perf_counter()
            fps = [r.fingerprint() for r in requests]
            futures: Dict[str, Future] = {}
            leaders: Dict[str, int] = {}
            for index, (request, fp) in enumerate(zip(requests, fps)):
                if fp not in futures:
                    futures[fp] = self.submit(request)
                    leaders[fp] = index
                else:
                    with self._inflight_lock:
                        self.coalesced += 1
            results = []
            for index, (request, fp) in enumerate(zip(requests, fps)):
                shared = self.engine.tailor_schedule(
                    request, futures[fp].result()
                )
                if leaders[fp] != index:
                    # an intra-batch duplicate is a coalesced follower like
                    # any other: first-class in metrics, own latency, and
                    # flagged coalesced instead of echoing the leader
                    shared = self._mark_coalesced(shared, start)
                results.append(shared)
            return results

    # ------------------------------------------------------------------
    # invalidation + introspection
    # ------------------------------------------------------------------
    def invalidate_platform(self, platform: Platform) -> int:
        """Drop cached results and hot LP models for this platform shape."""
        return self.engine.invalidate_platform(platform)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe operational state (exposed by the API)."""
        return {
            "executor": self.executor_kind,
            "workers": self.workers,
            # GIL-atomic int read; a snapshot may lag one increment
            "coalesced": self.coalesced,  # repro-lint: allow(locks)
            **self.engine.snapshot(),
        }
