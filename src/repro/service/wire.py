"""Exact JSON wire codec for shard replies.

The shard protocol of :mod:`repro.service.transport` carries *requests*
as the PR 2 spec wire codec (``spec.to_wire()`` + ``platform_to_dict``)
— that has been JSON-safe end to end since the process shards landed.
Replies were the remaining gap: the pipe shards relayed results as
pickled :class:`~repro.service.broker.BrokerResult` objects, which a
TCP shard on another host cannot do (and should not: pickle across
machines couples the hosts' code versions and trusts the peer).  This
module closes the gap with an exact, versioned JSON encoding of a
broker result, so every transport backend — pipe or TCP — speaks one
schema.

Exactness is the contract: rationals travel as the ``"p/q"`` strings of
:mod:`repro.platform.serialization`, so a result decoded from the wire
compares ``Fraction``-identical to the in-process original.  Every
registered problem's solution type round-trips:

* :class:`~repro.core.activities.SteadyStateSolution` (master-slave,
  scatter, gather, all-to-all, multiport, send-or-receive) — via the
  existing :func:`~repro.platform.serialization.solution_to_dict`;
* :class:`~repro.core.broadcast.BroadcastSolution` (broadcast, reduce)
  — tree packings as explicit edge lists;
* :class:`~repro.core.multicast.MulticastAnalysis` (multicast);
* :class:`~repro.core.dag.DagSolution` (dag) — the task graph reuses
  the spec codec's :func:`~repro.problems.specs.dag_to_dict`.

An unknown solution type raises :class:`WireCodecError` at *encode*
time, on the shard — a new problem kind must extend this codec before
it can be served remotely, and the failure says so instead of
surfacing as a baffling decode error on the broker.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Dict, FrozenSet, Optional, Tuple

from ..core.activities import SteadyStateSolution
from ..core.broadcast import BroadcastSolution
from ..core.dag import DagSolution
from ..core.multicast import MulticastAnalysis
from .._rational import INF, is_infinite
from ..platform.serialization import (
    encode_weight,
    platform_from_dict,
    platform_to_dict,
    schedule_from_dict,
    schedule_to_dict,
    solution_from_dict,
    solution_to_dict,
)
from ..problems import dag_from_dict, dag_to_dict
from .broker import BrokerResult

#: Bumped when the result schema changes shape; a decoder seeing a newer
#: version fails loudly instead of mis-reading fields.
RESULT_WIRE_VERSION = 1


class WireCodecError(ValueError):
    """A result cannot be (de)coded for the shard wire protocol."""


def _decode_weight(text: str):
    if text == "inf":
        return INF
    return Fraction(text)


# ----------------------------------------------------------------------
# tree packings (broadcast / multicast): Dict[FrozenSet[Edge], Fraction]
# ----------------------------------------------------------------------
def _packing_to_wire(packing: Dict[Any, Fraction]) -> list:
    return [
        {"rate": encode_weight(rate),
         "edges": sorted([u, v] for u, v in tree)}
        for tree, rate in sorted(
            packing.items(), key=lambda tr: sorted(tr[0])
        )
    ]


def _packing_from_wire(records: list) -> Dict[FrozenSet[Tuple[str, str]],
                                              Fraction]:
    return {
        frozenset((u, v) for u, v in rec["edges"]):
            Fraction(rec["rate"])
        for rec in records
    }


# ----------------------------------------------------------------------
# solutions
# ----------------------------------------------------------------------
def solution_to_wire(solution: Any) -> Dict[str, Any]:
    """Encode any registered problem's solution object, tagged by kind."""
    if isinstance(solution, SteadyStateSolution):
        return {"kind": "steady-state", **solution_to_dict(solution)}
    if isinstance(solution, BroadcastSolution):
        return {
            "kind": "broadcast",
            "platform": platform_to_dict(solution.platform),
            "source": solution.source,
            "lp_bound": encode_weight(solution.lp_bound),
            "achieved": encode_weight(solution.achieved),
            "packing": _packing_to_wire(solution.packing),
            "exhaustive": solution.exhaustive,
        }
    if isinstance(solution, MulticastAnalysis):
        return {
            "kind": "multicast",
            "platform": platform_to_dict(solution.platform),
            "source": solution.source,
            "targets": list(solution.targets),
            "sum_lp": encode_weight(solution.sum_lp),
            "max_lp": encode_weight(solution.max_lp),
            "tree_optimal": encode_weight(solution.tree_optimal),
            "packing": _packing_to_wire(solution.packing),
            "exhaustive": solution.exhaustive,
        }
    if isinstance(solution, DagSolution):
        out: Dict[str, Any] = {
            "kind": "dag",
            "platform": platform_to_dict(solution.platform),
            "dag": dag_to_dict(solution.dag),
            "master": solution.master,
            "throughput": encode_weight(solution.throughput),
            "cons": [
                {"node": n, "type": t, "rate": encode_weight(r)}
                for (n, t), r in sorted(solution.cons.items())
            ],
            "flow": [
                {"src": i, "dst": j, "producer": k, "consumer": l,
                 "rate": encode_weight(r)}
                for (i, j, (k, l)), r in sorted(solution.flow.items())
            ],
        }
        if solution.affinity is not None:
            out["affinity"] = [
                {"node": n, "type": t,
                 "mult": encode_weight(m) if not is_infinite(m)
                 else "inf"}
                for (n, t), m in sorted(solution.affinity.items())
            ]
        return out
    raise WireCodecError(
        f"no wire encoding for solution type {type(solution).__name__}; "
        f"extend repro.service.wire before serving this problem over a "
        f"shard transport"
    )


def solution_from_wire(data: Dict[str, Any]) -> Any:
    """Decode :func:`solution_to_wire` output (exact inverse)."""
    kind = data.get("kind")
    if kind == "steady-state":
        return solution_from_dict(data)
    if kind == "broadcast":
        return BroadcastSolution(
            platform=platform_from_dict(data["platform"]),
            source=data["source"],
            lp_bound=_decode_weight(data["lp_bound"]),
            achieved=_decode_weight(data["achieved"]),
            packing=_packing_from_wire(data["packing"]),
            exhaustive=bool(data["exhaustive"]),
        )
    if kind == "multicast":
        return MulticastAnalysis(
            platform=platform_from_dict(data["platform"]),
            source=data["source"],
            targets=tuple(data["targets"]),
            sum_lp=_decode_weight(data["sum_lp"]),
            max_lp=_decode_weight(data["max_lp"]),
            tree_optimal=_decode_weight(data["tree_optimal"]),
            packing=_packing_from_wire(data["packing"]),
            exhaustive=bool(data["exhaustive"]),
        )
    if kind == "dag":
        affinity = None
        if "affinity" in data:
            affinity = {
                (rec["node"], rec["type"]): _decode_weight(rec["mult"])
                for rec in data["affinity"]
            }
        return DagSolution(
            platform=platform_from_dict(data["platform"]),
            dag=dag_from_dict(data["dag"]),
            master=data["master"],
            throughput=_decode_weight(data["throughput"]),
            cons={
                (rec["node"], rec["type"]): _decode_weight(rec["rate"])
                for rec in data["cons"]
            },
            flow={
                (rec["src"], rec["dst"],
                 (rec["producer"], rec["consumer"])):
                    _decode_weight(rec["rate"])
                for rec in data["flow"]
            },
            affinity=affinity,
        )
    raise WireCodecError(f"unknown solution wire kind {kind!r}")


# ----------------------------------------------------------------------
# broker results
# ----------------------------------------------------------------------
def result_to_wire(result: BrokerResult) -> Dict[str, Any]:
    """Encode a :class:`BrokerResult` as a JSON-safe dict."""
    out: Dict[str, Any] = {
        "version": RESULT_WIRE_VERSION,
        "fingerprint": result.fingerprint,
        "cached": result.cached,
        "warm": result.warm,
        "coalesced": result.coalesced,
        "latency_seconds": result.latency_seconds,
        "solution": solution_to_wire(result.solution),
    }
    if result.schedule is not None:
        out["schedule"] = schedule_to_dict(result.schedule)
    return out


def result_from_wire(data: Dict[str, Any]) -> BrokerResult:
    """Decode :func:`result_to_wire` output (exact inverse)."""
    version = data.get("version", RESULT_WIRE_VERSION)
    if version > RESULT_WIRE_VERSION:
        raise WireCodecError(
            f"result wire version {version} is newer than this decoder "
            f"({RESULT_WIRE_VERSION}); upgrade the broker host"
        )
    schedule: Optional[Any] = None
    if data.get("schedule") is not None:
        schedule = schedule_from_dict(data["schedule"])
    return BrokerResult(
        fingerprint=data["fingerprint"],
        solution=solution_from_wire(data["solution"]),
        schedule=schedule,
        cached=bool(data.get("cached", False)),
        warm=bool(data.get("warm", False)),
        coalesced=bool(data.get("coalesced", False)),
        # operational metadata (measured seconds), not part of the
        # exact result; explicitly float on both sides of the wire
        latency_seconds=float(data.get("latency_seconds", 0.0)),  # repro-lint: allow(exactness)
    )
