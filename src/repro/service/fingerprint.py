"""Canonical, order-independent fingerprints for platforms and requests.

Two requests must share a cache key exactly when they describe the *same
mathematical problem*: the same node/edge weights, the same problem kind,
the same distinguished nodes.  Everything presentational is excluded —
the platform's display name, node/edge *insertion order*, the order of a
target set — so a platform rebuilt from JSON, or assembled edge-by-edge
in a different order, still hits the cache.

Two signature levels are exposed:

* :func:`platform_signature` — nodes + edges *with* weights.  Any weight
  mutation changes it, which is what drives cache invalidation.
* :func:`topology_signature` — nodes + edges with weights *erased* (only
  the can-compute flag of each node survives).  Two platforms with equal
  topology signatures admit the *same LP structure*, differing only in
  coefficients — the precondition for the warm re-solve path of
  :mod:`repro.service.incremental`.

Fingerprints are hex SHA-256 digests of a canonical JSON encoding;
signatures are the underlying hashable tuples (useful as dict keys
without paying for the hash).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional, Sequence, Tuple

from ..platform.graph import Platform
from ..platform.serialization import encode_weight as _encode_weight

Signature = Tuple  # nested tuples of strings — hashable, comparable


def platform_signature(platform: Platform) -> Signature:
    """Order-independent structural signature including all weights.

    Nodes are sorted by name, edges by (src, dst); the platform's display
    name is deliberately excluded.
    """
    nodes = tuple(
        (name, _encode_weight(platform.node(name).w))
        for name in sorted(platform.nodes())
    )
    edges = tuple(
        (spec.src, spec.dst, _encode_weight(spec.c))
        for spec in sorted(platform.edges(), key=lambda e: (e.src, e.dst))
    )
    return ("platform", nodes, edges)


def topology_signature(platform: Platform) -> Signature:
    """Signature with weights erased — equal iff the LP *structure* matches.

    A node keeps only its can-compute flag (a forwarder has no ``alpha``
    variable, so compute-ability is structural, not a coefficient).
    """
    nodes = tuple(
        (name, "compute" if platform.node(name).can_compute else "forward")
        for name in sorted(platform.nodes())
    )
    edges = tuple(
        (spec.src, spec.dst)
        for spec in sorted(platform.edges(), key=lambda e: (e.src, e.dst))
    )
    return ("topology", nodes, edges)


def spec_signature(
    problem: str,
    source: Optional[str] = None,
    targets: Sequence[str] = (),
    options: Optional[Dict[str, Any]] = None,
) -> Signature:
    """Canonical signature of the problem spec (everything but the platform).

    ``targets`` is treated as a *set* of commodities — scatter / multicast /
    all-to-all semantics do not depend on target order — and is sorted.
    ``options`` (backend, port model, port count, tree limit, ...) are
    sorted by key; values must be JSON-representable scalars.
    """
    opts = tuple(sorted((str(k), str(v)) for k, v in (options or {}).items()))
    return (
        "spec",
        str(problem),
        "" if source is None else str(source),
        tuple(sorted(str(t) for t in targets)),
        opts,
    )


def request_fingerprint(
    platform: Platform,
    problem: str,
    source: Optional[str] = None,
    targets: Sequence[str] = (),
    options: Optional[Dict[str, Any]] = None,
) -> str:
    """Hex SHA-256 over the canonical JSON of (platform, spec) signatures."""
    payload = (
        platform_signature(platform),
        spec_signature(problem, source=source, targets=targets, options=options),
    )
    blob = json.dumps(payload, separators=(",", ":"), sort_keys=False)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
