"""End-to-end request tracing: span trees across every service layer.

Flat per-endpoint percentiles (``/metrics``) say *that* a request was
slow; this module says *where*.  A :class:`Trace` is a request-scoped
tree of :class:`Span`\\ s — each with a monotonic start offset, a
duration and typed annotations — threaded through the broker (cache
lookup, warm-vs-cold decision, coalescing leader/follower links), the
consistent-hash ring (shard chosen, failover hops), the shard
transports (pipe / TCP round-trips) and the exact simplex (phase
timings, pivot counts).  The design goals, in order:

1. **Zero cost when off.**  :func:`span` consults one
   :class:`contextvars.ContextVar`; with no active trace it returns a
   shared no-op context manager — no allocation, no timestamps.  Layers
   instrument unconditionally and the price is one ``ContextVar.get``
   per instrumentation point.  Context variables propagate both across
   threads (each thread sees its own value, exactly like the previous
   thread-local) *and* into asyncio tasks (``create_task`` snapshots the
   spawning context), so the async transport/server layers inherit the
   active span for free where a thread-local would silently drop it.
2. **Crosses every process/host boundary we have.**  The shard protocol
   of :mod:`repro.service.transport` carries an optional ``trace`` flag;
   a shard that sees it records its own span tree around the solve and
   returns it on the reply, and the caller *grafts* those spans under
   its transport span (:func:`graft_remote`) — re-identified,
   re-parented, and rebased into the caller's timeline by centering the
   remote tree inside the observed round-trip (the symmetric-delay
   assumption; cross-host offsets are therefore approximate by half the
   network asymmetry, durations are exact).
3. **Slow traces survive.**  :class:`TraceStore` keeps a bounded ring of
   recent traces plus a separate bounded ring of *slow* ones (duration
   over a configurable threshold), so a burst of fast requests can never
   evict the one trace you need (``GET /traces`` / ``GET /trace/<id>``).

Supervision events (shard ejection, rejoin, restart, timeout, failover)
are structured JSON lines — :func:`log_event` appends to a bounded
in-memory :class:`EventLog` *and* emits one ``repro.events`` log record
whose message is the JSON object, greppable by any log shipper.

This module imports only the standard library, on purpose: any layer
(including :mod:`repro.lp`) may use it without import cycles.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import logging
import os
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "Span",
    "Trace",
    "TraceStore",
    "EventLog",
    "EVENTS",
    "log_event",
    "current_span",
    "current_trace",
    "start_trace",
    "span",
    "activate",
    "annotate",
    "graft_remote",
    "render_waterfall",
]

# The active span.  A ContextVar behaves like the thread-local it
# replaced on plain threads (fresh threads start empty) while also
# flowing into asyncio tasks; exits restore the *remembered* previous
# span via ``set`` rather than a ``Token`` reset so a context manager
# entered in one task context and exited in another (the cross-thread
# ``activate`` hand-off) keeps today's semantics.
_current_span: "contextvars.ContextVar[Optional[Span]]" = \
    contextvars.ContextVar("repro_current_span", default=None)

# Trace ids are a random per-process prefix plus a counter: unique across
# processes (shards) with high probability, and allocation stays off the
# syscall path — ``next()`` on ``itertools.count`` is atomic under the GIL.
_ID_PREFIX = os.urandom(4).hex()
_ID_COUNTER = itertools.count(int.from_bytes(os.urandom(4), "big"))


def _next_trace_id() -> str:
    return "%s%08x" % (_ID_PREFIX, next(_ID_COUNTER) & 0xFFFFFFFF)


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


# ----------------------------------------------------------------------
# spans and traces
# ----------------------------------------------------------------------
class Span:
    """One timed operation inside a trace.

    ``start`` is seconds since the trace began (one monotonic clock per
    trace); ``duration_seconds`` is ``None`` until :meth:`finish`.
    Annotations are small JSON-safe facts ("shard", "pivots", "cached").
    """

    __slots__ = ("trace", "span_id", "parent_id", "name", "start",
                 "duration_seconds", "annotations")

    def __init__(self, trace: "Trace", span_id: int,
                 parent_id: Optional[int], name: str, start: float) -> None:
        self.trace = trace
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.duration_seconds: Optional[float] = None
        self.annotations: Dict[str, Any] = {}

    def annotate(self, **fields: Any) -> None:
        self.annotations.update(fields)

    def finish(self) -> None:
        if self.duration_seconds is None:
            self.duration_seconds = (
                time.perf_counter() - self.trace._t0 - self.start)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_seconds": self.start,
            "duration_seconds": self.duration_seconds,
            "annotations": {k: _json_safe(v)
                            for k, v in self.annotations.items()},
        }


class Trace:
    """A request-scoped tree of spans sharing one monotonic clock.

    Spans may be opened from any thread (the broker's worker pool, the
    per-shard dispatch queues); the trace serialises id allocation and
    the span list, nothing else.  The root span is created on
    construction and closed by :meth:`finish`.
    """

    def __init__(self, name: str, trace_id: Optional[str] = None) -> None:
        self.trace_id = trace_id if trace_id is not None \
            else _next_trace_id()
        self.name = name
        # wall clock, for humans; span math uses _t0 (perf_counter)
        self.started_at = time.time()  # repro-lint: allow(tracing)
        self._t0 = time.perf_counter()
        # Hot path is lock-free: ``next()`` on ``itertools.count`` and
        # ``list.append`` are both atomic under the GIL, which is all the
        # cross-thread span creation here needs.
        self._ids = itertools.count(1)
        self.duration_seconds: Optional[float] = None
        self.slow = False
        self.root = Span(self, 0, None, name, 0.0)  # starts at t0
        self.spans: List[Span] = [self.root]

    def elapsed(self) -> float:
        return time.perf_counter() - self._t0

    def new_span(self, name: str, parent_id: Optional[int],
                 start: Optional[float] = None) -> Span:
        if start is None:
            start = time.perf_counter() - self._t0
        sp = Span(self, next(self._ids), parent_id, name, start)
        self.spans.append(sp)
        return sp

    def reserve_ids(self, count: int) -> List[int]:
        """Allocate an id block (for grafting remote spans)."""
        return [next(self._ids) for _ in range(count)]

    def adopt(self, spans: Iterable[Span]) -> None:
        self.spans.extend(spans)

    def finish(self) -> None:
        self.root.finish()
        self.duration_seconds = self.root.duration_seconds

    def as_dict(self) -> Dict[str, Any]:
        spans = list(self.spans)  # atomic snapshot under the GIL
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "started_at": self.started_at,
            "duration_seconds": self.duration_seconds,
            "slow": self.slow,
            "spans": [sp.as_dict()
                      for sp in sorted(spans,
                                       key=lambda s: (s.start, s.span_id))],
        }

    def span_wire(self) -> List[Dict[str, Any]]:
        """The spans alone, JSON-safe — what crosses a shard boundary."""
        return self.as_dict()["spans"]

    def summary(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "started_at": self.started_at,
            "duration_seconds": self.duration_seconds,
            "slow": self.slow,
            "spans": len(self.spans),
            "annotations": {k: _json_safe(v)
                            for k, v in self.root.annotations.items()},
        }


# ----------------------------------------------------------------------
# the context-variable span state (threads and asyncio tasks)
# ----------------------------------------------------------------------
def current_span() -> Optional[Span]:
    """The innermost active span in this context (None when not tracing)."""
    return _current_span.get()


def current_trace() -> Optional[Trace]:
    sp = _current_span.get()
    return sp.trace if sp is not None else None


def annotate(**fields: Any) -> None:
    """Annotate the current span; a no-op when no trace is active."""
    sp = _current_span.get()
    if sp is not None:
        sp.annotations.update(fields)


class _NullContext:
    """Shared no-op for :func:`span` / :func:`activate` when not tracing."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL = _NullContext()


class _SpanContext:
    __slots__ = ("_parent", "_name", "_annotations", "span", "_prev")

    def __init__(self, parent: Span, name: str,
                 annotations: Dict[str, Any]) -> None:
        self._parent = parent
        self._name = name
        self._annotations = annotations

    def __enter__(self) -> Span:
        sp = self._parent.trace.new_span(self._name, self._parent.span_id)
        if self._annotations:
            sp.annotations.update(self._annotations)
        self.span = sp
        self._prev = _current_span.get()
        _current_span.set(sp)
        return sp

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.span.annotations.setdefault(
                "error", f"{exc_type.__name__}: {exc}")
        self.span.finish()
        _current_span.set(self._prev)
        return False


def span(name: str, **annotations: Any):
    """Open a child span of the current span; no-op when not tracing.

    Yields the :class:`Span` (or ``None`` when inactive) — guard direct
    use with ``if sp is not None`` or use :func:`annotate`.
    """
    parent = _current_span.get()
    if parent is None:
        return _NULL
    return _SpanContext(parent, name, annotations)


class _ActivateContext:
    """Re-enter a span on another thread (worker pools, dispatch queues).

    Does not finish the span on exit — ownership stays with whoever
    created it.
    """

    __slots__ = ("_span", "_prev")

    def __init__(self, sp: Span) -> None:
        self._span = sp

    def __enter__(self) -> Span:
        self._prev = _current_span.get()
        _current_span.set(self._span)
        return self._span

    def __exit__(self, *exc: Any) -> bool:
        _current_span.set(self._prev)
        return False


def activate(sp: Optional[Span]):
    """Make ``sp`` the current span for a block (cross-thread hand-off)."""
    if sp is None:
        return _NULL
    return _ActivateContext(sp)


class _TraceContext:
    __slots__ = ("_name", "_store", "_annotations", "trace", "_prev")

    def __init__(self, name: str, store: Optional["TraceStore"],
                 annotations: Dict[str, Any]) -> None:
        self._name = name
        self._store = store
        self._annotations = annotations

    def __enter__(self) -> Trace:
        tr = Trace(self._name)
        if self._annotations:
            tr.root.annotations.update(self._annotations)
        self.trace = tr
        self._prev = _current_span.get()
        _current_span.set(tr.root)
        return tr

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.trace.root.annotations.setdefault(
                "error", f"{exc_type.__name__}: {exc}")
        self.trace.finish()
        _current_span.set(self._prev)
        if self._store is not None:
            self._store.add(self.trace)
        return False


def start_trace(name: str, store: Optional["TraceStore"] = None,
                **annotations: Any) -> _TraceContext:
    """Begin a new trace and make its root the current span.

    On exit the trace is finished (duration stamped, errors annotated)
    and, when ``store`` is given, captured by it.  Nesting is allowed
    but unusual — the inner trace is independent; the outer one resumes
    on exit (what a shard does when a traced request arrives while the
    host process is itself being traced).
    """
    return _TraceContext(name, store, annotations)


# ----------------------------------------------------------------------
# grafting spans recorded on the far side of a transport
# ----------------------------------------------------------------------
def graft_remote(under: Span, wire_spans: List[Dict[str, Any]],
                 round_trip_seconds: float) -> int:
    """Attach a remote shard's span tree beneath ``under``.

    The remote spans carry offsets on the *shard's* clock (zero = the
    shard's root span).  They are re-identified into ``under``'s trace,
    re-parented (remote roots hang off ``under``) and rebased by
    centering the remote root inside the observed round-trip — i.e. the
    unaccounted wire/queue time is split evenly between the outbound and
    return legs.  Durations are preserved exactly; only the offsets are
    approximate.  Returns the number of spans grafted.
    """
    if not wire_spans:
        return 0
    trace = under.trace
    remote_total = max(
        (rec.get("duration_seconds") or 0.0)
        for rec in wire_spans if rec.get("parent") is None
    ) if any(rec.get("parent") is None for rec in wire_spans) else 0.0
    shift = under.start + max(0.0, (round_trip_seconds - remote_total) / 2)
    ids = trace.reserve_ids(len(wire_spans))
    id_map = {rec["id"]: ids[i] for i, rec in enumerate(wire_spans)}
    grafted: List[Span] = []
    for rec in wire_spans:
        parent = rec.get("parent")
        sp = Span(
            trace,
            id_map[rec["id"]],
            id_map[parent] if parent in id_map else under.span_id,
            rec["name"],
            float(rec.get("start_seconds", 0.0)) + shift,
        )
        sp.duration_seconds = rec.get("duration_seconds")
        sp.annotations.update(rec.get("annotations", {}))
        sp.annotations.setdefault("remote", True)
        grafted.append(sp)
    trace.adopt(grafted)
    return len(grafted)


# ----------------------------------------------------------------------
# the bounded store with always-keep-slow capture
# ----------------------------------------------------------------------
class TraceStore:
    """Bounded in-memory trace retention with slow-trace protection.

    Two rings: ``capacity`` recent traces (everything captured, FIFO
    eviction) and ``slow_capacity`` slow ones (duration >=
    ``slow_threshold`` seconds), evicted only by *other slow traces* —
    a flood of fast requests cannot push out the trace that explains
    the outlier.  Thread-safe; lookups check both rings.
    """

    def __init__(self, capacity: int = 256, slow_capacity: int = 64,
                 slow_threshold: float = 0.25) -> None:
        if capacity < 1 or slow_capacity < 1:
            raise ValueError("capacities must be >= 1")
        self.capacity = capacity
        self.slow_capacity = slow_capacity
        self.slow_threshold = slow_threshold
        self._lock = threading.Lock()
        self._recent: "OrderedDict[str, Trace]" = OrderedDict()  # guarded-by: _lock
        self._slow: "OrderedDict[str, Trace]" = OrderedDict()  # guarded-by: _lock
        self.captured = 0  # guarded-by: _lock
        self.slow_captured = 0  # guarded-by: _lock

    def add(self, trace: Trace) -> None:
        duration = trace.duration_seconds or 0.0
        with self._lock:
            self.captured += 1
            if duration >= self.slow_threshold:
                trace.slow = True
                self.slow_captured += 1
                self._slow[trace.trace_id] = trace
                while len(self._slow) > self.slow_capacity:
                    self._slow.popitem(last=False)
            self._recent[trace.trace_id] = trace
            while len(self._recent) > self.capacity:
                self._recent.popitem(last=False)

    def get(self, trace_id: str) -> Optional[Trace]:
        with self._lock:
            return self._recent.get(trace_id) or self._slow.get(trace_id)

    def index(self, limit: int = 100) -> List[Dict[str, Any]]:
        """Newest-first summaries across both rings (slow ones flagged)."""
        with self._lock:
            merged: "OrderedDict[str, Trace]" = OrderedDict()
            for tr in list(self._recent.values()) + list(self._slow.values()):
                merged[tr.trace_id] = tr
        ordered = sorted(merged.values(), key=lambda t: t.started_at,
                         reverse=True)
        return [tr.summary() for tr in ordered[:max(0, limit)]]

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "captured": self.captured,
                "slow_captured": self.slow_captured,
                "stored": len(self._recent),
                "stored_slow": len(self._slow),
                "capacity": self.capacity,
                "slow_capacity": self.slow_capacity,
                "slow_threshold_seconds": self.slow_threshold,
            }


# ----------------------------------------------------------------------
# structured JSON event logging (supervision events)
# ----------------------------------------------------------------------
_events_logger = logging.getLogger("repro.events")


class EventLog:
    """Bounded ring of structured supervision events.

    :meth:`emit` stamps a wall-clock time, keeps the record in memory
    (``GET /events``) and logs the JSON object as one ``repro.events``
    line — machine-parseable supervision history (shard ejected, shard
    rejoined, worker restarted, request timed out, failover taken)
    without standing up a log pipeline.
    """

    def __init__(self, capacity: int = 512,
                 logger: logging.Logger = _events_logger) -> None:
        self.capacity = max(1, capacity)
        self._logger = logger
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []  # guarded-by: _lock
        self.emitted = 0  # guarded-by: _lock

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        # supervision events carry human-facing wall-clock timestamps;
        # they are not spans and join no trace clock
        record = {"ts": time.time(), "event": event}  # repro-lint: allow(tracing)
        record.update({k: _json_safe(v) for k, v in fields.items()})
        with self._lock:
            self.emitted += 1
            self._events.append(record)
            if len(self._events) > self.capacity:
                del self._events[: len(self._events) - self.capacity]
        self._logger.info(json.dumps(record, sort_keys=True))
        return record

    def recent(self, limit: int = 100) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._events[-max(0, limit):])


#: process-wide default event log (the sharding layer emits here)
EVENTS = EventLog()


def log_event(event: str, **fields: Any) -> Dict[str, Any]:
    """Emit one supervision event to the process-wide :data:`EVENTS` log."""
    return EVENTS.emit(event, **fields)


# ----------------------------------------------------------------------
# waterfall rendering (the `submit --trace` printer)
# ----------------------------------------------------------------------
def render_waterfall(trace_dict: Dict[str, Any], width: int = 28) -> str:
    """ASCII waterfall of a trace *dict* (API response / store export).

    One line per span, indented by tree depth, with the start offset,
    duration, a proportional bar on a shared timeline, and the span's
    annotations.  Orphaned spans (parent evicted or foreign) are shown
    at the root level rather than dropped.
    """
    spans = trace_dict.get("spans", [])
    header = (
        f"trace {trace_dict.get('trace_id', '?')} "
        f"{trace_dict.get('name', '?')} — "
        f"{(trace_dict.get('duration_seconds') or 0.0) * 1e3:.3f} ms, "
        f"{len(spans)} spans"
        + (" [SLOW]" if trace_dict.get("slow") else "")
    )
    if not spans:
        return header
    ids = {rec["id"] for rec in spans}
    children: Dict[Optional[int], List[Dict[str, Any]]] = {}
    for rec in spans:
        parent = rec.get("parent")
        if parent not in ids:
            parent = None
        children.setdefault(parent, []).append(rec)
    for kids in children.values():
        kids.sort(key=lambda r: (r.get("start_seconds") or 0.0, r["id"]))
    total = max(
        (rec.get("start_seconds") or 0.0)
        + (rec.get("duration_seconds") or 0.0)
        for rec in spans
    ) or 1e-9
    name_width = max(
        len(rec["name"]) + 2 * _depth(rec, spans) for rec in spans
    )
    lines = [header]

    def walk(rec: Dict[str, Any], depth: int) -> None:
        start = rec.get("start_seconds") or 0.0
        duration = rec.get("duration_seconds")
        left = int(round(start / total * width))
        filled = max(1, int(round((duration or 0.0) / total * width)))
        filled = min(filled, width - min(left, width - 1))
        bar = " " * min(left, width - 1) + "█" * filled
        label = ("  " * depth + rec["name"]).ljust(name_width)
        dur_text = ("?" if duration is None
                    else f"{duration * 1e3:9.3f}ms")
        ann = " ".join(
            f"{k}={v}" for k, v in sorted(rec.get("annotations", {}).items())
        )
        lines.append(
            f"  {label}  +{start * 1e3:8.3f}ms {dur_text} "
            f"|{bar.ljust(width)}|" + (f"  {ann}" if ann else "")
        )
        for kid in children.get(rec["id"], ()):
            walk(kid, depth + 1)

    for root in children.get(None, ()):
        walk(root, 0)
    return "\n".join(lines)


def _depth(rec: Dict[str, Any], spans: List[Dict[str, Any]]) -> int:
    by_id = {r["id"]: r for r in spans}
    depth = 0
    cursor = rec
    while cursor.get("parent") in by_id and depth < 64:
        cursor = by_id[cursor["parent"]]
        depth += 1
    return depth
