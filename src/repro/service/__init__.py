"""repro.service — a cached, batched steady-state scheduling service.

The paper's central argument is that steady-state throughput is *cheap to
compute* (one LP per platform) and therefore practical to recompute as
platforms change.  This package turns the one-shot solver library into a
long-running scheduling service that amortises solves across requests:

* :mod:`~repro.service.fingerprint` — canonical, order-independent hashing
  of a platform + problem spec, so structurally identical requests share a
  cache key;
* :mod:`~repro.service.cache` — an LRU + TTL solution cache with hit /
  miss / eviction counters and explicit invalidation on platform mutation;
* :mod:`~repro.service.broker` — a request broker that coalesces duplicate
  in-flight requests, batches distinct ones and fans them out to a worker
  pool, dispatching every problem through the typed solver registry of
  :mod:`repro.problems` (one generic path, no per-problem adapters);
* :mod:`~repro.service.incremental` — warm re-solve when only edge/node
  weights change, for every solver declaring the ``warm_resolve``
  capability (the LP structure is reused, only coefficients are rebuilt;
  topology changes fall back to a full rebuild);
* :mod:`~repro.service.api` — a JSON request/response layer and the
  ``python -m repro serve`` / ``python -m repro submit`` CLI entry points;
* :mod:`~repro.service.metrics` — per-endpoint latency / throughput
  counters exposed through the API;
* :mod:`~repro.service.transport` + :mod:`~repro.service.wire` — the
  shard wire protocol: framed-JSON transports with per-request timeouts
  (local pipe workers, remote TCP shards via ``python -m repro
  shard-serve``), the asyncio stack on the same frames —
  :class:`AsyncTcpTransport` multiplexes many in-flight id-tagged
  requests over one connection, :class:`AsyncShardServer`
  (``shard-serve --async``) answers pings on the loop, enforces
  server-side op deadlines and coalesces cross-broker solves by
  fingerprint — and the exact JSON result codec they reply with;
* :mod:`~repro.service.sharding` — :class:`ShardedBroker`: consistent-
  hash routing over mixed thread / pipe / TCP shards with health
  supervision (auto-restart, ring ejection/rejoin, failover);
* :mod:`~repro.service.tracing` — request-scoped span trees threaded
  through every layer above (broker, ring, transports, simplex), a
  bounded slow-trace store behind ``GET /traces`` / ``GET /trace/<id>``,
  structured JSON supervision events, and the Prometheus text view of
  the metrics snapshot (``GET /metrics?format=prometheus``).

Quickstart
----------
>>> from repro import generators
>>> from repro.service import Broker, SolveRequest
>>> broker = Broker()
>>> req = SolveRequest(problem="master-slave",
...                    platform=generators.paper_figure1(), master="P1")
>>> cold = broker.solve(req)
>>> warm = broker.solve(req)          # served from cache
>>> assert warm.cached and warm.solution.throughput == cold.solution.throughput
"""

from .fingerprint import (
    platform_signature,
    request_fingerprint,
    spec_signature,
    topology_signature,
)
from .cache import CacheEntry, CacheStats, HeatSketch, SolutionCache
from .metrics import (
    EndpointMetrics,
    MetricsRegistry,
    merge_snapshots,
    render_prometheus,
)
from .tracing import (
    EventLog,
    Span,
    Trace,
    TraceStore,
    activate,
    annotate,
    current_span,
    current_trace,
    log_event,
    render_waterfall,
    span,
    start_trace,
)
from .broker import Broker, BrokerResult, SolveEngine, SolveRequest
from .incremental import IncrementalSolver, WarmSolveStats
from .api import (
    AsyncServiceServer,
    ServiceServer,
    handle_request,
    request_from_dict,
    request_to_dict,
    response_to_dict,
    route_get,
    route_post,
)
from .wire import (
    WireCodecError,
    result_from_wire,
    result_to_wire,
    solution_from_wire,
    solution_to_wire,
)
from .transport import (
    AsyncBridgeTransport,
    AsyncShardServer,
    AsyncTcpTransport,
    PipeTransport,
    ShardServer,
    TcpTransport,
    Transport,
    TransportError,
    TransportTimeout,
    connect,
    connect_async,
    encode_frame,
    parse_shard_address,
    read_frame_async,
)
from .sharding import (
    HashRing,
    ShardedBroker,
    ShardError,
    ShardTimeoutError,
    ShardUnavailableError,
)

__all__ = [
    "platform_signature",
    "topology_signature",
    "spec_signature",
    "request_fingerprint",
    "CacheEntry",
    "CacheStats",
    "HeatSketch",
    "SolutionCache",
    "EndpointMetrics",
    "MetricsRegistry",
    "merge_snapshots",
    "render_prometheus",
    "EventLog",
    "Span",
    "Trace",
    "TraceStore",
    "activate",
    "annotate",
    "current_span",
    "current_trace",
    "log_event",
    "render_waterfall",
    "span",
    "start_trace",
    "Broker",
    "BrokerResult",
    "SolveEngine",
    "SolveRequest",
    "HashRing",
    "ShardedBroker",
    "ShardError",
    "ShardTimeoutError",
    "ShardUnavailableError",
    "Transport",
    "TransportError",
    "TransportTimeout",
    "PipeTransport",
    "TcpTransport",
    "ShardServer",
    "AsyncTcpTransport",
    "AsyncBridgeTransport",
    "AsyncShardServer",
    "connect",
    "connect_async",
    "encode_frame",
    "read_frame_async",
    "parse_shard_address",
    "WireCodecError",
    "result_to_wire",
    "result_from_wire",
    "solution_to_wire",
    "solution_from_wire",
    "IncrementalSolver",
    "WarmSolveStats",
    "ServiceServer",
    "AsyncServiceServer",
    "handle_request",
    "request_from_dict",
    "request_to_dict",
    "response_to_dict",
    "route_get",
    "route_post",
]
