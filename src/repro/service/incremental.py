"""Warm re-solve of steady-state LPs when only platform weights change.

The SSMS LP of section 3.1 has one variable per (compute node, edge) and
one constraint per (port, conservation law): its *structure* is a pure
function of the platform topology, the chosen master and which nodes can
compute.  The node/edge weights enter only as the coefficients ``1/w_i``
and ``1/c_ij``.  When a monitoring layer re-weights a platform (CPU load
changed, a link slowed down) the LP therefore does not need to be
re-assembled: this module keeps the built model per (topology, master)
pair and, on a weight-only change, patches the moved coefficients through
the :class:`~repro.lp.model.LinearProgram` rebuild hook and re-solves.

A topology change (node/edge added or removed, or a node's compute
ability toggled) changes the structure itself; the solver detects it via
:func:`~repro.service.fingerprint.topology_signature` and transparently
falls back to a full rebuild (counted in
:attr:`WarmSolveStats.full_rebuilds`).

Exactness is preserved: a warm re-solve goes through the same exact
rational simplex as a cold solve of the mutated platform and produces the
identical :class:`~fractions.Fraction` throughput — asserted by the test
suite and the service benchmark.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional, Tuple

from ..core.master_slave import build_ssms_lp, package_ssms_solution
from ..core.activities import SteadyStateSolution
from ..lp.model import LinearProgram
from ..platform.graph import NodeId, Platform
from .fingerprint import Signature, topology_signature


@dataclass
class WarmSolveStats:
    """How often the warm path was taken vs a full rebuild."""

    warm_solves: int = 0
    full_rebuilds: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "warm_solves": self.warm_solves,
            "full_rebuilds": self.full_rebuilds,
        }


class IncrementalSolver:
    """Keeps assembled SSMS models hot across weight-only re-solves.

    One instance may serve many platforms: models are keyed by
    ``(topology signature, master)``.  Concurrency is per model: solves of
    the *same* structure are serialised (the model is patched in place, so
    a warm solve must not interleave with another), while solves of
    distinct structures run in parallel on the broker's worker pool.

    >>> from repro.platform import generators
    >>> inc = IncrementalSolver()
    >>> g = generators.star(3)
    >>> cold = inc.solve_master_slave(g, "M")     # builds the LP
    >>> g2 = g.scale(compute=2)                    # weight-only mutation
    >>> warm = inc.solve_master_slave(g2, "M")     # patches + re-solves
    >>> inc.stats.warm_solves
    1
    """

    def __init__(self, backend: str = "exact", max_models: int = 64) -> None:
        if max_models < 1:
            raise ValueError("max_models must be >= 1")
        self.backend = backend
        self.max_models = max_models
        self.stats = WarmSolveStats()
        # registry lock: guards the two dicts and the stats, never held
        # across an LP solve
        self._lock = threading.Lock()
        # (topology_sig, master) -> (lp, handles)
        self._models: Dict[
            Tuple[Signature, NodeId], Tuple[LinearProgram, Dict[str, object]]
        ] = {}
        # per-model locks: serialise patch+solve of one structure only.
        # Entries are NEVER removed — eviction/forget only drops the model.
        # Popping a lock while a thread still holds (or waits on) it would
        # let a later arrival mint a second lock for the same key and
        # patch an LP mid-solve; a lock object per distinct structure ever
        # seen is a few dozen bytes and keeps the invariant airtight.
        self._model_locks: Dict[Tuple[Signature, NodeId], threading.Lock] = {}

    # ------------------------------------------------------------------
    def solve_master_slave(
        self, platform: Platform, master: NodeId
    ) -> SteadyStateSolution:
        """Solve SSMS(G), warm when a structurally identical model is hot."""
        return self.solve_master_slave_ex(platform, master)[0]

    def solve_master_slave_ex(
        self, platform: Platform, master: NodeId
    ) -> Tuple[SteadyStateSolution, bool]:
        """Like :meth:`solve_master_slave`, also reporting whether the warm
        path was taken (decided under the model lock, so it is exact —
        unlike an outside :meth:`has_model` check, which can race with a
        concurrent first build or an eviction)."""
        key = (topology_signature(platform), master)
        with self._lock:
            model_lock = self._model_locks.setdefault(key, threading.Lock())
        with model_lock:
            with self._lock:
                cached = self._models.get(key)
            if cached is None:
                lp, handles = build_ssms_lp(platform, master)
                with self._lock:
                    self.stats.full_rebuilds += 1
                    while len(self._models) >= self.max_models:
                        # drop the oldest-inserted model; a size backstop,
                        # not an LRU — models are tiny.  A thread mid-solve
                        # on an evicted model keeps its local reference;
                        # the evicted key's lock stays (see __init__).
                        self._models.pop(next(iter(self._models)))
                    self._models[key] = (lp, handles)
            else:
                lp, handles = cached
                self._patch_coefficients(lp, handles, platform, master)
                with self._lock:
                    self.stats.warm_solves += 1
            sol = lp.solve(backend=self.backend)
            out = package_ssms_solution(
                platform, master, sol, handles, backend=self.backend
            )
            return out, cached is not None

    # ------------------------------------------------------------------
    @staticmethod
    def _patch_coefficients(
        lp: LinearProgram,
        handles: Dict[str, object],
        platform: Platform,
        master: NodeId,
    ) -> None:
        """Rewrite every weight-derived coefficient of the SSMS model.

        The conservation law of node ``i`` was assembled as
        ``inflow - compute - outflow == 0`` with coefficients ``+1/c_ji``
        (on ``s_ji``), ``-1/w_i`` (on ``alpha_i``) and ``-1/c_ij`` (on
        ``s_ij``); the objective carries ``+1/w_i`` per compute node.
        One-port constraints and variable bounds are weight-free.
        """
        one = Fraction(1)
        for node in platform.nodes():
            if node == master:
                continue
            name = f"conserve[{node}]"
            for j in platform.predecessors(node):
                lp.set_constraint_coefficient(
                    name, handles[("s", j, node)], one / platform.c(j, node)
                )
            for j in platform.successors(node):
                lp.set_constraint_coefficient(
                    name, handles[("s", node, j)], -one / platform.c(node, j)
                )
            spec = platform.node(node)
            if spec.can_compute:
                lp.set_constraint_coefficient(
                    name, handles[("alpha", node)], -one / spec.w
                )
        for node in platform.nodes():
            spec = platform.node(node)
            if spec.can_compute:
                lp.set_objective_coefficient(
                    handles[("alpha", node)], one / spec.w
                )

    # ------------------------------------------------------------------
    def has_model(self, platform: Platform, master: NodeId) -> bool:
        """True when a warm solve would reuse an already-built model."""
        key = (topology_signature(platform), master)
        with self._lock:
            return key in self._models

    def forget(self, platform: Platform, master: Optional[NodeId] = None) -> int:
        """Drop hot models for this topology (all masters unless given)."""
        topo = topology_signature(platform)
        with self._lock:
            doomed = [
                key for key in self._models
                if key[0] == topo and (master is None or key[1] == master)
            ]
            for key in doomed:
                # the model goes, its lock stays (see __init__)
                del self._models[key]
            return len(doomed)

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)
