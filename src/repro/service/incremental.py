"""Warm re-solve of steady-state LPs when only platform weights change.

The steady-state LPs have a *structure* (variables, constraint membership)
that is a pure function of the platform topology and the problem spec's
distinguished nodes, and *coefficients* (``1/w_i``, ``1/c_ij``) that are
pure functions of the weights.  When a monitoring layer re-weights a
platform (CPU load changed, a link slowed down) the LP therefore does not
need to be re-assembled: the built model is kept hot, the moved
coefficients are patched through the :class:`~repro.lp.model.LinearProgram`
rebuild hook, and the model is re-solved exactly.

Which problems support this — and *how* — is declared in the solver
registry (:mod:`repro.problems.registry`): an entry with the
``warm_resolve`` capability carries a
:class:`~repro.problems.registry.WarmModel` spelling out its
structure-vs-coefficient split (build / patch / package).  Master-slave
(SSMS), scatter and gather (SSPS, the latter on the reversed platform)
all declare it; :class:`IncrementalSolver` is the generic executor and
contains no per-problem code.

A topology change (node/edge added or removed, or a node's compute
ability toggled) changes the structure itself; the solver detects it via
:func:`~repro.service.fingerprint.topology_signature` and transparently
falls back to a full rebuild (counted in
:attr:`WarmSolveStats.full_rebuilds`).

Exactness is preserved: a warm re-solve goes through the same exact
rational simplex as a cold solve of the mutated platform and produces the
identical :class:`~fractions.Fraction` throughput — asserted by the test
suite and the service benchmark.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..lp.model import LinearProgram
from ..platform.graph import NodeId, Platform
from ..problems import MasterSlaveSpec, ProblemSpec, SpecError, resolve
from .fingerprint import topology_signature


@dataclass
class WarmSolveStats:
    """How often the warm path was taken vs a full rebuild."""

    warm_solves: int = 0
    full_rebuilds: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "warm_solves": self.warm_solves,
            "full_rebuilds": self.full_rebuilds,
        }


class IncrementalSolver:
    """Keeps assembled LP models hot across weight-only re-solves.

    One instance may serve many platforms and problem kinds: models are
    keyed by ``(topology signature, warm-model spec key)``.  Concurrency
    is per model: solves of the *same* structure are serialised (the model
    is patched in place, so a warm solve must not interleave with
    another), while solves of distinct structures run in parallel on the
    broker's worker pool.

    >>> from repro.platform import generators
    >>> inc = IncrementalSolver()
    >>> g = generators.star(3)
    >>> cold = inc.solve_master_slave(g, "M")     # builds the LP
    >>> g2 = g.scale(compute=2)                    # weight-only mutation
    >>> warm = inc.solve_master_slave(g2, "M")     # patches + re-solves
    >>> inc.stats.warm_solves
    1
    """

    def __init__(self, backend: str = "exact", max_models: int = 64) -> None:
        if max_models < 1:
            raise ValueError("max_models must be >= 1")
        self.backend = backend
        self.max_models = max_models
        self.stats = WarmSolveStats()
        # registry lock: guards the two dicts and the stats, never held
        # across an LP solve
        self._lock = threading.Lock()
        # key -> (lp, handles, root node of the spec that built it)
        self._models: Dict[
            Tuple, Tuple[LinearProgram, Dict[str, object], Optional[NodeId]]
        ] = {}
        # per-model locks: serialise patch+solve of one structure only.
        # Entries are NEVER removed — eviction/forget only drops the model.
        # Popping a lock while a thread still holds (or waits on) it would
        # let a later arrival mint a second lock for the same key and
        # patch an LP mid-solve; a lock object per distinct structure ever
        # seen is a few dozen bytes and keeps the invariant airtight.
        self._model_locks: Dict[Tuple, threading.Lock] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _key(spec: ProblemSpec) -> Tuple:
        entry = resolve(spec.problem)
        if entry.warm_model is None:
            raise SpecError(
                f"{spec.problem} declares no warm_resolve capability"
            )
        return (
            topology_signature(spec.platform),
            *tuple(entry.warm_model.spec_key(spec)),
        )

    def solve_spec(self, spec: ProblemSpec) -> Any:
        """Solve a warm-capable spec, reusing a hot model when possible."""
        return self.solve_spec_ex(spec)[0]

    def solve_spec_ex(self, spec: ProblemSpec) -> Tuple[Any, bool]:
        """Like :meth:`solve_spec`, also reporting whether the warm path
        was taken (decided under the model lock, so it is exact — unlike
        an outside :meth:`has_model` check, which can race with a
        concurrent first build or an eviction)."""
        model = resolve(spec.problem).warm_model
        key = self._key(spec)
        with self._lock:
            model_lock = self._model_locks.setdefault(key, threading.Lock())
        with model_lock:
            with self._lock:
                cached = self._models.get(key)
            if cached is None:
                lp, handles = model.build(spec)
                with self._lock:
                    self.stats.full_rebuilds += 1
                    while len(self._models) >= self.max_models:
                        # drop the oldest-inserted model; a size backstop,
                        # not an LRU — models are tiny.  A thread mid-solve
                        # on an evicted model keeps its local reference;
                        # the evicted key's lock stays (see __init__).
                        self._models.pop(next(iter(self._models)))
                    self._models[key] = (lp, handles, spec.source_node())
            else:
                lp, handles, _root = cached
                model.patch(lp, handles, spec)
                with self._lock:
                    self.stats.warm_solves += 1
            sol = lp.solve(backend=self.backend)
            out = model.package(spec, sol, handles, self.backend)
            return out, cached is not None

    # ------------------------------------------------------------------
    # master-slave convenience wrappers (the original PR 1 surface)
    # ------------------------------------------------------------------
    def solve_master_slave(
        self, platform: Platform, master: NodeId
    ) -> Any:
        """Solve SSMS(G), warm when a structurally identical model is hot."""
        return self.solve_spec(MasterSlaveSpec(platform=platform,
                                               master=master))

    def solve_master_slave_ex(
        self, platform: Platform, master: NodeId
    ) -> Tuple[Any, bool]:
        return self.solve_spec_ex(MasterSlaveSpec(platform=platform,
                                                  master=master))

    # ------------------------------------------------------------------
    def has_model(self, platform: Platform, master: NodeId) -> bool:
        """True when a warm master-slave solve would reuse a built model."""
        key = self._key(MasterSlaveSpec(platform=platform, master=master))
        with self._lock:
            return key in self._models

    def has_model_for(self, spec: ProblemSpec) -> bool:
        """True when a warm solve of ``spec`` would reuse a built model."""
        key = self._key(spec)
        with self._lock:
            return key in self._models

    def forget(self, platform: Platform, master: Optional[NodeId] = None) -> int:
        """Drop hot models for this topology (all roots unless given)."""
        topo = topology_signature(platform)
        with self._lock:
            doomed = [
                key for key, (_lp, _handles, root) in self._models.items()
                if key[0] == topo and (master is None or root == master)
            ]
            for key in doomed:
                # the model goes, its lock stays (see __init__)
                del self._models[key]
            return len(doomed)

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)
