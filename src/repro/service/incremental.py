"""Warm re-solve of steady-state LPs when only platform weights change.

The steady-state LPs have a *structure* (variables, constraint membership)
that is a pure function of the platform topology and the problem spec's
distinguished nodes, and *coefficients* (``1/w_i``, ``1/c_ij``) that are
pure functions of the weights.  When a monitoring layer re-weights a
platform (CPU load changed, a link slowed down) the LP therefore does not
need to be re-assembled: the built model is kept hot, the moved
coefficients are patched through the :class:`~repro.lp.model.LinearProgram`
rebuild hook, and the model is re-solved exactly.

Since the basis-reusing refactor the warm path is first-class all the way
down: each hot model carries a :class:`~repro.lp.simplex.SimplexInstance`
that retains the previous solve's optimal basis, so a warm re-solve
restarts pivoting from that basis (skipping phase 1 entirely when it is
still feasible, repairing primal/dual feasibility otherwise) instead of
re-running the two-phase method — with a guaranteed fallback to the cold
pivot sequence.  :class:`WarmSolveStats` counts the restarts, repairs,
fallbacks and pivots; the broker surfaces them in ``/metrics``.

Which problems support this — and *how* — is declared in the solver
registry (:mod:`repro.problems.registry`): an entry with the
``warm_resolve`` capability carries a
:class:`~repro.problems.registry.WarmModel` spelling out its
structure-vs-coefficient split (build / patch / package).  Master-slave
(SSMS), scatter and gather (SSPS, the latter on the reversed platform),
all-to-all, multiport and send-or-receive all declare it;
:class:`IncrementalSolver` is the generic executor and contains no
per-problem code.

A topology change (node/edge added or removed, or a node's compute
ability toggled) changes the structure itself; the solver detects it via
:func:`~repro.service.fingerprint.topology_signature` and transparently
falls back to a full rebuild (counted in
:attr:`WarmSolveStats.full_rebuilds`).

Exactness is preserved: a warm re-solve goes through the same exact
rational simplex arithmetic as a cold solve of the mutated platform and
produces the identical :class:`~fractions.Fraction` throughput — asserted
by the test suite and the warm-path benchmark.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..lp.model import LinearProgram
from ..lp.simplex import SimplexInstance
from ..platform.graph import NodeId, Platform
from ..problems import MasterSlaveSpec, ProblemSpec, SpecError, resolve
from .fingerprint import topology_signature
from .tracing import span


@dataclass
class WarmSolveStats:
    """How the warm path behaved, down to the pivot level.

    ``warm_solves`` / ``full_rebuilds`` split re-solves by whether a hot
    model was reused; ``evictions`` counts hot models dropped by the
    ``max_models`` cap (visibility into cache pressure — an evicted model
    costs a full rebuild *and* a cold pivot sequence on its next use).
    ``basis_restarts`` / ``phase1_skips`` / ``basis_fallbacks`` describe
    how the retained simplex basis fared on warm solves, and
    ``warm_pivots`` / ``cold_pivots`` accumulate the exact-simplex pivot
    counts of each path (the benchmark's headline comparison).

    The revised-simplex factorisation adds its own telemetry:
    ``refactorisations`` (fresh sparse LUs — on the warm path this is
    the count to compare against ``warm_pivots``: eta updates make it a
    small fraction), ``ftran_ops`` / ``btran_ops`` (forward/backward
    solves, the engine's unit of linear-algebra work),
    ``lu_fill_nnz`` / ``lu_basis_nnz`` (accumulated L+U fill vs basis
    nonzeros — their ratio is the Markowitz fill ratio the metrics
    endpoint derives), and ``eta_len_max``, a high-water mark (merged by
    ``max``, not sum, across shards).
    """

    warm_solves: int = 0
    full_rebuilds: int = 0
    evictions: int = 0
    basis_restarts: int = 0
    phase1_skips: int = 0
    basis_fallbacks: int = 0
    warm_pivots: int = 0
    cold_pivots: int = 0
    refactorisations: int = 0
    eta_len_max: int = 0
    ftran_ops: int = 0
    btran_ops: int = 0
    lu_fill_nnz: int = 0
    lu_basis_nnz: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class IncrementalSolver:
    """Keeps assembled LP models — and their simplex bases — hot across
    weight-only re-solves.

    One instance may serve many platforms and problem kinds: models are
    keyed by ``(topology signature, warm-model spec key)``.  Concurrency
    is per model: solves of the *same* structure are serialised (the model
    is patched in place, so a warm solve must not interleave with
    another), while solves of distinct structures run in parallel on the
    broker's worker pool.

    >>> from repro.platform import generators
    >>> inc = IncrementalSolver()
    >>> g = generators.star(3)
    >>> cold = inc.solve_master_slave(g, "M")     # builds the LP
    >>> g2 = g.scale(compute=2)                    # weight-only mutation
    >>> warm = inc.solve_master_slave(g2, "M")     # patches + re-solves
    >>> inc.stats.warm_solves
    1
    """

    def __init__(self, backend: str = "exact", max_models: int = 64) -> None:
        if max_models < 1:
            raise ValueError("max_models must be >= 1")
        self.backend = backend
        self.max_models = max_models
        # registry lock: guards the two dicts and the stats, never held
        # across an LP solve
        self._lock = threading.Lock()
        self.stats = WarmSolveStats()  # guarded-by: _lock
        # key -> (lp, handles, root node of the spec that built it,
        #         SimplexInstance or None for non-exact backends)
        self._models: Dict[  # guarded-by: _lock
            Tuple,
            Tuple[LinearProgram, Dict[str, object], Optional[NodeId],
                  Optional[SimplexInstance]],
        ] = {}
        # per-model locks: serialise patch+solve of one structure only.
        # Entries are NEVER removed — eviction/forget only drops the model.
        # Popping a lock while a thread still holds (or waits on) it would
        # let a later arrival mint a second lock for the same key and
        # patch an LP mid-solve; a lock object per distinct structure ever
        # seen is a few dozen bytes and keeps the invariant airtight.
        self._model_locks: Dict[Tuple, threading.Lock] = {}  # guarded-by: _lock

    # ------------------------------------------------------------------
    @staticmethod
    def _key(spec: ProblemSpec) -> Tuple:
        entry = resolve(spec.problem)
        if entry.warm_model is None:
            raise SpecError(
                f"{spec.problem} declares no warm_resolve capability"
            )
        return (
            topology_signature(spec.platform),
            *tuple(entry.warm_model.spec_key(spec)),
        )

    def solve_spec(self, spec: ProblemSpec) -> Any:
        """Solve a warm-capable spec, reusing a hot model when possible."""
        return self.solve_spec_ex(spec)[0]

    def solve_spec_ex(self, spec: ProblemSpec) -> Tuple[Any, bool]:
        """Like :meth:`solve_spec`, also reporting whether the warm path
        was taken (decided under the model lock, so it is exact — unlike
        an outside :meth:`has_model` check, which can race with a
        concurrent first build or an eviction)."""
        model = resolve(spec.problem).warm_model
        key = self._key(spec)
        with self._lock:
            model_lock = self._model_locks.setdefault(key, threading.Lock())
        with model_lock:
            with self._lock:
                cached = self._models.get(key)
            if cached is None:
                with span("warm.build", problem=spec.problem):
                    lp, handles = model.build(spec)
                instance = (SimplexInstance(lp)
                            if self.backend == "exact" else None)
                with self._lock:
                    self.stats.full_rebuilds += 1
                    while len(self._models) >= self.max_models:
                        # drop the oldest-inserted model; a size backstop,
                        # not an LRU — models are tiny.  A thread mid-solve
                        # on an evicted model keeps its local reference;
                        # the evicted key's lock stays (see __init__).
                        self._models.pop(next(iter(self._models)))
                        self.stats.evictions += 1
                    self._models[key] = (lp, handles, spec.source_node(),
                                         instance)
            else:
                lp, handles, _root, instance = cached
                with span("warm.patch", problem=spec.problem):
                    model.patch(lp, handles, spec)
                with self._lock:
                    self.stats.warm_solves += 1
            sol = self._solve_model(lp, instance, warm=cached is not None)
            out = model.package(spec, sol, handles, self.backend)
            return out, cached is not None

    def _solve_model(self, lp: LinearProgram,
                     instance: Optional[SimplexInstance], warm: bool) -> Any:
        """Solve a (possibly just patched) hot model, preferring the
        basis-restart path of its :class:`SimplexInstance`."""
        if instance is None:
            with span("lp.solve", backend=self.backend):
                return lp.solve(backend=self.backend)
        with span("simplex.solve", warm=warm) as sp:
            sol = instance.solve(warm=warm)
            if sp is not None:
                sp.annotate(pivots=sol.pivots,
                            restarted=instance.last_restarted,
                            phase1_skipped=instance.last_phase1_skipped)
                # re-publish the solver's raw phase records as child
                # spans — :mod:`repro.lp.simplex` stays tracing-free
                for ph in instance.last_phases:
                    child = sp.trace.new_span(
                        "simplex." + ph["phase"], sp.span_id,
                        start=sp.start + ph["start_seconds"])
                    child.duration_seconds = ph["duration_seconds"]
                    child.annotations["pivots"] = ph["pivots"]
        with self._lock:
            if warm:
                self.stats.warm_pivots += sol.pivots
                if instance.last_restarted:
                    self.stats.basis_restarts += 1
                    if instance.last_phase1_skipped:
                        self.stats.phase1_skips += 1
                else:
                    self.stats.basis_fallbacks += 1
            else:
                self.stats.cold_pivots += sol.pivots
            fs = instance.last_factor_stats
            self.stats.refactorisations += fs["refactorisations"]
            self.stats.ftran_ops += fs["ftran_ops"]
            self.stats.btran_ops += fs["btran_ops"]
            self.stats.lu_fill_nnz += fs["lu_nnz"]
            self.stats.lu_basis_nnz += fs["lu_basis_nnz"]
            if fs["eta_len_max"] > self.stats.eta_len_max:
                self.stats.eta_len_max = fs["eta_len_max"]
        return sol

    # ------------------------------------------------------------------
    # master-slave convenience wrappers (the original PR 1 surface)
    # ------------------------------------------------------------------
    def solve_master_slave(
        self, platform: Platform, master: NodeId
    ) -> Any:
        """Solve SSMS(G), warm when a structurally identical model is hot."""
        return self.solve_spec(MasterSlaveSpec(platform=platform,
                                               master=master))

    def solve_master_slave_ex(
        self, platform: Platform, master: NodeId
    ) -> Tuple[Any, bool]:
        return self.solve_spec_ex(MasterSlaveSpec(platform=platform,
                                                  master=master))

    # ------------------------------------------------------------------
    def has_model(self, platform: Platform, master: NodeId) -> bool:
        """True when a warm master-slave solve would reuse a built model."""
        key = self._key(MasterSlaveSpec(platform=platform, master=master))
        with self._lock:
            return key in self._models

    def has_model_for(self, spec: ProblemSpec) -> bool:
        """True when a warm solve of ``spec`` would reuse a built model."""
        key = self._key(spec)
        with self._lock:
            return key in self._models

    def forget(self, platform: Platform, master: Optional[NodeId] = None) -> int:
        """Drop hot models for this topology (all roots unless given)."""
        topo = topology_signature(platform)
        with self._lock:
            doomed = [
                key
                for key, (_lp, _handles, root, _inst) in self._models.items()
                if key[0] == topo and (master is None or root == master)
            ]
            for key in doomed:
                # the model goes, its lock stays (see __init__)
                del self._models[key]
            return len(doomed)

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)
