"""repro — steady-state scheduling on heterogeneous clusters.

A complete reproduction of Beaumont, Legrand, Marchal & Robert,
*Steady-State Scheduling on Heterogeneous Clusters: Why and How?*
(LIP RR-2004-11 / IPDPS 2004): the LP characterisations of steady-state
operation (master–slave tasking, pipelined scatter / broadcast / multicast,
DAG collections, divisible load), the schedule-reconstruction pipeline
(rational periods, weighted bipartite edge colouring, flow decomposition),
an event-driven simulator of the one-port full-overlap platform model, the
section-5 extensions (start-up costs, alternative port models, fixed
periods, dynamic adaptation, topology discovery) and the baselines the
approach is measured against.

Quickstart
----------
>>> import repro
>>> g = repro.generators.star(3, worker_w=[1, 2, 4], link_c=[1, 1, 2])
>>> sol = repro.solve_master_slave(g, "M")
>>> sched = repro.reconstruct_schedule(sol)
>>> result = repro.PeriodicRunner(sched).run(20)
>>> float(result.achieved_rate) <= float(sol.throughput)
True
"""

from ._rational import INF, as_fraction, lcm_denominators
from .platform.graph import Platform, PlatformError
from .platform import generators
from .core.activities import SteadyStateSolution, SteadyStateError
from .core.master_slave import ntask, solve_master_slave, star_throughput
from .core.scatter import solve_all_to_all, solve_gather, solve_scatter
from .core.broadcast import (
    BroadcastSolution,
    broadcast_lp_bound,
    edmonds_cut_bound,
    solve_broadcast,
    solve_reduce,
)
from .core.multicast import (
    MulticastAnalysis,
    analyze_figure2,
    best_single_tree,
    multicast_bounds,
    solve_multicast,
)
from .core.dag import TaskGraph, solve_dag_collection
from .core.divisible import (
    StarWorker,
    makespan_lower_bound,
    multi_round_makespan,
    one_round_schedule,
)
from .core.port_models import (
    solve_master_slave_multiport,
    solve_master_slave_send_or_receive,
)
from .schedule.periodic import CommSlice, PeriodicSchedule, ScheduleError
from .schedule.reconstruction import reconstruct_schedule
from .schedule.collective import packing_to_schedule
from .schedule.fixed_period import fixed_period_schedule, throughput_vs_period
from .schedule.startup import (
    StartupAnalysis,
    asymptotic_ratio_bound,
    default_group_count,
    grouped_schedule_makespan,
)
from .simulator.periodic_runner import PeriodicRunner, PeriodicRunResult
from .simulator.trace import ModelViolation, Trace
from .baselines.greedy import run_demand_driven
from .baselines.list_scheduling import makespan_comparison
from .dynamic.adaptive import run_adaptive
from .dynamic.autonomous import autonomous_throughput
from .platform.monitoring import SlidingWindowPredictor, TimeVaryingPlatform
from .analysis.certificates import ssms_certificate
from .schedule.batch import build_batch_schedule
from .platform.topology import (
    alnem_graph_view,
    complete_graph_view,
    env_tree_view,
    view_quality,
)
# Service-layer exports are lazy (PEP 562): `import repro` must not pay
# for http.server / concurrent.futures unless the service is actually used.
_SERVICE_EXPORTS = frozenset({
    "Broker",
    "BrokerResult",
    "IncrementalSolver",
    "MetricsRegistry",
    "SolutionCache",
    "SolveRequest",
    "request_fingerprint",
})


def __getattr__(name):
    if name in _SERVICE_EXPORTS:
        from . import service

        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__version__ = "1.0.0"

__all__ = [
    "INF",
    "as_fraction",
    "lcm_denominators",
    "Platform",
    "PlatformError",
    "generators",
    "SteadyStateSolution",
    "SteadyStateError",
    "ntask",
    "solve_master_slave",
    "star_throughput",
    "solve_scatter",
    "solve_gather",
    "solve_all_to_all",
    "BroadcastSolution",
    "broadcast_lp_bound",
    "edmonds_cut_bound",
    "solve_broadcast",
    "solve_reduce",
    "MulticastAnalysis",
    "analyze_figure2",
    "best_single_tree",
    "multicast_bounds",
    "solve_multicast",
    "TaskGraph",
    "solve_dag_collection",
    "StarWorker",
    "makespan_lower_bound",
    "multi_round_makespan",
    "one_round_schedule",
    "solve_master_slave_multiport",
    "solve_master_slave_send_or_receive",
    "CommSlice",
    "PeriodicSchedule",
    "ScheduleError",
    "reconstruct_schedule",
    "packing_to_schedule",
    "fixed_period_schedule",
    "throughput_vs_period",
    "StartupAnalysis",
    "asymptotic_ratio_bound",
    "default_group_count",
    "grouped_schedule_makespan",
    "PeriodicRunner",
    "PeriodicRunResult",
    "ModelViolation",
    "Trace",
    "run_demand_driven",
    "makespan_comparison",
    "run_adaptive",
    "autonomous_throughput",
    "SlidingWindowPredictor",
    "TimeVaryingPlatform",
    "alnem_graph_view",
    "complete_graph_view",
    "env_tree_view",
    "view_quality",
    "ssms_certificate",
    "build_batch_schedule",
    *sorted(_SERVICE_EXPORTS),
]
