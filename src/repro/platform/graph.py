"""Platform model: node-weighted, edge-weighted directed graph (section 2).

A :class:`Platform` is the graph ``G = (V, E, w, c)`` of the paper:

* each node ``Pi`` carries a weight ``w_i`` — the time (in time-steps) the
  node needs to process **one computational unit**; smaller is faster.
  ``w_i = INF`` is allowed and means the node has no computing power but can
  still forward data; ``w_i = 0`` is disallowed (it would permit infinitely
  fast computation).
* each directed edge ``e_ij : Pi -> Pj`` carries a weight ``c_ij`` — the
  time needed to communicate **one data unit** from ``Pi`` to ``Pj``.
  Links are oriented; a bidirectional link is two edges.  ``c_ij`` must be
  a positive rational (absent links are simply not in ``E``).

The operation mode attached to the platform (one-port full overlap by
default) is a property of the *simulator*, not of the graph; see
:mod:`repro.simulator.resources`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .._rational import INF, RationalLike, as_fraction, is_infinite

NodeId = str
Edge = Tuple[NodeId, NodeId]


class PlatformError(ValueError):
    """Raised on invalid platform construction or queries."""


@dataclass(frozen=True)
class NodeSpec:
    """A computing resource: ``w`` time-steps per computational unit."""

    name: NodeId
    #: Fraction, or INF for a pure forwarder (no computing power).
    w: object

    @property
    def can_compute(self) -> bool:
        return not is_infinite(self.w)

    @property
    def speed(self) -> Fraction:
        """Computational units per time-step (0 for forwarders)."""
        if is_infinite(self.w):
            return Fraction(0)
        return Fraction(1) / self.w


@dataclass(frozen=True)
class EdgeSpec:
    """A directed communication link: ``c`` time-steps per data unit."""

    src: NodeId
    dst: NodeId
    c: Fraction

    @property
    def bandwidth(self) -> Fraction:
        """Data units per time-step."""
        return Fraction(1) / self.c


class Platform:
    """The heterogeneous platform graph of the paper's section 2.

    Parameters
    ----------
    name:
        Optional label used in reports.

    Examples
    --------
    >>> g = Platform()
    >>> g.add_node("P0", w=1)
    >>> g.add_node("P1", w=2)
    >>> g.add_edge("P0", "P1", c="1/2")
    >>> g.num_nodes, g.num_edges
    (2, 1)
    """

    def __init__(self, name: str = "platform") -> None:
        self.name = name
        self._nodes: Dict[NodeId, NodeSpec] = {}
        self._edges: Dict[Edge, EdgeSpec] = {}
        self._succ: Dict[NodeId, List[NodeId]] = {}
        self._pred: Dict[NodeId, List[NodeId]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, name: NodeId, w: RationalLike = 1) -> NodeSpec:
        """Add a computing node.

        ``w`` is the per-computational-unit cost; pass :data:`repro.INF`
        for a node that can only forward data.  ``w`` must be positive.
        """
        if name in self._nodes:
            raise PlatformError(f"duplicate node {name!r}")
        if is_infinite(w):
            spec = NodeSpec(name, INF)
        else:
            wf = as_fraction(w)
            if wf <= 0:
                raise PlatformError(
                    f"node weight must be positive (w_i = 0 would allow "
                    f"infinitely many computations), got {w!r} for {name!r}"
                )
            spec = NodeSpec(name, wf)
        self._nodes[name] = spec
        self._succ[name] = []
        self._pred[name] = []
        return spec

    def add_edge(self, src: NodeId, dst: NodeId, c: RationalLike) -> EdgeSpec:
        """Add a directed link ``src -> dst`` with cost ``c`` per data unit."""
        if src not in self._nodes:
            raise PlatformError(f"unknown source node {src!r}")
        if dst not in self._nodes:
            raise PlatformError(f"unknown destination node {dst!r}")
        if src == dst:
            raise PlatformError(f"self-loop {src!r} -> {src!r} is not allowed")
        if (src, dst) in self._edges:
            raise PlatformError(f"duplicate edge {src!r} -> {dst!r}")
        if is_infinite(c):
            raise PlatformError(
                "an infinite communication cost means 'no link'; "
                "omit the edge instead of adding it"
            )
        cf = as_fraction(c)
        if cf <= 0:
            raise PlatformError(f"edge cost must be positive, got {c!r}")
        spec = EdgeSpec(src, dst, cf)
        self._edges[(src, dst)] = spec
        self._succ[src].append(dst)
        self._pred[dst].append(src)
        return spec

    def add_bidirectional_edge(
        self, a: NodeId, b: NodeId, c: RationalLike, c_back: Optional[RationalLike] = None
    ) -> Tuple[EdgeSpec, EdgeSpec]:
        """Add both ``a -> b`` (cost ``c``) and ``b -> a`` (cost ``c_back`` or ``c``)."""
        e1 = self.add_edge(a, b, c)
        e2 = self.add_edge(b, a, c if c_back is None else c_back)
        return e1, e2

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def nodes(self) -> List[NodeId]:
        """Node names in insertion order."""
        return list(self._nodes)

    def node(self, name: NodeId) -> NodeSpec:
        try:
            return self._nodes[name]
        except KeyError:
            raise PlatformError(f"unknown node {name!r}") from None

    def has_node(self, name: NodeId) -> bool:
        return name in self._nodes

    def edges(self) -> List[EdgeSpec]:
        """Edge specs in insertion order."""
        return list(self._edges.values())

    def edge(self, src: NodeId, dst: NodeId) -> EdgeSpec:
        try:
            return self._edges[(src, dst)]
        except KeyError:
            raise PlatformError(f"no edge {src!r} -> {dst!r}") from None

    def has_edge(self, src: NodeId, dst: NodeId) -> bool:
        return (src, dst) in self._edges

    def w(self, name: NodeId):
        """Node weight (Fraction, or INF for forwarders)."""
        return self.node(name).w

    def c(self, src: NodeId, dst: NodeId) -> Fraction:
        """Edge cost per data unit."""
        return self.edge(src, dst).c

    def successors(self, name: NodeId) -> List[NodeId]:
        """Nodes reachable by one out-edge of ``name`` (insertion order)."""
        if name not in self._succ:
            raise PlatformError(f"unknown node {name!r}")
        return list(self._succ[name])

    def predecessors(self, name: NodeId) -> List[NodeId]:
        """Nodes with an edge into ``name`` (insertion order)."""
        if name not in self._pred:
            raise PlatformError(f"unknown node {name!r}")
        return list(self._pred[name])

    def out_edges(self, name: NodeId) -> List[EdgeSpec]:
        return [self._edges[(name, j)] for j in self.successors(name)]

    def in_edges(self, name: NodeId) -> List[EdgeSpec]:
        return [self._edges[(j, name)] for j in self.predecessors(name)]

    def compute_nodes(self) -> List[NodeId]:
        """Nodes with finite ``w`` (the ones that can execute tasks)."""
        return [n for n, s in self._nodes.items() if s.can_compute]

    # ------------------------------------------------------------------
    # graph algorithms used throughout the library
    # ------------------------------------------------------------------
    def reachable_from(self, source: NodeId) -> Set[NodeId]:
        """All nodes reachable from ``source`` along directed edges."""
        self.node(source)
        seen = {source}
        stack = [source]
        while stack:
            u = stack.pop()
            for v in self._succ[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return seen

    def is_connected_from(self, source: NodeId) -> bool:
        """True when every node is reachable from ``source``."""
        return len(self.reachable_from(source)) == self.num_nodes

    def depth_from(self, source: NodeId) -> int:
        """Longest BFS distance from ``source`` over reachable nodes.

        This is the "depth of the platform graph" that bounds the number of
        initialisation periods in section 4.2.
        """
        self.node(source)
        dist = {source: 0}
        frontier = [source]
        depth = 0
        while frontier:
            nxt: List[NodeId] = []
            for u in frontier:
                for v in self._succ[u]:
                    if v not in dist:
                        dist[v] = dist[u] + 1
                        depth = max(depth, dist[v])
                        nxt.append(v)
            frontier = nxt
        return depth

    def shortest_path(self, src: NodeId, dst: NodeId) -> Optional[List[NodeId]]:
        """Minimum-total-``c`` directed path (Dijkstra), or None."""
        import heapq

        self.node(src)
        self.node(dst)
        dist: Dict[NodeId, Fraction] = {src: Fraction(0)}
        prev: Dict[NodeId, NodeId] = {}
        heap: List[Tuple[float, int, NodeId]] = [(0.0, 0, src)]
        counter = 1
        done: Set[NodeId] = set()
        while heap:
            _, _, u = heapq.heappop(heap)
            if u in done:
                continue
            done.add(u)
            if u == dst:
                break
            for v in self._succ[u]:
                nd = dist[u] + self._edges[(u, v)].c
                if v not in dist or nd < dist[v]:
                    dist[v] = nd
                    prev[v] = u
                    heapq.heappush(heap, (float(nd), counter, v))
                    counter += 1
        if dst not in done:
            return None
        path = [dst]
        while path[-1] != src:
            path.append(prev[path[-1]])
        path.reverse()
        return path

    def simple_paths(
        self, src: NodeId, dst: NodeId, limit: int = 10_000
    ) -> List[List[NodeId]]:
        """All simple directed paths ``src -> dst`` (DFS, bounded by ``limit``)."""
        self.node(src)
        self.node(dst)
        out: List[List[NodeId]] = []
        path = [src]
        on_path = {src}

        def dfs(u: NodeId) -> None:
            if len(out) >= limit:
                return
            if u == dst:
                out.append(list(path))
                return
            for v in self._succ[u]:
                if v not in on_path:
                    path.append(v)
                    on_path.add(v)
                    dfs(v)
                    path.pop()
                    on_path.discard(v)

        dfs(src)
        return out

    def min_cut_value(self, src: NodeId, dst: NodeId) -> Fraction:
        """Max-flow value from ``src`` to ``dst`` with capacities ``1/c_ij``.

        Used by the broadcast module: Edmonds' theorem relates arborescence
        packing to min-cuts.  Exact rational Edmonds-Karp.
        """
        self.node(src)
        self.node(dst)
        residual: Dict[Edge, Fraction] = {}
        adj: Dict[NodeId, Set[NodeId]] = {n: set() for n in self._nodes}
        for (u, v), spec in self._edges.items():
            residual[(u, v)] = residual.get((u, v), Fraction(0)) + spec.bandwidth
            residual.setdefault((v, u), Fraction(0))
            adj[u].add(v)
            adj[v].add(u)
        flow = Fraction(0)
        while True:
            # BFS for an augmenting path in the residual graph.
            parent: Dict[NodeId, NodeId] = {src: src}
            frontier = [src]
            while frontier and dst not in parent:
                nxt: List[NodeId] = []
                for u in frontier:
                    for v in adj[u]:
                        if v not in parent and residual.get((u, v), Fraction(0)) > 0:
                            parent[v] = u
                            nxt.append(v)
                frontier = nxt
            if dst not in parent:
                return flow
            # Find bottleneck.
            bottleneck: Optional[Fraction] = None
            v = dst
            while v != src:
                u = parent[v]
                r = residual[(u, v)]
                bottleneck = r if bottleneck is None else min(bottleneck, r)
                v = u
            assert bottleneck is not None and bottleneck > 0
            v = dst
            while v != src:
                u = parent[v]
                residual[(u, v)] -= bottleneck
                residual[(v, u)] += bottleneck
                v = u
            flow += bottleneck

    # ------------------------------------------------------------------
    # transforms / io
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "Platform":
        g = Platform(name or self.name)
        for spec in self._nodes.values():
            g.add_node(spec.name, spec.w)
        for spec in self._edges.values():
            g.add_edge(spec.src, spec.dst, spec.c)
        return g

    def scale(
        self, compute: RationalLike = 1, comm: RationalLike = 1, name: Optional[str] = None
    ) -> "Platform":
        """Return a copy with all ``w`` multiplied by ``compute`` and all
        ``c`` by ``comm`` (used by the dynamic/monitoring modules)."""
        cf = as_fraction(compute)
        mf = as_fraction(comm)
        if cf <= 0 or mf <= 0:
            raise PlatformError("scale factors must be positive")
        g = Platform(name or self.name)
        for spec in self._nodes.values():
            g.add_node(spec.name, INF if not spec.can_compute else spec.w * cf)
        for spec in self._edges.values():
            g.add_edge(spec.src, spec.dst, spec.c * mf)
        return g

    def to_networkx(self):
        """Export to a :class:`networkx.DiGraph` (float weights)."""
        import networkx as nx

        g = nx.DiGraph(name=self.name)
        for spec in self._nodes.values():
            g.add_node(spec.name, w=float(spec.w) if spec.can_compute else INF)
        for spec in self._edges.values():
            g.add_edge(spec.src, spec.dst, c=float(spec.c))
        return g

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._nodes)

    def __contains__(self, name: object) -> bool:
        return name in self._nodes

    def __repr__(self) -> str:
        return (
            f"Platform({self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )

    def describe(self) -> str:
        """Multi-line human-readable description (used by examples)."""
        from .._rational import format_fraction

        lines = [f"Platform {self.name!r}: {self.num_nodes} nodes, {self.num_edges} edges"]
        for spec in self._nodes.values():
            wtxt = "inf (forwarder)" if not spec.can_compute else format_fraction(spec.w)
            lines.append(f"  node {spec.name}: w = {wtxt}")
        for spec in self._edges.values():
            lines.append(
                f"  edge {spec.src} -> {spec.dst}: c = {format_fraction(spec.c)}"
            )
        return "\n".join(lines)
