"""Topology discovery simulations — section 5.3.

The true topology of a wide-area platform is unknowable (Paxson [14]); what
schedulers get is a *macroscopic* view inferred from probes.  The paper
contrasts three views and this module reproduces all of them against a
ground-truth platform:

* :func:`complete_graph_view` — ping every host pair (Bhat et al. [10]):
  a complete graph of end-to-end costs that **ignores contention** (shared
  links appear independent), so schedules planned on it over-estimate
  throughput;
* :func:`env_tree_view` — ENV [16]: the platform as seen from the master,
  a tree whose shared links are discovered by interference probes; it
  under-approximates (only tree edges survive) but is contention-safe;
* :func:`alnem_graph_view` — AlNeM [13]: pairwise interference probes from
  several vantage points recover a graph closer to the real one (here:
  the union of shortest-path trees from every node).

Probes are simulated from the ground truth — exactly what the cited tools
measure on a real network, minus the noise.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .._rational import INF
from .graph import Edge, NodeId, Platform, PlatformError


def probe_path(platform: Platform, a: NodeId, b: NodeId) -> Optional[List[NodeId]]:
    """The route a probe takes (min-cost path, deterministic tie-break)."""
    return platform.shortest_path(a, b)


def probe_cost(platform: Platform, a: NodeId, b: NodeId) -> Optional[Fraction]:
    """End-to-end unit-message cost measured by a ping."""
    path = probe_path(platform, a, b)
    if path is None:
        return None
    total = Fraction(0)
    for u, v in zip(path, path[1:]):
        total += platform.c(u, v)
    return total


def probes_interfere(
    platform: Platform, pair1: Tuple[NodeId, NodeId], pair2: Tuple[NodeId, NodeId]
) -> bool:
    """Do simultaneous transfers on the two routes share a link (or port)?

    This is the measurable signal ENV/AlNeM exploit: bandwidth drops when
    two flows contend for a shared resource.
    """
    p1 = probe_path(platform, *pair1)
    p2 = probe_path(platform, *pair2)
    if p1 is None or p2 is None:
        return False
    edges1 = set(zip(p1, p1[1:]))
    edges2 = set(zip(p2, p2[1:]))
    if edges1 & edges2:
        return True
    # one-port interference: same sender or same receiver on any hop
    senders1 = {u for u, _ in edges1}
    senders2 = {u for u, _ in edges2}
    receivers1 = {v for _, v in edges1}
    receivers2 = {v for _, v in edges2}
    return bool(senders1 & senders2) or bool(receivers1 & receivers2)


def complete_graph_view(
    platform: Platform, hosts: Optional[Sequence[NodeId]] = None
) -> Platform:
    """Contention-blind complete graph of measured end-to-end costs [10]."""
    names = list(hosts) if hosts is not None else platform.nodes()
    g = Platform(f"{platform.name}-complete-view")
    for n in names:
        g.add_node(n, platform.node(n).w)
    for a in names:
        for b in names:
            if a == b:
                continue
            cost = probe_cost(platform, a, b)
            if cost is not None:
                g.add_edge(a, b, cost)
    return g


def env_tree_view(platform: Platform, master: NodeId) -> Platform:
    """ENV-style tree as seen from the master [16].

    Each host's probe route from the master is observed hop-free; shared
    prefixes are identified by interference probing, which (with exact
    measurements) reconstructs the shortest-path tree.  Inferred link cost
    of a tree edge = measured cost difference between its endpoints.
    """
    platform.node(master)
    g = Platform(f"{platform.name}-env-view")
    g.add_node(master, platform.node(master).w)
    dist: Dict[NodeId, Fraction] = {master: Fraction(0)}
    parents: Dict[NodeId, NodeId] = {}
    for node in platform.nodes():
        if node == master:
            continue
        path = probe_path(platform, master, node)
        if path is None:
            continue
        cost = probe_cost(platform, master, node)
        assert cost is not None
        dist[node] = cost
        parents[node] = path[-2]
    for node, parent in parents.items():
        if node not in dist or parent not in dist:
            continue  # pragma: no cover — parents come from valid paths
    for node in parents:
        g.add_node(node, platform.node(node).w)
    for node, parent in sorted(parents.items()):
        link = dist[node] - dist[parent]
        if link <= 0:  # degenerate measurement; keep a minimal cost
            link = platform.c(parent, node)
        g.add_edge(parent, node, link)
    return g


def alnem_graph_view(platform: Platform) -> Platform:
    """AlNeM-style graph: union of every host's shortest-path tree [13].

    Richer than a single tree (alternate routes appear when some vantage
    point routes through them) yet contention-consistent: every inferred
    edge is a real platform edge with its true cost.
    """
    g = Platform(f"{platform.name}-alnem-view")
    for n in platform.nodes():
        g.add_node(n, platform.node(n).w)
    added: Set[Edge] = set()
    for src in platform.nodes():
        for dst in platform.nodes():
            if src == dst:
                continue
            path = probe_path(platform, src, dst)
            if path is None:
                continue
            for u, v in zip(path, path[1:]):
                if (u, v) not in added:
                    added.add((u, v))
                    g.add_edge(u, v, platform.c(u, v))
    return g


def view_quality(
    platform: Platform, master: NodeId
) -> Dict[str, Fraction]:
    """ntask(G) under each view vs the truth — benchmark C12's rows.

    Provable ordering (asserted by tests): ``env-tree <= alnem <= truth``,
    because both inferred views are subgraphs of the truth with true edge
    costs — they can only discard parallelism.  The complete-graph view is
    *not* ordered: it ignores contention (optimistic) but charges end-to-
    end path costs on the endpoints' ports (pessimistic, since real
    multi-hop transfers pipeline).  Interestingly, for single-master
    tasking the master's send port often dominates, making even the tree
    view exact — the measured justification for the paper's remark that
    ENV "has been especially designed for master slave tasking".
    """
    from ..core.master_slave import ntask

    return {
        "truth": ntask(platform, master),
        "env-tree": ntask(env_tree_view(platform, master), master),
        "alnem": ntask(alnem_graph_view(platform), master),
        "complete": ntask(complete_graph_view(platform), master),
    }
