"""Platform and schedule (de)serialisation.

Plain-dict / JSON round-trips so platforms can live in version control and
schedules can be shipped to the machines that execute them.  Exact
rationals are encoded as ``"p/q"`` strings; infinite weights as ``"inf"``.
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any, Dict, List, Optional

from .._rational import INF, as_fraction, is_infinite
from .graph import Platform, PlatformError


def _encode_weight(value) -> str:
    if is_infinite(value):
        return "inf"
    f = value if isinstance(value, Fraction) else as_fraction(value)
    return f"{f.numerator}/{f.denominator}" if f.denominator != 1 else str(
        f.numerator
    )


#: public alias — the one wire encoding of exact rationals, shared by the
#: service layer (fingerprints, API payloads) so the format cannot drift
encode_weight = _encode_weight


def _decode_weight(text: str):
    if text == "inf":
        return INF
    return Fraction(text)


def platform_to_dict(platform: Platform) -> Dict[str, Any]:
    """Serialise a platform to a JSON-safe dict."""
    return {
        "name": platform.name,
        "nodes": [
            {"name": spec.name, "w": _encode_weight(spec.w)}
            for spec in platform._nodes.values()  # noqa: SLF001 same package
        ],
        "edges": [
            {"src": spec.src, "dst": spec.dst, "c": _encode_weight(spec.c)}
            for spec in platform.edges()
        ],
    }


def platform_from_dict(data: Dict[str, Any]) -> Platform:
    """Rebuild a platform; raises :class:`PlatformError` on bad input."""
    try:
        g = Platform(data.get("name", "platform"))
        for node in data["nodes"]:
            g.add_node(node["name"], _decode_weight(node["w"]))
        for edge in data["edges"]:
            g.add_edge(edge["src"], edge["dst"], _decode_weight(edge["c"]))
        return g
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, PlatformError):
            raise
        raise PlatformError(f"malformed platform data: {exc}") from exc


def platform_to_json(platform: Platform, indent: int = 2) -> str:
    return json.dumps(platform_to_dict(platform), indent=indent)


def platform_from_json(text: str) -> Platform:
    return platform_from_dict(json.loads(text))


def schedule_to_dict(schedule) -> Dict[str, Any]:
    """Serialise a :class:`~repro.schedule.periodic.PeriodicSchedule`."""
    return {
        "problem": schedule.problem,
        "platform": platform_to_dict(schedule.platform),
        "period": _encode_weight(schedule.period),
        "throughput": _encode_weight(schedule.throughput),
        "source": schedule.source,
        "slices": [
            {
                "start": _encode_weight(sl.start),
                "duration": _encode_weight(sl.duration),
                "transfers": dict(sl.transfers),
            }
            for sl in schedule.slices
        ],
        "compute": dict(schedule.compute),
        "messages": [
            {"src": i, "dst": j, "count": count}
            for (i, j), count in schedule.messages.items()
        ],
        "routes": {
            commodity: [
                {"path": list(path), "units": _encode_weight(units)}
                for path, units in routes
            ]
            for commodity, routes in schedule.routes.items()
        },
    }


def schedule_from_dict(data: Dict[str, Any]):
    """Rebuild a periodic schedule (validated on construction)."""
    from ..schedule.periodic import CommSlice, PeriodicSchedule

    platform = platform_from_dict(data["platform"])
    slices = [
        CommSlice(
            start=Fraction(s["start"]),
            duration=Fraction(s["duration"]),
            transfers=dict(s["transfers"]),
        )
        for s in data["slices"]
    ]
    schedule = PeriodicSchedule(
        platform=platform,
        problem=data["problem"],
        period=Fraction(data["period"]),
        throughput=Fraction(data["throughput"]),
        slices=slices,
        compute={k: int(v) for k, v in data.get("compute", {}).items()},
        messages={
            (m["src"], m["dst"]): int(m["count"])
            for m in data.get("messages", [])
        },
        routes={
            commodity: [
                (tuple(r["path"]), Fraction(r["units"])) for r in routes
            ]
            for commodity, routes in data.get("routes", {}).items()
        },
        source=data.get("source"),
    )
    schedule.validate()
    return schedule


def schedule_to_json(schedule, indent: int = 2) -> str:
    return json.dumps(schedule_to_dict(schedule), indent=indent)


def schedule_from_json(text: str):
    return schedule_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# steady-state solutions (the service API's response payload)
# ----------------------------------------------------------------------
def solution_to_dict(solution) -> Dict[str, Any]:
    """Serialise a :class:`~repro.core.activities.SteadyStateSolution`.

    The wire format follows the platform conventions above: exact
    rationals as ``"p/q"`` strings, activities as explicit records rather
    than tuple keys so the JSON stays self-describing.
    """
    return {
        "problem": solution.problem,
        "platform": platform_to_dict(solution.platform),
        "throughput": _encode_weight(solution.throughput),
        "alpha": {
            node: _encode_weight(a) for node, a in solution.alpha.items()
        },
        "s": [
            {"src": i, "dst": j, "value": _encode_weight(v)}
            for (i, j), v in solution.s.items()
        ],
        "send": [
            {"src": i, "dst": j, "commodity": k, "rate": _encode_weight(r)}
            for (i, j, k), r in solution.send.items()
        ],
        "source": solution.source,
        "targets": list(solution.targets),
        "edge_occupation_mode": solution.edge_occupation_mode,
    }


def solution_from_dict(data: Dict[str, Any]):
    """Rebuild a steady-state solution from its wire form."""
    from ..core.activities import SteadyStateSolution

    return SteadyStateSolution(
        platform=platform_from_dict(data["platform"]),
        problem=data["problem"],
        throughput=_decode_weight(data["throughput"]),
        alpha={
            n: _decode_weight(a) for n, a in data.get("alpha", {}).items()
        },
        s={
            (rec["src"], rec["dst"]): _decode_weight(rec["value"])
            for rec in data.get("s", [])
        },
        send={
            (rec["src"], rec["dst"], rec["commodity"]):
                _decode_weight(rec["rate"])
            for rec in data.get("send", [])
        },
        source=data.get("source"),
        targets=tuple(data.get("targets", ())),
        edge_occupation_mode=data.get("edge_occupation_mode", "sum"),
    )


def solution_to_json(solution, indent: int = 2) -> str:
    return json.dumps(solution_to_dict(solution), indent=indent)


def solution_from_json(text: str):
    return solution_from_dict(json.loads(text))
