"""Time-varying platforms and NWS-style monitoring — section 5.5.

Grid resources drift: background load changes CPU speeds, cross-traffic
changes link bandwidths.  The paper's remedy divides time into *phases*,
collects observations during each phase (the paper cites NWS [18]) and
uses them to plan the next one: "use the past to predict the future".

:class:`TimeVaryingPlatform` produces a per-epoch snapshot of a base
platform with multiplicative drift (log-space random walk, seeded and
reproducible).  :class:`SlidingWindowPredictor` is the NWS-like forecaster:
it predicts next-epoch parameters from a window of past observations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from .._rational import INF, as_fraction, is_infinite
from .graph import Edge, NodeId, Platform


class TimeVaryingPlatform:
    """A base platform whose weights drift epoch by epoch.

    Parameters
    ----------
    base:
        The nominal platform (epoch 0 multipliers are all 1).
    drift:
        Maximum per-epoch relative step, e.g. ``0.2`` lets every weight
        move by up to +-20% per epoch (multiplicatively).
    bounds:
        Clamp multipliers into ``[lo, hi]`` so resources never die or
        become infinitely fast.
    """

    def __init__(
        self,
        base: Platform,
        drift: float = 0.2,
        seed: Optional[int] = None,
        bounds: Tuple[float, float] = (0.25, 4.0),
    ) -> None:
        if not (0 <= drift < 1):
            raise ValueError("drift must be in [0, 1)")
        self.base = base
        self.drift = drift
        self.bounds = bounds
        self._rng = random.Random(seed)
        self._node_mult: Dict[NodeId, Fraction] = {
            n: Fraction(1) for n in base.nodes()
        }
        self._edge_mult: Dict[Edge, Fraction] = {
            (e.src, e.dst): Fraction(1) for e in base.edges()
        }
        self._epoch = 0
        self._history: List[Platform] = [self.snapshot()]

    @property
    def epoch(self) -> int:
        return self._epoch

    def _step_multiplier(self, current: Fraction) -> Fraction:
        lo, hi = self.bounds
        factor = Fraction(
            1 + self._rng.uniform(-self.drift, self.drift)
        ).limit_denominator(1000)
        new = current * factor
        if new < as_fraction(lo):
            new = as_fraction(lo)
        if new > as_fraction(hi):
            new = as_fraction(hi)
        return new

    def advance(self) -> Platform:
        """Move to the next epoch; returns its snapshot."""
        for n in self._node_mult:
            self._node_mult[n] = self._step_multiplier(self._node_mult[n])
        for e in self._edge_mult:
            self._edge_mult[e] = self._step_multiplier(self._edge_mult[e])
        self._epoch += 1
        snap = self.snapshot()
        self._history.append(snap)
        return snap

    def snapshot(self) -> Platform:
        """The platform as it currently stands (exact rational weights)."""
        g = Platform(f"{self.base.name}@epoch{self._epoch}")
        for name in self.base.nodes():
            spec = self.base.node(name)
            if not spec.can_compute:
                g.add_node(name, INF)
            else:
                g.add_node(name, spec.w * self._node_mult[name])
        for spec in self.base.edges():
            g.add_edge(
                spec.src,
                spec.dst,
                spec.c * self._edge_mult[(spec.src, spec.dst)],
            )
        return g

    def history(self) -> List[Platform]:
        """Snapshots for epochs ``0..epoch`` (read-only view)."""
        return list(self._history)


@dataclass
class SlidingWindowPredictor:
    """NWS-like forecaster: mean of the last ``window`` observations.

    The real Network Weather Service runs a battery of predictors and picks
    the historically best; the sliding mean is its most common winner for
    slowly drifting series and suffices for the scheduling experiments.
    """

    window: int = 3
    _node_obs: Dict[NodeId, List[Fraction]] = field(default_factory=dict)
    _edge_obs: Dict[Edge, List[Fraction]] = field(default_factory=dict)

    def observe(self, platform: Platform) -> None:
        """Record one epoch's measured parameters."""
        for name in platform.nodes():
            spec = platform.node(name)
            if spec.can_compute:
                self._node_obs.setdefault(name, []).append(spec.w)
        for spec in platform.edges():
            self._edge_obs.setdefault((spec.src, spec.dst), []).append(spec.c)

    def _mean(self, series: List[Fraction]) -> Fraction:
        tail = series[-self.window:]
        return sum(tail, start=Fraction(0)) / len(tail)

    def predict(self, template: Platform) -> Platform:
        """Forecast the next epoch as a platform (same topology)."""
        g = Platform(f"{template.name}-predicted")
        for name in template.nodes():
            spec = template.node(name)
            if not spec.can_compute:
                g.add_node(name, INF)
            else:
                obs = self._node_obs.get(name)
                g.add_node(name, self._mean(obs) if obs else spec.w)
        for spec in template.edges():
            obs = self._edge_obs.get((spec.src, spec.dst))
            g.add_edge(
                spec.src, spec.dst, self._mean(obs) if obs else spec.c
            )
        return g
