"""Platform generators: the paper's figures plus synthetic families.

Every generator is deterministic given its arguments (random families take a
``seed``), so tests and benchmarks are reproducible.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from .._rational import INF, RationalLike, as_fraction
from .graph import Platform


# ----------------------------------------------------------------------
# Paper figures
# ----------------------------------------------------------------------
def paper_figure1(
    weights: Optional[Sequence[RationalLike]] = None,
    costs: Optional[dict] = None,
) -> Platform:
    """The example platform of Figure 1.

    Figure 1 shows six nodes ``P1..P6`` and the (undirected in the drawing,
    oriented in the model) links ``P1-P2, P1-P3, P2-P4, P2-P5, P3-P6,
    P4-P5, P5-P6``.  The figure labels weights symbolically (``w_i``,
    ``c_ij``); concrete values may be supplied, otherwise a representative
    heterogeneous assignment is used.  Each drawn link becomes two directed
    edges with the same cost, matching the paper's oriented-link model.
    """
    default_w: List[RationalLike] = [1, 2, 3, 2, 1, 4]
    w = list(weights) if weights is not None else default_w
    if len(w) != 6:
        raise ValueError("figure 1 has exactly six nodes")
    links = [("P1", "P2"), ("P1", "P3"), ("P2", "P4"), ("P2", "P5"),
             ("P3", "P6"), ("P4", "P5"), ("P5", "P6")]
    default_c = {
        ("P1", "P2"): Fraction(1),
        ("P1", "P3"): Fraction(2),
        ("P2", "P4"): Fraction(1),
        ("P2", "P5"): Fraction(3),
        ("P3", "P6"): Fraction(1),
        ("P4", "P5"): Fraction(2),
        ("P5", "P6"): Fraction(1),
    }
    c = dict(default_c)
    if costs:
        for key, val in costs.items():
            c[tuple(key)] = as_fraction(val)
    g = Platform("paper-figure-1")
    for i in range(6):
        g.add_node(f"P{i + 1}", w[i])
    for a, b in links:
        g.add_bidirectional_edge(a, b, c[(a, b)])
    return g


def paper_figure2_multicast() -> Platform:
    """The multicast counterexample platform of Figure 2.

    Seven nodes ``P0..P6``; the source is ``P0`` and the multicast targets
    are ``P5`` and ``P6`` (shaded in the figure).  Nine directed edges:
    eight of cost 1 plus ``P3 -> P4`` of cost 2, as printed on the figure.

    The edge set is recovered from the route analysis of section 4.3:
    odd-numbered (label ``a``) messages reach P5 via ``P0->P1->P5`` and
    even-numbered (label ``b``) messages via ``P0->P2->P3->P4->P5``;
    messages reach P6 via ``r1 = P0->P1->P3->P4->P6`` (label ``a``) and
    ``r2 = P0->P2->P6`` (label ``b``).  With these costs the max-LP admits
    throughput 1 (each printed edge carrying 1/2 message per target per
    time-unit, Figures 3a/3b) while the edge ``P3 -> P4`` would need to
    carry one ``a`` and one ``b`` message — distinct instances — every two
    time-units at cost 2 each, which exceeds its capacity (Figure 3d).
    """
    g = Platform("paper-figure-2-multicast")
    for i in range(7):
        g.add_node(f"P{i}", w=INF if i == 0 else 1)
    unit_edges = [
        ("P0", "P1"), ("P0", "P2"),
        ("P1", "P5"), ("P1", "P3"),
        ("P2", "P3"), ("P2", "P6"),
        ("P4", "P5"), ("P4", "P6"),
    ]
    for a, b in unit_edges:
        g.add_edge(a, b, 1)
    g.add_edge("P3", "P4", 2)
    return g


MULTICAST_SOURCE = "P0"
MULTICAST_TARGETS = ("P5", "P6")


# ----------------------------------------------------------------------
# Synthetic families
# ----------------------------------------------------------------------
def star(
    n_workers: int,
    master_w: RationalLike = 1,
    worker_w: Optional[Sequence[RationalLike]] = None,
    link_c: Optional[Sequence[RationalLike]] = None,
    bidirectional: bool = False,
    name: str = "star",
) -> Platform:
    """Master ``M`` plus ``n_workers`` workers ``W1..Wn`` (single-level tree).

    The canonical master-slave platform: closed-form steady-state throughput
    exists (see :func:`repro.core.master_slave.star_throughput`), which makes
    this family the primary oracle for LP tests.
    """
    if n_workers < 1:
        raise ValueError("need at least one worker")
    g = Platform(name)
    g.add_node("M", master_w)
    for k in range(1, n_workers + 1):
        w = worker_w[k - 1] if worker_w is not None else k
        c = link_c[k - 1] if link_c is not None else 1
        g.add_node(f"W{k}", w)
        g.add_edge("M", f"W{k}", c)
        if bidirectional:
            g.add_edge(f"W{k}", "M", c)
    return g


def chain(
    length: int,
    node_w: RationalLike = 1,
    link_c: RationalLike = 1,
    name: str = "chain",
) -> Platform:
    """Linear chain ``N0 -> N1 -> ... -> N{length-1}``."""
    if length < 2:
        raise ValueError("chain needs at least two nodes")
    g = Platform(name)
    for k in range(length):
        g.add_node(f"N{k}", node_w)
    for k in range(length - 1):
        g.add_edge(f"N{k}", f"N{k + 1}", link_c)
    return g


def binary_tree(
    depth: int,
    seed: Optional[int] = None,
    w_range: Tuple[int, int] = (1, 5),
    c_range: Tuple[int, int] = (1, 4),
    name: str = "binary-tree",
) -> Platform:
    """Complete binary tree of the given depth, root ``T0``.

    Heterogeneous weights drawn uniformly from the given integer ranges
    (deterministic under ``seed``).  Edges point away from the root, the
    natural orientation for master-slave distribution.
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    rng = random.Random(seed)
    g = Platform(name)
    total = 2 ** (depth + 1) - 1
    for k in range(total):
        g.add_node(f"T{k}", rng.randint(*w_range))
    for k in range(total):
        for child in (2 * k + 1, 2 * k + 2):
            if child < total:
                g.add_edge(f"T{k}", f"T{child}", rng.randint(*c_range))
    return g


def grid2d(
    rows: int,
    cols: int,
    seed: Optional[int] = None,
    w_range: Tuple[int, int] = (1, 5),
    c_range: Tuple[int, int] = (1, 4),
    name: str = "grid2d",
) -> Platform:
    """2-D mesh with bidirectional links; node ``G0_0`` is the corner.

    A platform *with cycles and multiple paths*, which the paper stresses the
    model supports ("no specific assumption is made on the interconnection
    graph").
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    rng = random.Random(seed)
    g = Platform(name)
    for r in range(rows):
        for c in range(cols):
            g.add_node(f"G{r}_{c}", rng.randint(*w_range))
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                g.add_bidirectional_edge(
                    f"G{r}_{c}", f"G{r}_{c + 1}", rng.randint(*c_range)
                )
            if r + 1 < rows:
                g.add_bidirectional_edge(
                    f"G{r}_{c}", f"G{r + 1}_{c}", rng.randint(*c_range)
                )
    return g


def random_connected(
    n: int,
    extra_edge_prob: float = 0.25,
    seed: Optional[int] = None,
    w_range: Tuple[int, int] = (1, 6),
    c_range: Tuple[int, int] = (1, 5),
    forwarder_prob: float = 0.0,
    bidirectional: bool = True,
    name: str = "random",
) -> Platform:
    """Random platform guaranteed connected from node ``R0``.

    Construction: a random spanning tree rooted at ``R0`` (guaranteeing
    reachability), then each remaining ordered pair gains an edge with
    probability ``extra_edge_prob``.  ``forwarder_prob`` turns non-root
    nodes into pure forwarders (``w = INF``), exercising the paper's
    ``w_i = +inf`` case.
    """
    if n < 2:
        raise ValueError("need at least two nodes")
    rng = random.Random(seed)
    g = Platform(name)
    for k in range(n):
        if k > 0 and rng.random() < forwarder_prob:
            g.add_node(f"R{k}", INF)
        else:
            g.add_node(f"R{k}", rng.randint(*w_range))
    for k in range(1, n):
        parent = rng.randrange(k)
        cost = rng.randint(*c_range)
        g.add_edge(f"R{parent}", f"R{k}", cost)
        if bidirectional:
            g.add_edge(f"R{k}", f"R{parent}", cost)
    for a in range(n):
        for b in range(n):
            if a == b or g.has_edge(f"R{a}", f"R{b}"):
                continue
            if rng.random() < extra_edge_prob:
                g.add_edge(f"R{a}", f"R{b}", rng.randint(*c_range))
    return g


def clustered(
    n_clusters: int,
    cluster_size: int,
    seed: Optional[int] = None,
    intra_c: Tuple[int, int] = (1, 2),
    inter_c: Tuple[int, int] = (4, 8),
    w_range: Tuple[int, int] = (1, 4),
    name: str = "clustered",
) -> Platform:
    """Clusters of fast nodes joined by slow backbone links (grid-like).

    Models the paper's motivating scenario: clusters federated into a grid,
    with cheap intra-cluster links and expensive inter-cluster links.  Each
    cluster is a bidirectional star around a gateway ``C{k}_0``; gateways
    form a bidirectional ring.
    """
    if n_clusters < 1 or cluster_size < 1:
        raise ValueError("cluster counts must be positive")
    rng = random.Random(seed)
    g = Platform(name)
    for k in range(n_clusters):
        for m in range(cluster_size):
            g.add_node(f"C{k}_{m}", rng.randint(*w_range))
        for m in range(1, cluster_size):
            g.add_bidirectional_edge(
                f"C{k}_0", f"C{k}_{m}", rng.randint(*intra_c)
            )
    if n_clusters > 1:
        for k in range(n_clusters):
            nxt = (k + 1) % n_clusters
            if n_clusters == 2 and k == 1:
                break  # avoid duplicating the single ring edge
            g.add_bidirectional_edge(
                f"C{k}_0", f"C{nxt}_0", rng.randint(*inter_c)
            )
    return g
