"""Platform substrate: the weighted digraph model of section 2 + generators,
topology discovery (section 5.3) and monitoring (section 5.5) simulations."""

from .graph import EdgeSpec, NodeSpec, Platform, PlatformError
from . import generators, monitoring, serialization, topology

__all__ = [
    "EdgeSpec",
    "NodeSpec",
    "Platform",
    "PlatformError",
    "generators",
    "monitoring",
    "serialization",
    "topology",
]
