"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``solve``      solve SSMS on a platform (JSON file or built-in generator)
               and print the activities, schedule and simulated execution;
``scatter``    solve the pipelined scatter LP and print the schedule;
``broadcast``  broadcast bound + achieving tree packing;
``multicast``  the sum/packing/max bracket for a target set;
``figures``    regenerate the paper's Figures 1-3 artefacts;
``problems``   list the solver registry (specs, capabilities; --check
               solves every registered problem end-to-end);
``export``     write a generator-built platform as JSON for editing;
``lint``       run the AST-based invariant checkers (exactness, locks,
               wire/registry drift, tracing discipline) over the tree;
``serve``      run the scheduling service (HTTP JSON API, or --stdio);
``shard-serve`` run one standalone TCP solve shard for a remote broker;
``submit``     send one solve request to a server (or solve locally).

Examples
--------
::

    python -m repro solve --generator star --args 4 --master M
    python -m repro figures
    python -m repro export --generator grid2d --args 3 3 -o grid.json
    python -m repro solve --platform grid.json --master G0_0
    python -m repro serve --port 8585
    python -m repro submit --url http://127.0.0.1:8585 \\
        --problem master-slave --generator star --args 4 --master M
"""

from __future__ import annotations

import argparse
import sys
from fractions import Fraction
from typing import List, Optional

from .analysis.reporting import render_edge_flows, render_table
from .platform import generators
from .platform.graph import Platform
from .platform.serialization import platform_from_json, platform_to_json


def _parse_generator_arg(text: str):
    """``int`` -> ``Fraction`` -> ``str`` fallback.

    ``str.isdigit`` silently mis-parsed negative integers and non-integer
    rationals ("-1", "1.5", "3/2" all stayed strings); exact rationals are
    first-class platform weights, so parse them properly.
    """
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return Fraction(text)
    except (ValueError, ZeroDivisionError):
        return text


def _load_platform(args) -> Platform:
    if args.platform:
        with open(args.platform, "r", encoding="utf-8") as handle:
            return platform_from_json(handle.read())
    if args.generator:
        factory = getattr(generators, args.generator, None)
        if factory is None or not callable(factory):
            raise SystemExit(f"unknown generator {args.generator!r}")
        gen_args = [_parse_generator_arg(a) for a in args.args]
        return factory(*gen_args, **({"seed": args.seed}
                                     if args.seed is not None else {}))
    raise SystemExit("provide --platform FILE or --generator NAME")


def cmd_solve(args) -> int:
    from .problems import MasterSlaveSpec, solve as solve_problem
    from .schedule.reconstruction import reconstruct_schedule
    from .simulator.periodic_runner import PeriodicRunner

    platform = _load_platform(args)
    print(platform.describe())
    sol = solve_problem(MasterSlaveSpec(platform=platform, master=args.master))
    print()
    print(sol.summary())
    sched = reconstruct_schedule(sol)
    print()
    print(sched.describe())
    res = PeriodicRunner(sched).run(args.periods)
    print()
    print(f"simulated {args.periods} periods: {res.total_completed} tasks, "
          f"deficit {res.deficit} (constant), rate "
          f"{float(res.achieved_rate):.4f} vs LP "
          f"{float(sol.throughput):.4f}")
    return 0


def cmd_scatter(args) -> int:
    from .problems import ScatterSpec, solve as solve_problem
    from .schedule.reconstruction import reconstruct_schedule

    platform = _load_platform(args)
    sol = solve_problem(ScatterSpec(platform=platform, source=args.source,
                                    targets=tuple(args.targets)))
    print(f"scatter throughput TP = {sol.throughput}")
    sched = reconstruct_schedule(sol)
    print(sched.describe())
    for k, routes in sched.routes.items():
        print(f"  commodity {k}:")
        for path, units in routes:
            print(f"    {' -> '.join(path)} x {units}")
    return 0


def cmd_broadcast(args) -> int:
    from .problems import BroadcastSpec, solve as solve_problem

    platform = _load_platform(args)
    sol = solve_problem(BroadcastSpec(platform=platform, source=args.source))
    status = "optimal" if sol.optimal else "lower bound (greedy packing)"
    print(f"broadcast LP bound = {sol.lp_bound}")
    print(f"tree packing       = {sol.achieved}  [{status}]")
    for tree, rate in sorted(sol.packing.items(), key=lambda tr: -tr[1]):
        edges = ", ".join(f"{u}->{v}" for u, v in sorted(tree))
        print(f"  rate {rate}: {edges}")
    return 0


def cmd_multicast(args) -> int:
    from .problems import MulticastSpec, solve as solve_problem

    platform = _load_platform(args)
    analysis = solve_problem(MulticastSpec(platform=platform,
                                           source=args.source,
                                           targets=tuple(args.targets)))
    rows = [
        ["sum-rule LP (pessimistic)", analysis.sum_lp],
        ["tree packing"
         + (" (exact)" if analysis.exhaustive else " (greedy)"),
         analysis.tree_optimal],
        ["max-rule LP (optimistic)", analysis.max_lp],
    ]
    print(render_table(["bound", "throughput"], rows))
    if analysis.exhaustive and not analysis.max_lp_achievable:
        print("\nthe optimistic bound is NOT achievable on this platform "
              "(cf. section 4.3).")
    return 0


def cmd_figures(_args) -> int:
    from .core.master_slave import solve_master_slave
    from .core.multicast import analyze_figure2
    from .schedule.reconstruction import reconstruct_schedule

    fig1 = generators.paper_figure1()
    sol = solve_master_slave(fig1, "P1")
    print("== Figure 1 ==")
    print(fig1.describe())
    print(f"ntask(G) = {sol.throughput}")
    print(reconstruct_schedule(sol).describe())
    print()
    rep = analyze_figure2()
    print("== Figure 2 ==")
    print(rep.platform.describe())
    print()
    print(render_edge_flows(rep.flows_p5, "== Figure 3(a): towards P5 =="))
    print(render_edge_flows(rep.flows_p6, "== Figure 3(b): towards P6 =="))
    print(render_edge_flows(rep.total_flows, "== Figure 3(c): totals =="))
    print("== Figure 3(d): conflicts ==")
    for (u, v), occ in rep.conflicts.items():
        print(f"  {u} -> {v}: occupation {occ} > 1")
    print(f"\nbracket: sum-LP {rep.sum_lp} <= achievable {rep.achievable} "
          f"< max-LP {rep.max_lp}")
    return 0


def cmd_problems(args) -> int:
    """List registered problems; ``--check`` proves each servable."""
    import json as _json

    from .problems import describe

    if args.check:
        return _run_registry_check()
    meta = describe()
    if args.json:
        print(_json.dumps(meta, indent=2))
        return 0
    rows = []
    for name, info in meta.items():
        fields = ", ".join(
            f["name"] + ("" if f["required"] else f"={f['default']!r}")
            for f in info["fields"]
        )
        caps = info["capabilities"]
        flags = [f"lp={caps['lp_structure']}"]
        if caps["warm_resolve"]:
            flags.append("warm-resolve")
        if caps["reconstructs_schedule"]:
            flags.append("reconstructs-schedule")
        rows.append([name, info["spec"], fields, ", ".join(flags)])
    print(render_table(["problem", "spec", "fields", "capabilities"], rows))
    print(f"\n{len(meta)} problems registered "
          f"(python -m repro problems --check solves each end-to-end)")
    return 0


def _run_registry_check() -> int:
    """Solve every registered problem end-to-end on a 2-worker star.

    The CI consistency step: each registered entry's example spec is
    routed through the broker's generic ``execute_request`` dispatch, so
    registration drift (a spec/solver mismatch, a problem no longer
    servable) fails loudly.  Every problem declaring ``warm_resolve``
    additionally gets one warm re-solve exercised: the example platform
    is re-weighted, the hot model is patched and basis-restarted, and the
    result must be ``Fraction``-identical to a cold solve of the mutation.
    """
    import dataclasses

    from .platform import generators
    from .problems import registered_problems, resolve
    from .service.broker import SolveRequest, execute_request, solution_throughput
    from .service.incremental import IncrementalSolver

    platform = generators.star(2, bidirectional=True)
    failures = []
    warm_checked = 0
    for problem in registered_problems():
        entry = resolve(problem)
        if entry.example is None:
            failures.append((problem, "no example factory registered"))
            continue
        try:
            spec = entry.example(platform.copy(), "M", ("W1", "W2"))
            solution = execute_request(SolveRequest.from_spec(spec))
            throughput = solution_throughput(solution)
            if throughput < 0:
                raise ValueError(f"negative throughput {throughput}")
            note = ""
            if entry.capabilities.warm_resolve:
                inc = IncrementalSolver()
                inc.solve_spec(spec)  # builds the hot model
                mutated = dataclasses.replace(
                    spec,
                    platform=spec.platform.scale(compute=Fraction(3, 2),
                                                 comm=Fraction(2, 3)),
                )
                warm_sol, warm = inc.solve_spec_ex(mutated)
                if not warm:
                    raise ValueError("warm re-solve did not take the warm path")
                warm_tp = solution_throughput(warm_sol)
                cold_tp = solution_throughput(
                    execute_request(SolveRequest.from_spec(mutated))
                )
                if warm_tp != cold_tp:
                    raise ValueError(
                        f"warm re-solve {warm_tp} != cold solve {cold_tp}"
                    )
                warm_checked += 1
                note = f"  warm-resolve = {warm_tp}"
            print(f"  {problem:16s} OK  throughput = {throughput}{note}")
        except Exception as exc:  # noqa: BLE001 — report all drift at once
            failures.append((problem, f"{type(exc).__name__}: {exc}"))
    if failures:
        for problem, reason in failures:
            print(f"  {problem:16s} FAIL  {reason}")
        print(f"\nregistry check FAILED for {len(failures)} problem(s)")
        return 1
    print(f"\nregistry check OK: {len(registered_problems())} problems "
          f"servable end-to-end, {warm_checked} warm re-solves exact")
    return 0


def cmd_export(args) -> int:
    platform = _load_platform(args)
    text = platform_to_json(platform)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_lint(args) -> int:
    from .lint import cli as lint_cli

    return lint_cli.run(args)


def _build_broker(args):
    from .service.broker import Broker
    from .service.cache import SolutionCache

    ttl = args.ttl if args.ttl and args.ttl > 0 else None
    shards = getattr(args, "shards", 1)
    addresses = list(getattr(args, "shard", None) or [])
    if shards > 1 or addresses:
        if getattr(args, "executor", None):
            # fail loudly: the flag would be silently dropped, and
            # "--shards 4 --executor process" reads like process shards
            raise SystemExit(
                "--executor applies to the unsharded broker only; with "
                "--shards use --shard-mode thread|process instead"
            )
        mode = args.shard_mode or ("process" if addresses else "thread")
        if addresses and mode == "thread":
            raise SystemExit(
                "--shard host:port requires process shards; drop "
                "--shard-mode thread (local shards run as pipe workers "
                "beside the remote ones)"
            )
        from .service.sharding import ShardedBroker

        timeout = getattr(args, "shard_timeout", 0) or 0
        if timeout > 0 and mode == "thread":
            # fail loudly: thread shards solve in-process, nothing to
            # time out — the flag would be silently dropped
            raise SystemExit(
                "--shard-timeout applies to process/TCP shards only; "
                "use --shard-mode process (or --shard host:port)"
            )
        if getattr(args, "async_transport", False) and not addresses:
            raise SystemExit(
                "--async-transport multiplexes remote shard connections; "
                "it needs at least one --shard host:port"
            )
        replication = getattr(args, "replication_factor", 1)
        return ShardedBroker(
            shards=shards,
            shard_mode=mode,
            workers=args.workers,
            cache_size=args.cache_size,
            ttl=ttl,
            shard_addresses=addresses,
            request_timeout=timeout if timeout > 0 else None,
            async_transport=bool(getattr(args, "async_transport", False)),
            replication_factor=max(1, replication),
            near_cache_size=getattr(args, "near_cache_size", 64),
            hot_threshold=getattr(args, "hot_threshold", 8),
        )
    if getattr(args, "async_transport", False):
        raise SystemExit(
            "--async-transport applies to remote shards only; add "
            "--shard host:port"
        )
    if getattr(args, "replication_factor", 1) > 1:
        raise SystemExit(
            "--replication-factor replicates hot keys across ring "
            "shards; it needs --shards > 1 (or --shard host:port)"
        )
    if getattr(args, "near_cache_size", 64) != 64:
        raise SystemExit(
            "--near-cache-size configures the sharded broker's "
            "near-cache; the unsharded broker's own cache already "
            "fronts everything (use --cache-size)"
        )
    if shards < 1:
        raise SystemExit("--shards 0 needs at least one --shard host:port")
    if getattr(args, "shard_timeout", 0):
        raise SystemExit(
            "--shard-timeout applies to the sharded broker's transport "
            "shards only; the unsharded broker solves in-process"
        )
    cache = SolutionCache(max_size=args.cache_size, ttl=ttl)
    return Broker(cache=cache, workers=args.workers,
                  executor=getattr(args, "executor", None) or "thread")


def cmd_serve(args) -> int:
    from .service.api import ServiceServer, serve_stdio
    from .service.tracing import TraceStore

    broker = _build_broker(args)
    store = None
    if not args.no_tracing:
        store = TraceStore(capacity=args.trace_capacity,
                          slow_threshold=args.slow_trace)
    if args.stdio:
        try:
            return serve_stdio(broker, sys.stdin, sys.stdout,
                               trace_store=store)
        finally:
            broker.close()
    shards = getattr(args, "shards", 1)
    addresses = list(getattr(args, "shard", None) or [])
    if shards > 1 or addresses:
        mode = getattr(broker, "shard_mode", "thread")
        layout = f"{shards} local {mode} shards x {args.cache_size} entries"
        if addresses:
            layout += f" + {len(addresses)} remote " + " ".join(addresses)
            if getattr(args, "async_transport", False):
                layout += " (multiplexed)"
        if mode == "thread":  # --workers is per-shard, thread only
            layout += f", {args.workers} workers/shard"
        if getattr(args, "replication_factor", 1) > 1:
            layout += f", hot-key R={args.replication_factor}"
        near = getattr(args, "near_cache_size", 64)
        if near > 0:
            layout += f", near-cache {near}"
    else:
        layout = f"cache {args.cache_size} entries, {args.workers} workers"
    if args.async_http:
        import asyncio

        from .service.api import AsyncServiceServer

        aserver = AsyncServiceServer(
            (args.host, args.port), broker=broker, trace_store=store,
            tracing=not args.no_tracing)

        async def _amain() -> None:
            await aserver.start()
            print(f"repro service listening on "
                  f"http://{args.host}:{aserver.port} ({layout}, "
                  f"async http)", flush=True)
            await aserver.serve_forever()

        try:
            asyncio.run(_amain())
        except KeyboardInterrupt:
            pass
        finally:
            broker.close()
        return 0
    server = ServiceServer((args.host, args.port), broker=broker,
                           verbose=args.verbose, trace_store=store,
                           tracing=not args.no_tracing)
    print(f"repro service listening on http://{args.host}:{server.port} "
          f"({layout})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        broker.close()
    return 0


def cmd_shard_serve(args) -> int:
    """Run one standalone TCP shard (a SolveEngine behind framed JSON).

    Point any ``python -m repro serve`` at it with ``--shard host:port``
    to place it on that broker's hash ring; several brokers may share
    one shard (the engine lock serialises their ops).

    With ``--async`` the shard runs the asyncio server instead: one
    event loop multiplexes id-tagged requests from many brokers over
    however many connections arrive, solves run on a bounded thread
    pool (``--solve-workers``), pings are answered on the loop even
    while the pool is saturated, and ``--op-deadline`` answers
    overdue ops with a typed ``ShardTimeoutError`` reply.
    """
    ttl = args.ttl if args.ttl and args.ttl > 0 else None
    if args.use_async:
        import asyncio

        from .service.transport import AsyncShardServer

        deadline = args.op_deadline if args.op_deadline > 0 else None
        aserver = AsyncShardServer(
            (args.host, args.port),
            cache_size=args.cache_size,
            ttl=ttl,
            incremental=not args.no_incremental,
            solve_workers=args.solve_workers,
            op_deadline=deadline,
        )

        async def _amain() -> None:
            await aserver.start()
            print(f"repro shard listening on {aserver.address} "
                  f"(async, {aserver.solve_workers} solve workers, "
                  f"op deadline "
                  f"{'none' if deadline is None else f'{deadline}s'}, "
                  f"cache {args.cache_size} entries, warm path "
                  f"{'off' if args.no_incremental else 'on'})", flush=True)
            await aserver.serve_forever()

        try:
            asyncio.run(_amain())
        except KeyboardInterrupt:
            pass
        return 0
    from .service.transport import ShardServer

    server = ShardServer(
        (args.host, args.port),
        cache_size=args.cache_size,
        ttl=ttl,
        incremental=not args.no_incremental,
    )
    print(f"repro shard listening on {server.address} "
          f"(cache {args.cache_size} entries, warm path "
          f"{'off' if args.no_incremental else 'on'})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
    return 0


def cmd_submit(args) -> int:
    import json as _json

    from .service.api import handle_request, request_to_dict
    from .service.broker import Broker, SolveRequest

    if args.request:
        with open(args.request, "r", encoding="utf-8") as handle:
            envelope = _json.load(handle)
        if "op" not in envelope:
            envelope = {"op": "solve", "request": envelope}
    else:
        if not args.problem:
            raise SystemExit("provide --request FILE or --problem NAME")
        platform = _load_platform(args)
        from .service.broker import BrokerError

        try:
            request = SolveRequest(
                problem=args.problem,
                platform=platform,
                source=args.source,
                master=args.master,  # SolveRequest rejects a conflicting pair
                targets=tuple(args.targets or ()),
                options={"backend": args.backend},
                include_schedule=args.include_schedule,
            )
        except BrokerError as exc:
            raise SystemExit(str(exc))
        envelope = {"op": "solve", "request": request_to_dict(request)}

    if args.trace:
        envelope["trace"] = True

    if args.url:
        import urllib.error
        import urllib.request

        req = urllib.request.Request(
            args.url.rstrip("/") + "/api",
            data=_json.dumps(envelope).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(req, timeout=args.timeout) as resp:
                body = resp.read()
        except urllib.error.HTTPError as exc:  # 422 still carries JSON
            body = exc.read()
        except urllib.error.URLError as exc:
            raise SystemExit(f"cannot reach {args.url}: {exc.reason}")
        try:
            response = _json.loads(body)
        except _json.JSONDecodeError:
            raise SystemExit(
                f"non-JSON response from {args.url} "
                f"(is this a repro server?): {body[:200]!r}"
            )
    else:
        with Broker(executor="sync") as broker:
            response = handle_request(broker, envelope)

    trace = response.pop("trace", None) if args.trace else None
    print(_json.dumps(response, indent=2))
    if trace is not None:
        from .service.tracing import render_waterfall

        print()
        print(render_waterfall(trace))
    return 0 if response.get("ok") else 1


def _add_platform_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--platform", help="platform JSON file")
    parser.add_argument("--generator",
                        help="generator name from repro.platform.generators")
    parser.add_argument("--args", nargs="*", default=[],
                        help="positional generator arguments")
    parser.add_argument("--seed", type=int, default=None)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="steady-state scheduling on heterogeneous clusters "
                    "(Beaumont/Legrand/Marchal/Robert, IPDPS 2004)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("solve", help="master-slave steady state")
    _add_platform_options(p)
    p.add_argument("--master", required=True)
    p.add_argument("--periods", type=int, default=12)
    p.set_defaults(func=cmd_solve)

    p = sub.add_parser("scatter", help="pipelined scatter")
    _add_platform_options(p)
    p.add_argument("--source", required=True)
    p.add_argument("--targets", nargs="+", required=True)
    p.set_defaults(func=cmd_scatter)

    p = sub.add_parser("broadcast", help="pipelined broadcast")
    _add_platform_options(p)
    p.add_argument("--source", required=True)
    p.set_defaults(func=cmd_broadcast)

    p = sub.add_parser("multicast", help="multicast bound bracket")
    _add_platform_options(p)
    p.add_argument("--source", required=True)
    p.add_argument("--targets", nargs="+", required=True)
    p.set_defaults(func=cmd_multicast)

    p = sub.add_parser("figures", help="regenerate the paper's figures")
    p.set_defaults(func=cmd_figures)

    p = sub.add_parser("problems",
                       help="list registered problems and capabilities")
    p.add_argument("--json", action="store_true",
                   help="machine-readable registry metadata")
    p.add_argument("--check", action="store_true",
                   help="solve every registered problem end-to-end on a "
                        "2-worker star (the CI consistency check)")
    p.set_defaults(func=cmd_problems)

    p = sub.add_parser("export", help="write a platform as JSON")
    _add_platform_options(p)
    p.add_argument("-o", "--output")
    p.set_defaults(func=cmd_export)

    p = sub.add_parser("lint",
                       help="run the repro invariant checkers "
                            "(exactness, locks, drift, tracing)")
    from .lint import cli as _lint_cli
    _lint_cli.add_arguments(p)
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("serve", help="run the scheduling service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8585,
                   help="TCP port (0 picks a free one)")
    p.add_argument("--stdio", action="store_true",
                   help="JSON-lines over stdin/stdout instead of HTTP")
    p.add_argument("--cache-size", type=int, default=256)
    p.add_argument("--ttl", type=float, default=0,
                   help="cache TTL in seconds (0 = no expiry)")
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--executor", choices=["thread", "process", "sync"],
                   default=None,
                   help="worker-pool kind (default thread; unsharded "
                        "broker only — rejected alongside --shards)")
    p.add_argument("--shards", type=int, default=1,
                   help="independent local broker shards routed by "
                        "consistent hash of the request fingerprint "
                        "(1 = unsharded; --cache-size is per shard; 0 is "
                        "allowed when --shard supplies the whole ring)")
    p.add_argument("--shard-mode", choices=["thread", "process"],
                   default=None,
                   help="local shard placement: in-process brokers "
                        "(thread, the default) or long-lived worker "
                        "processes dispatched over the wire codec "
                        "(process; implied by --shard)")
    p.add_argument("--shard", action="append", metavar="HOST:PORT",
                   help="remote shard-serve address to place on the hash "
                        "ring (repeatable; unreachable shards are "
                        "ejected and rejoin automatically)")
    p.add_argument("--shard-timeout", type=float, default=0,
                   help="per-request shard transport timeout in seconds "
                        "(0 = wait indefinitely); on expiry the request "
                        "fails over to the next live shard (with "
                        "--async-transport the shard enforces it "
                        "server-side and answers promptly)")
    p.add_argument("--async-transport", action="store_true",
                   help="multiplex each remote --shard connection: many "
                        "in-flight id-tagged requests share one socket "
                        "(requires async or id-echoing shard-serve peers)")
    p.add_argument("--replication-factor", type=int, default=1,
                   help="replica count for HOT fingerprints: reads "
                        "rotate over the key's first R live ring "
                        "successors and solutions fan out to them with "
                        "generation-checked puts (1 = classic "
                        "single-owner routing; sharded broker only)")
    p.add_argument("--near-cache-size", type=int, default=64,
                   help="broker-side near-cache entries for the hottest "
                        "fingerprints, generation-revalidated so stale "
                        "serves are impossible (0 disables; sharded "
                        "broker only)")
    p.add_argument("--hot-threshold", type=int, default=8,
                   help="lookup count at which a fingerprint counts as "
                        "hot (replicated + near-cached)")
    p.add_argument("--async-http", action="store_true",
                   help="serve HTTP on one asyncio event loop (idle "
                        "keep-alive clients cost no threads; broker "
                        "dispatch runs on a bounded executor)")
    p.add_argument("--slow-trace", type=float, default=0.25,
                   help="traces at least this slow (seconds) are always "
                        "kept in the slow-trace ring")
    p.add_argument("--trace-capacity", type=int, default=256,
                   help="recent traces retained for GET /traces")
    p.add_argument("--no-tracing", action="store_true",
                   help="disable request tracing and the trace store")
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("shard-serve",
                       help="run one standalone TCP solve shard")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8590,
                   help="TCP port (0 picks a free one)")
    p.add_argument("--cache-size", type=int, default=256)
    p.add_argument("--ttl", type=float, default=0,
                   help="cache TTL in seconds (0 = no expiry)")
    p.add_argument("--no-incremental", action="store_true",
                   help="disable the warm re-solve path for this shard")
    p.add_argument("--async", dest="use_async", action="store_true",
                   help="run the asyncio shard server: id-tagged frames "
                        "are multiplexed per connection, pings answered "
                        "on the loop, solves on a bounded thread pool")
    p.add_argument("--solve-workers", type=int, default=2,
                   help="async server only: threads in the bounded solve "
                        "executor (the engine lock still serialises "
                        "engine entry; the pool bounds queueing)")
    p.add_argument("--op-deadline", type=float, default=0,
                   help="async server only: default per-op server-side "
                        "deadline in seconds (0 = none); overdue ops are "
                        "answered with a typed ShardTimeoutError reply "
                        "while the connection keeps serving other ids")
    p.set_defaults(func=cmd_shard_serve)

    p = sub.add_parser("submit", help="submit one solve request")
    _add_platform_options(p)
    p.add_argument("--url", help="server base URL (omit to solve locally)")
    p.add_argument("--request", help="JSON request/envelope file")
    p.add_argument("--problem",
                   help="problem kind (master-slave, scatter, broadcast, ...)")
    p.add_argument("--source")
    p.add_argument("--master")
    p.add_argument("--targets", nargs="*", default=[])
    p.add_argument("--backend", default="exact")
    p.add_argument("--include-schedule", action="store_true")
    p.add_argument("--timeout", type=float, default=60.0)
    p.add_argument("--trace", action="store_true",
                   help="capture a span tree for this request and print "
                        "it as a waterfall after the JSON response")
    p.set_defaults(func=cmd_submit)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
