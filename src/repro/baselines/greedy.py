"""Event-driven demand-driven master-slave executors (the "why" baselines).

The steady-state LP needs global knowledge; practical systems often run a
*demand-driven* protocol instead: parents push task files to children that
ask for more, children compute what they hold.  This module implements that
protocol faithfully on tree-shaped platforms (stars, trees, or the
min-cost spanning tree of a general platform) with three child-selection
policies:

* ``"bandwidth"`` — serve children by increasing link cost ``c`` (the
  bandwidth-centric principle of [2, 11]; provably optimal on trees);
* ``"fastest"`` — serve children by increasing compute weight ``w`` (the
  intuitive but wrong policy: it wastes the port on expensive links);
* ``"round-robin"`` — blind rotation, no demand signal (floods slow
  children and starves fast ones).

Every run returns a one-port-validated :class:`~repro.simulator.trace.Trace`
and per-node completion counts, so benchmarks can compare achieved rates
against ``ntask(G)`` from the LP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from .._rational import RationalLike, as_fraction
from ..platform.graph import NodeId, Platform, PlatformError
from ..simulator.engine import Simulator
from ..simulator.trace import Trace

POLICIES = ("bandwidth", "fastest", "round-robin")


@dataclass
class GreedyResult:
    """Outcome of a demand-driven run."""

    policy: str
    horizon: Fraction
    completed: Dict[NodeId, int]
    trace: Trace

    @property
    def total_completed(self) -> int:
        return sum(self.completed.values())

    @property
    def rate(self) -> Fraction:
        if self.horizon == 0:
            return Fraction(0)
        return Fraction(self.total_completed) / self.horizon


def spanning_tree_children(
    platform: Platform, master: NodeId
) -> Dict[NodeId, List[NodeId]]:
    """Children map of the min-``c`` shortest-path tree rooted at master.

    On an already-tree-shaped platform this recovers the tree itself.
    """
    import heapq

    platform.node(master)
    dist: Dict[NodeId, Fraction] = {master: Fraction(0)}
    parent: Dict[NodeId, NodeId] = {}
    heap: List[Tuple[float, int, NodeId]] = [(0.0, 0, master)]
    counter = 1
    done = set()
    while heap:
        _, _, u = heapq.heappop(heap)
        if u in done:
            continue
        done.add(u)
        for v in platform.successors(u):
            nd = dist[u] + platform.c(u, v)
            if v not in dist or nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (float(nd), counter, v))
                counter += 1
    children: Dict[NodeId, List[NodeId]] = {n: [] for n in done}
    for v, u in parent.items():
        children[u].append(v)
    return children


class _Node:
    __slots__ = (
        "name", "w", "buffer", "cpu_busy", "port_busy", "inflight",
        "children", "rr_index", "completed",
    )

    def __init__(self, name: NodeId, w) -> None:
        self.name = name
        self.w = w
        self.buffer = 0
        self.cpu_busy = False
        self.port_busy = False
        self.inflight: Dict[NodeId, int] = {}
        self.children: List[NodeId] = []
        self.rr_index = 0
        self.completed = 0


def run_demand_driven(
    platform: Platform,
    master: NodeId,
    horizon: RationalLike,
    policy: str = "bandwidth",
    buffer_target: int = 2,
    children: Optional[Dict[NodeId, List[NodeId]]] = None,
    failures: Optional[Dict[NodeId, RationalLike]] = None,
) -> GreedyResult:
    """Simulate the demand-driven protocol until ``horizon``.

    ``buffer_target`` is how many task files a child keeps requested
    (buffer + in-flight); ``round-robin`` ignores it by design.

    ``failures`` injects faults: ``{node: time}`` kills the node's CPU at
    ``time`` (it stops computing; already-running work finishes, and the
    node keeps forwarding — the "machine got loaded" scenario of §5.5).
    One strength of demand-driven protocols is that surviving nodes keep
    pulling work, so the run degrades instead of deadlocking; tests assert
    exactly that.
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; pick from {POLICIES}")
    horizon_f = as_fraction(horizon)
    failure_times: Dict[NodeId, Fraction] = {
        n: as_fraction(t) for n, t in (failures or {}).items()
    }
    tree = children if children is not None else spanning_tree_children(
        platform, master
    )
    sim = Simulator()
    trace = Trace()
    nodes: Dict[NodeId, _Node] = {}
    for name in tree:
        spec = platform.node(name)
        node = _Node(name, spec.w)
        node.children = list(tree[name])
        node.inflight = {c: 0 for c in node.children}
        nodes[name] = node
    if policy == "bandwidth":
        for node in nodes.values():
            node.children.sort(key=lambda ch: (platform.c(node.name, ch), ch))
    elif policy == "fastest":
        for node in nodes.values():
            node.children.sort(
                key=lambda ch: (
                    float("inf")
                    if not platform.node(ch).can_compute
                    else float(platform.node(ch).w),
                    ch,
                )
            )

    parent_of: Dict[NodeId, NodeId] = {}
    for u, chs in tree.items():
        for ch in chs:
            parent_of[ch] = u

    def has_supply(node: _Node) -> bool:
        return node.name == master or node.buffer > 0

    def take_task(node: _Node) -> None:
        if node.name != master:
            node.buffer -= 1
            # the buffer dropped below the demand target: wake the parent,
            # whose port may have gone idle while every child was full.
            parent = parent_of.get(node.name)
            if parent is not None:
                try_send(parent)

    def child_wants(node: _Node, ch: NodeId) -> bool:
        if policy == "round-robin":
            return True
        pending = nodes[ch].buffer + node.inflight[ch]
        return pending < buffer_target

    def pick_child(node: _Node) -> Optional[NodeId]:
        if not node.children:
            return None
        if policy == "round-robin":
            ch = node.children[node.rr_index % len(node.children)]
            node.rr_index += 1
            return ch
        for ch in node.children:
            if child_wants(node, ch):
                return ch
        return None

    def cpu_alive(name: NodeId) -> bool:
        t = failure_times.get(name)
        return t is None or sim.now < t

    def try_compute(name: NodeId) -> None:
        node = nodes[name]
        spec = platform.node(name)
        if node.cpu_busy or not spec.can_compute:
            return
        if not cpu_alive(name):
            return
        if not has_supply(node):
            return
        take_task(node)
        node.cpu_busy = True
        start = sim.now
        end = start + spec.w

        def finish() -> None:
            node.cpu_busy = False
            node.completed += 1
            trace.record(name, "compute", start, end, units=Fraction(1))
            try_compute(name)
            try_send(name)

        sim.schedule_at(end, finish)

    def try_send(name: NodeId) -> None:
        node = nodes[name]
        if node.port_busy:
            return
        if not has_supply(node):
            return
        ch = pick_child(node)
        if ch is None:
            return
        take_task(node)
        node.port_busy = True
        node.inflight[ch] += 1
        start = sim.now
        end = start + platform.c(name, ch)

        def arrive() -> None:
            node.port_busy = False
            node.inflight[ch] -= 1
            nodes[ch].buffer += 1
            trace.record(name, "send", start, end, peer=ch, units=Fraction(1))
            trace.record(ch, "recv", start, end, peer=name, units=Fraction(1))
            try_compute(ch)
            try_send(ch)
            try_send(name)

        sim.schedule_at(end, arrive)

    try_compute(master)
    try_send(master)
    sim.run(until=horizon_f)

    completed = {name: nodes[name].completed for name in nodes}
    return GreedyResult(
        policy=policy,
        horizon=horizon_f,
        completed=completed,
        trace=trace,
    )
