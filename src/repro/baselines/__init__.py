"""Baseline schedulers the steady-state approach is compared against."""

from .greedy import (
    POLICIES,
    GreedyResult,
    run_demand_driven,
    spanning_tree_children,
)
from .list_scheduling import (
    BatchResult,
    eft_star_makespan,
    makespan_comparison,
    steady_state_batch_makespan,
)

__all__ = [
    "POLICIES",
    "GreedyResult",
    "run_demand_driven",
    "spanning_tree_children",
    "BatchResult",
    "eft_star_makespan",
    "makespan_comparison",
    "steady_state_batch_makespan",
]
