"""Finite-batch makespan scheduling — the traditional objective (§1).

The paper's opening argument: makespan minimisation is NP-hard and brittle,
while for large batches the steady-state schedule is asymptotically just as
good.  To make that comparison concrete we implement the strongest simple
makespan heuristic for one-port stars/trees — **earliest-finish-time (EFT)
list scheduling** with explicit communication serialisation — plus an
execution of the steady-state schedule on the same finite batch.

Benchmark C5 plots both makespans against the bound ``n / ntask(G)``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.master_slave import solve_master_slave
from ..platform.graph import NodeId, Platform
from ..schedule.reconstruction import reconstruct_schedule
from ..simulator.periodic_runner import PeriodicRunner


@dataclass
class BatchResult:
    strategy: str
    n_tasks: int
    makespan: Fraction
    per_node: Dict[NodeId, int]


def eft_star_makespan(
    platform: Platform, master: NodeId, n_tasks: int
) -> BatchResult:
    """EFT list scheduling of ``n_tasks`` independent tasks on a star.

    The master assigns tasks one at a time to the resource finishing them
    earliest, accounting for the one-port serialisation of its sends: a
    task for worker ``k`` occupies the port for ``c_k``, then the worker
    for ``w_k``.  The master may also compute tasks itself.  Exact event
    arithmetic; greedy, not optimal — that is the point.
    """
    if n_tasks < 0:
        raise ValueError("n_tasks must be non-negative")
    workers = [n for n in platform.successors(master)]
    port_free = Fraction(0)
    cpu_free: Dict[NodeId, Fraction] = {master: Fraction(0)}
    for wkr in workers:
        cpu_free[wkr] = Fraction(0)
    per_node: Dict[NodeId, int] = {n: 0 for n in cpu_free}
    makespan = Fraction(0)
    master_spec = platform.node(master)
    for _ in range(n_tasks):
        # candidate completion times
        best_node: Optional[NodeId] = None
        best_finish: Optional[Fraction] = None
        best_state: Optional[Tuple[Fraction, Fraction]] = None
        if master_spec.can_compute:
            finish = cpu_free[master] + master_spec.w
            best_node, best_finish = master, finish
            best_state = (port_free, finish)
        for wkr in workers:
            spec = platform.node(wkr)
            if not spec.can_compute:
                continue
            c = platform.c(master, wkr)
            send_end = port_free + c
            finish = max(send_end, cpu_free[wkr]) + spec.w
            if best_finish is None or finish < best_finish:
                best_node, best_finish = wkr, finish
                best_state = (send_end, finish)
        assert best_node is not None and best_state is not None
        new_port, new_cpu = best_state
        if best_node != master:
            port_free = new_port
        cpu_free[best_node] = new_cpu
        per_node[best_node] += 1
        makespan = max(makespan, best_finish)
    return BatchResult("eft", n_tasks, makespan, per_node)


def steady_state_batch_makespan(
    platform: Platform, master: NodeId, n_tasks: int
) -> BatchResult:
    """Time for the reconstructed periodic schedule to finish ``n_tasks``.

    Runs the periodic executor until the cumulative completions reach the
    batch, then adds a drain bound for the final partial period.  This is
    the "emulate steady state on a finite batch" strategy of section 4.2
    (initialisation included; clean-up bounded by one period).
    """
    sol = solve_master_slave(platform, master)
    sched = reconstruct_schedule(sol)
    runner = PeriodicRunner(sched)
    per_period = sched.throughput * sched.period
    if per_period <= 0:
        raise ValueError("platform processes nothing")
    # generous horizon: steady state + priming slack
    est = int(Fraction(n_tasks) / per_period) + platform.num_nodes + 3
    result = runner.run(est)
    done = Fraction(0)
    period_idx = None
    for p, cnt in enumerate(result.completed_per_period):
        done += cnt
        if done >= n_tasks:
            period_idx = p
            break
    if period_idx is None:  # pragma: no cover — horizon is generous
        raise RuntimeError("horizon too short")
    makespan = sched.period * (period_idx + 1)
    per_node = {
        n: int(cnt * (period_idx + 1))
        for n, cnt in sched.compute.items()
    }
    return BatchResult("steady-state", n_tasks, makespan, per_node)


def makespan_comparison(
    platform: Platform, master: NodeId, batch_sizes: Sequence[int]
) -> List[Tuple[int, Fraction, Fraction, Fraction]]:
    """``(n, eft, steady, lower bound)`` rows for benchmark C5."""
    sol = solve_master_slave(platform, master)
    rows = []
    for n in batch_sizes:
        eft = eft_star_makespan(platform, master, n)
        ss = steady_state_batch_makespan(platform, master, n)
        rows.append(
            (n, eft.makespan, ss.makespan, Fraction(n) / sol.throughput)
        )
    return rows
