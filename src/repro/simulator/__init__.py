"""Event-driven simulation of the one-port full-overlap platform model
(section 2) with trace validation for the section 5.1 model variants."""

from .engine import SimulationError, Simulator
from .periodic_runner import (
    PeriodicRunner,
    PeriodicRunResult,
    steady_state_reached_after,
)
from .collective_runner import (
    CollectiveRunner,
    CollectiveRunResult,
    max_route_length,
)
from .trace import Interval, ModelViolation, Trace

__all__ = [
    "SimulationError",
    "Simulator",
    "PeriodicRunner",
    "PeriodicRunResult",
    "steady_state_reached_after",
    "Interval",
    "ModelViolation",
    "Trace",
    "CollectiveRunner",
    "CollectiveRunResult",
    "max_route_length",
]
