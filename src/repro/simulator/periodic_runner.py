"""Execute a periodic schedule and measure its actual throughput.

This is the library's replacement for the authors' testbed: a deterministic
fluid execution of the reconstructed schedule under the one-port /
full-overlap model, with explicit *data-availability* accounting.

Buffer discipline (the standard steady-state argument, section 4.2): during
period ``p`` a node may only consume — forward or compute — task units it
had received **before** period ``p`` started.  Early periods therefore run
partially (the initialisation phase, bounded by the platform depth); once
buffers prime, every period processes exactly the LP-optimal amount.  The
runner records per-period completions so tests and benchmarks can verify
the paper's claim: the deficit with respect to ``K * T * ntask(G)`` is a
constant independent of the horizon ``K``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..platform.graph import Edge, NodeId
from ..schedule.periodic import PeriodicSchedule
from .trace import Trace


@dataclass
class PeriodicRunResult:
    """Outcome of running a periodic schedule for ``K`` periods."""

    schedule: PeriodicSchedule
    periods: int
    completed_per_period: List[Fraction]
    total_completed: Fraction
    #: upper bound K * T * throughput for the same horizon
    steady_state_bound: Fraction
    trace: Optional[Trace] = None

    @property
    def deficit(self) -> Fraction:
        """How far the run fell short of the steady-state bound."""
        return self.steady_state_bound - self.total_completed

    @property
    def achieved_rate(self) -> Fraction:
        """Average tasks per time-unit over the whole horizon."""
        horizon = self.schedule.period * self.periods
        if horizon == 0:
            return Fraction(0)
        return self.total_completed / horizon

    def rate_in_period(self, p: int) -> Fraction:
        return self.completed_per_period[p] / self.schedule.period


class PeriodicRunner:
    """Fluid executor for master-slave periodic schedules."""

    def __init__(self, schedule: PeriodicSchedule, record_trace: bool = False):
        if schedule.problem != "master-slave":
            raise ValueError(
                "PeriodicRunner executes master-slave schedules; use "
                "CollectiveRunner for scatter/broadcast"
            )
        if schedule.source is None:
            raise ValueError("schedule lacks a source node")
        self.schedule = schedule
        self.platform = schedule.platform
        self.source = schedule.source
        self.record_trace = record_trace
        # per-period fluid plans
        self.out_plan: Dict[Edge, Fraction] = {}
        for (i, j), count in schedule.messages.items():
            self.out_plan[(i, j)] = Fraction(count)
        self.compute_plan: Dict[NodeId, Fraction] = {
            n: Fraction(c) for n, c in schedule.compute.items()
        }

    def run(self, periods: int) -> PeriodicRunResult:
        if periods < 0:
            raise ValueError("periods must be non-negative")
        T = self.schedule.period
        ready: Dict[NodeId, Fraction] = {
            n: Fraction(0) for n in self.platform.nodes()
        }
        trace = Trace() if self.record_trace else None
        completed_per_period: List[Fraction] = []
        total = Fraction(0)

        for p in range(periods):
            t0 = T * p
            # consumption fraction per node: the share of this period's plan
            # that available data can cover.
            factor: Dict[NodeId, Fraction] = {}
            for node in self.platform.nodes():
                plan = self.compute_plan.get(node, Fraction(0)) + sum(
                    (self.out_plan.get((node, j), Fraction(0))
                     for j in self.platform.successors(node)),
                    start=Fraction(0),
                )
                if node == self.source:
                    factor[node] = Fraction(1)  # infinite task supply
                elif plan == 0:
                    factor[node] = Fraction(1)
                else:
                    factor[node] = min(Fraction(1), ready[node] / plan)

            received: Dict[NodeId, Fraction] = {
                n: Fraction(0) for n in self.platform.nodes()
            }
            for (i, j), units in self.out_plan.items():
                sent = units * factor[i]
                received[j] += sent
            # trace: record the slice intervals with the scaled units
            if trace is not None:
                for sl in self.schedule.slices:
                    for i, j in sl.transfers.items():
                        edge_units = (
                            sl.duration / self.platform.c(i, j) * factor[i]
                        )
                        trace.record(
                            i, "send", t0 + sl.start, t0 + sl.end,
                            peer=j, units=edge_units, label="task",
                        )
                        trace.record(
                            j, "recv", t0 + sl.start, t0 + sl.end,
                            peer=i, units=edge_units, label="task",
                        )

            done_this_period = Fraction(0)
            for node, plan in self.compute_plan.items():
                if plan == 0:
                    continue
                amount = plan * factor[node]
                done_this_period += amount
                if trace is not None and amount > 0:
                    w = self.platform.node(node).w
                    trace.record(
                        node, "compute", t0, t0 + amount * w,
                        units=amount, label="task",
                    )

            # book-keeping: consume from ready, add this period's receipts
            for node in self.platform.nodes():
                if node == self.source:
                    continue
                spent = factor[node] * (
                    self.compute_plan.get(node, Fraction(0))
                    + sum(
                        (self.out_plan.get((node, j), Fraction(0))
                         for j in self.platform.successors(node)),
                        start=Fraction(0),
                    )
                )
                ready[node] = ready[node] - spent + received[node]
                if ready[node] < 0:
                    raise AssertionError(
                        f"negative buffer at {node}: {ready[node]}"
                    )  # pragma: no cover

            completed_per_period.append(done_this_period)
            total += done_this_period

        bound = self.schedule.throughput * T * periods
        return PeriodicRunResult(
            schedule=self.schedule,
            periods=periods,
            completed_per_period=completed_per_period,
            total_completed=total,
            steady_state_bound=bound,
            trace=trace,
        )


def steady_state_reached_after(result: PeriodicRunResult) -> int:
    """First period index from which the run achieves the full LP rate."""
    T = result.schedule.period
    target = result.schedule.throughput * T
    for p, done in enumerate(result.completed_per_period):
        if done == target:
            return p
    return result.periods
