"""Message-granularity event-driven execution of periodic schedules.

The fluid :class:`~repro.simulator.periodic_runner.PeriodicRunner`
validates *rates*; this executor validates the schedule at the granularity
the paper actually promises — integral task files:

* each edge's per-period busy time is split into *whole messages* (the
  reconstruction guarantees ``busy = n_ij * c_ij`` with integer ``n_ij``);
  message ``k`` of a period occupies a concrete sub-interval of the edge's
  slice time;
* a node may only send task files it *holds*: files received in earlier
  periods (integer buffer discipline — no fractional tasks anywhere);
* computations start only when a whole file is buffered.

The run produces an exact event trace (validated against the one-port
model) and integer completion counts; after priming, every period
completes exactly ``T * ntask(G)`` tasks — the paper's statement, at task
granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..platform.graph import Edge, NodeId
from ..schedule.periodic import PeriodicSchedule, ScheduleError
from .trace import Trace


@dataclass
class MessageEvent:
    """One whole task file crossing one edge."""

    src: NodeId
    dst: NodeId
    start: Fraction
    end: Fraction
    period: int


@dataclass
class EventRunResult:
    schedule: PeriodicSchedule
    periods: int
    completed: Dict[NodeId, int]
    completed_per_period: List[int]
    messages: List[MessageEvent]
    trace: Trace

    @property
    def total_completed(self) -> int:
        return sum(self.completed.values())


def _edge_message_intervals(
    schedule: PeriodicSchedule,
) -> Dict[Edge, List[Tuple[Fraction, Fraction]]]:
    """Chop each edge's slice time into whole-message sub-intervals.

    The slices give each edge a set of busy intervals totalling
    ``n_ij * c_ij``; walking them in order and cutting every ``c_ij`` of
    cumulative time yields one interval per message.  A message may span
    two slices (preempted transfer) — legal under the model since the two
    matching slices both reserve the ports.
    """
    per_edge: Dict[Edge, List[Tuple[Fraction, Fraction]]] = {}
    for (i, j), count in schedule.messages.items():
        c = schedule.platform.c(i, j)
        busy: List[Tuple[Fraction, Fraction]] = []
        for sl in sorted(schedule.slices, key=lambda s: s.start):
            if sl.transfers.get(i) == j:
                busy.append((sl.start, sl.end))
        intervals: List[Tuple[Fraction, Fraction]] = []
        need = c
        msg_start: Optional[Fraction] = None
        for (a, b) in busy:
            pos = a
            while pos < b:
                if msg_start is None:
                    msg_start = pos
                take = min(need, b - pos)
                pos += take
                need -= take
                if need == 0:
                    intervals.append((msg_start, pos))
                    msg_start = None
                    need = c
        if len(intervals) != count:
            raise ScheduleError(
                f"edge {i}->{j}: carved {len(intervals)} messages, "
                f"expected {count}"
            )
        per_edge[(i, j)] = intervals
    return per_edge


class EventExecutor:
    """Integer-granularity executor for master-slave periodic schedules."""

    def __init__(self, schedule: PeriodicSchedule):
        if schedule.problem != "master-slave" or schedule.source is None:
            raise ScheduleError(
                "EventExecutor handles master-slave schedules"
            )
        self.schedule = schedule
        self.platform = schedule.platform
        self.source = schedule.source
        self.message_intervals = _edge_message_intervals(schedule)

    def run(self, periods: int) -> EventRunResult:
        if periods < 0:
            raise ValueError("periods must be non-negative")
        T = self.schedule.period
        buffered: Dict[NodeId, int] = {
            n: 0 for n in self.platform.nodes()
        }
        completed: Dict[NodeId, int] = {
            n: 0 for n in self.platform.nodes()
        }
        completed_per_period: List[int] = []
        messages: List[MessageEvent] = []
        trace = Trace()

        for p in range(periods):
            base = T * p
            # how many files each node may emit this period: what it held
            # at the period's start (the source mints fresh files)
            send_credit: Dict[NodeId, int] = dict(buffered)
            send_credit[self.source] = sum(
                len(iv) for (i, _j), iv in self.message_intervals.items()
                if i == self.source
            ) + self.schedule.compute.get(self.source, 0)
            received_now: Dict[NodeId, int] = {
                n: 0 for n in self.platform.nodes()
            }
            # transfers: walk the carved message intervals edge by edge;
            # a message departs only while its sender still has credit.
            for (i, j), intervals in self.message_intervals.items():
                for (a, b) in intervals:
                    if send_credit[i] <= 0:
                        continue  # not primed yet: the slot idles
                    send_credit[i] -= 1
                    if i != self.source:
                        buffered[i] -= 1
                    received_now[j] += 1
                    messages.append(
                        MessageEvent(i, j, base + a, base + b, p)
                    )
                    trace.record(i, "send", base + a, base + b,
                                 peer=j, units=Fraction(1))
                    trace.record(j, "recv", base + a, base + b,
                                 peer=i, units=Fraction(1))
            # computations: each node processes its allocation from buffer
            done_now = 0
            for node, cnt in self.schedule.compute.items():
                if cnt == 0:
                    continue
                if node == self.source:
                    doable = cnt
                else:
                    doable = min(cnt, send_credit[node])
                    send_credit[node] -= doable
                    buffered[node] -= doable
                if doable > 0:
                    w = self.platform.node(node).w
                    trace.record(node, "compute", base, base + doable * w,
                                 units=Fraction(doable))
                    completed[node] += doable
                    done_now += doable
            for node, got in received_now.items():
                buffered[node] += got
            completed_per_period.append(done_now)

        return EventRunResult(
            schedule=self.schedule,
            periods=periods,
            completed=completed,
            completed_per_period=completed_per_period,
            messages=messages,
            trace=trace,
        )
