"""Execute reconstructed *scatter* schedules with per-commodity buffers.

The master-slave runner tracks one fluid commodity; scatter schedules move
``|targets|`` distinct message types whose routes interleave on shared
edges.  This runner executes the schedule's per-commodity route
decomposition period by period under the same buffer discipline (forward in
period ``p`` only what arrived before ``p``), measuring per-target delivery
and validating against the LP throughput: after a priming phase bounded by
the longest route, every target receives exactly ``TP * T`` messages of its
type per period.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..platform.graph import Edge, NodeId
from ..schedule.periodic import PeriodicSchedule


@dataclass
class CollectiveRunResult:
    """Outcome of running a scatter schedule for ``K`` periods."""

    schedule: PeriodicSchedule
    periods: int
    #: delivered[target] = messages of the target's type received, total
    delivered: Dict[str, Fraction]
    #: per-period delivery per target
    per_period: Dict[str, List[Fraction]]

    def bound(self, target: str) -> Fraction:
        return self.schedule.throughput * self.schedule.period * self.periods

    def deficit(self, target: str) -> Fraction:
        return self.bound(target) - self.delivered[target]


class CollectiveRunner:
    """Fluid per-commodity executor for scatter periodic schedules."""

    def __init__(self, schedule: PeriodicSchedule):
        if not schedule.routes or schedule.problem not in (
            "scatter",
            "gather",
        ):
            raise ValueError(
                "CollectiveRunner needs a scatter/gather schedule with "
                "route annotations"
            )
        if schedule.source is None:
            raise ValueError("schedule lacks a source")
        self.schedule = schedule
        self.platform = schedule.platform
        self.source = schedule.source
        # per-commodity per-edge units per period, from the routes
        self.edge_plan: Dict[str, Dict[Edge, Fraction]] = {}
        for commodity, routes in schedule.routes.items():
            plan: Dict[Edge, Fraction] = {}
            for path, units in routes:
                for a, b in zip(path, path[1:]):
                    plan[(a, b)] = plan.get((a, b), Fraction(0)) + units
            self.edge_plan[commodity] = plan

    def run(self, periods: int) -> CollectiveRunResult:
        if periods < 0:
            raise ValueError("periods must be non-negative")
        commodities = sorted(self.edge_plan)
        # buffers[commodity][node]: units available for forwarding
        buffers: Dict[str, Dict[NodeId, Fraction]] = {
            k: {n: Fraction(0) for n in self.platform.nodes()}
            for k in commodities
        }
        delivered: Dict[str, Fraction] = {k: Fraction(0) for k in commodities}
        per_period: Dict[str, List[Fraction]] = {k: [] for k in commodities}

        for _p in range(periods):
            received: Dict[str, Dict[NodeId, Fraction]] = {
                k: {n: Fraction(0) for n in self.platform.nodes()}
                for k in commodities
            }
            for k in commodities:
                for node in self.platform.nodes():
                    plan_out = [
                        (e, units)
                        for e, units in self.edge_plan[k].items()
                        if e[0] == node
                    ]
                    total_plan = sum(
                        (u for _, u in plan_out), start=Fraction(0)
                    )
                    if total_plan == 0:
                        continue
                    if node == self.source:
                        available = total_plan  # fresh messages every period
                    else:
                        available = buffers[k][node]
                    factor = (
                        Fraction(1)
                        if available >= total_plan
                        else available / total_plan
                    )
                    for (i, j), units in plan_out:
                        sent = units * factor
                        if node != self.source:
                            buffers[k][node] -= sent
                        received[k][j] += sent
            for k in commodities:
                arrived_at_target = received[k].get(k, Fraction(0))
                delivered[k] += arrived_at_target
                per_period[k].append(arrived_at_target)
                for node in self.platform.nodes():
                    if node == k:
                        continue  # consumed at the target
                    buffers[k][node] += received[k][node]

        return CollectiveRunResult(
            schedule=self.schedule,
            periods=periods,
            delivered=delivered,
            per_period=per_period,
        )


def max_route_length(schedule: PeriodicSchedule) -> int:
    """Longest route (in hops) of any commodity — bounds the priming time."""
    longest = 0
    for routes in schedule.routes.values():
        for path, _units in routes:
            longest = max(longest, len(path) - 1)
    return longest
