"""Minimal discrete-event simulation core.

Exact rational event times (Fractions are totally ordered, so they key a
heap directly); a monotone sequence number breaks ties deterministically,
which keeps every simulation in the library reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, List, Optional, Tuple

from .._rational import as_fraction


class SimulationError(RuntimeError):
    """Raised on invalid simulator usage (e.g. scheduling in the past)."""


@dataclass(order=True)
class _Entry:
    time: Fraction
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Simulator:
    """Event loop with exact rational clock."""

    def __init__(self) -> None:
        self._heap: List[_Entry] = []
        self._seq = itertools.count()
        self.now: Fraction = Fraction(0)
        self.events_processed = 0

    def schedule(self, delay, action: Callable[[], None]) -> _Entry:
        """Run ``action`` at ``now + delay`` (delay >= 0)."""
        d = delay if isinstance(delay, Fraction) else as_fraction(delay)
        if d < 0:
            raise SimulationError(f"negative delay {delay}")
        entry = _Entry(self.now + d, next(self._seq), action)
        heapq.heappush(self._heap, entry)
        return entry

    def schedule_at(self, time, action: Callable[[], None]) -> _Entry:
        t = time if isinstance(time, Fraction) else as_fraction(time)
        if t < self.now:
            raise SimulationError(f"cannot schedule at {t} < now {self.now}")
        entry = _Entry(t, next(self._seq), action)
        heapq.heappush(self._heap, entry)
        return entry

    @staticmethod
    def cancel(entry: _Entry) -> None:
        entry.cancelled = True

    def run(self, until: Optional[Fraction] = None, max_events: int = 10_000_000) -> Fraction:
        """Process events in time order until the queue drains or ``until``.

        Returns the final clock value.  Events scheduled exactly at
        ``until`` are *not* processed (the horizon is exclusive), so a
        run can be resumed.
        """
        horizon = None if until is None else (
            until if isinstance(until, Fraction) else as_fraction(until)
        )
        while self._heap:
            entry = self._heap[0]
            if entry.cancelled:
                heapq.heappop(self._heap)
                continue
            if horizon is not None and entry.time >= horizon:
                self.now = horizon
                return self.now
            heapq.heappop(self._heap)
            self.now = entry.time
            self.events_processed += 1
            if self.events_processed > max_events:
                raise SimulationError(f"exceeded {max_events} events")
            entry.action()
        if horizon is not None:
            self.now = horizon
        return self.now

    @property
    def pending(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)
