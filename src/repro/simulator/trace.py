"""Execution traces and communication-model validators (sections 2 & 5.1).

Every simulator in the library records :class:`Interval` activities; the
validators then *prove* that a run respected the declared operation mode:

* ``one-port full overlap`` (the paper's favourite model, section 2):
  per node, send intervals pairwise disjoint; receive intervals pairwise
  disjoint; computation unrestricted (it overlaps communication).
* ``send-or-receive`` (section 5.1.1): send and receive intervals must
  *jointly* be pairwise disjoint.
* ``multiport(k)`` (section 5.1.2): at most ``k`` simultaneous sends and
  ``k`` simultaneous receives per node.

This turns the paper's feasibility arguments into machine-checked
assertions on concrete runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Literal, Optional, Sequence, Tuple

from ..platform.graph import NodeId

Kind = Literal["send", "recv", "compute"]


class ModelViolation(AssertionError):
    """A trace violates the declared communication model."""


@dataclass(frozen=True)
class Interval:
    """One activity of one node during ``[start, end)``."""

    node: NodeId
    kind: Kind
    start: Fraction
    end: Fraction
    peer: Optional[NodeId] = None
    units: Fraction = Fraction(0)
    label: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"interval ends before it starts: {self}")


class Trace:
    """Append-only activity log with model validation and summaries."""

    def __init__(self) -> None:
        self.intervals: List[Interval] = []

    def record(
        self,
        node: NodeId,
        kind: Kind,
        start,
        end,
        peer: Optional[NodeId] = None,
        units=Fraction(0),
        label: str = "",
    ) -> None:
        self.intervals.append(
            Interval(
                node=node,
                kind=kind,
                start=Fraction(start),
                end=Fraction(end),
                peer=peer,
                units=Fraction(units),
                label=label,
            )
        )

    # ------------------------------------------------------------------
    def by_node(self, node: NodeId, kind: Optional[Kind] = None) -> List[Interval]:
        return [
            iv
            for iv in self.intervals
            if iv.node == node and (kind is None or iv.kind == kind)
        ]

    def nodes(self) -> List[NodeId]:
        return sorted({iv.node for iv in self.intervals})

    def busy_time(self, node: NodeId, kind: Kind) -> Fraction:
        return sum(
            (iv.end - iv.start for iv in self.by_node(node, kind)),
            start=Fraction(0),
        )

    def units(self, node: NodeId, kind: Kind) -> Fraction:
        return sum(
            (iv.units for iv in self.by_node(node, kind)), start=Fraction(0)
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _max_overlap(intervals: Sequence[Interval]) -> int:
        """Maximum number of intervals covering a single time instant."""
        events: List[Tuple[Fraction, int]] = []
        for iv in intervals:
            if iv.end > iv.start:  # zero-length intervals occupy nothing
                events.append((iv.start, 1))
                events.append((iv.end, -1))
        # ends sort before starts at equal times, so touching intervals
        # ([a,b) then [b,c)) never count as overlapping.
        events.sort(key=lambda e: (e[0], e[1]))
        depth = best = 0
        for _, delta in events:
            depth += delta
            best = max(best, depth)
        return best

    def validate(self, model: str = "one-port", ports: int = 1) -> None:
        """Raise :class:`ModelViolation` unless the trace obeys ``model``.

        ``model`` is one of ``"one-port"`` (full overlap), ``"send-or-
        receive"``, ``"multiport"`` (with ``ports`` cards per direction).
        """
        if model not in ("one-port", "send-or-receive", "multiport"):
            raise ValueError(f"unknown model {model!r}")
        for node in self.nodes():
            sends = self.by_node(node, "send")
            recvs = self.by_node(node, "recv")
            if model == "one-port":
                if self._max_overlap(sends) > 1:
                    raise ModelViolation(f"{node}: overlapping sends")
                if self._max_overlap(recvs) > 1:
                    raise ModelViolation(f"{node}: overlapping receives")
            elif model == "send-or-receive":
                if self._max_overlap(sends + recvs) > 1:
                    raise ModelViolation(
                        f"{node}: overlapping communications under "
                        f"send-or-receive"
                    )
            elif model == "multiport":
                if self._max_overlap(sends) > ports:
                    raise ModelViolation(
                        f"{node}: more than {ports} simultaneous sends"
                    )
                if self._max_overlap(recvs) > ports:
                    raise ModelViolation(
                        f"{node}: more than {ports} simultaneous receives"
                    )
            else:
                raise ValueError(f"unknown model {model!r}")
            # computation never overlaps itself on a single CPU
            computes = self.by_node(node, "compute")
            if self._max_overlap(computes) > 1:
                raise ModelViolation(f"{node}: overlapping computations")

    def check_matched_transfers(self) -> None:
        """Every send interval must have the mirror receive interval."""
        sends = sorted(
            (iv for iv in self.intervals if iv.kind == "send"),
            key=lambda iv: (iv.start, iv.node, str(iv.peer)),
        )
        recvs = sorted(
            (iv for iv in self.intervals if iv.kind == "recv"),
            key=lambda iv: (iv.start, str(iv.peer), iv.node),
        )
        if len(sends) != len(recvs):
            raise ModelViolation(
                f"{len(sends)} sends vs {len(recvs)} receives"
            )
        for s, r in zip(sends, recvs):
            if (
                s.start != r.start
                or s.end != r.end
                or s.peer != r.node
                or r.peer != s.node
                or s.units != r.units
            ):
                raise ModelViolation(f"unmatched transfer: {s} vs {r}")

    def gantt(self, width: int = 72) -> str:
        """ASCII Gantt chart (coarse), for examples and debugging."""
        if not self.intervals:
            return "(empty trace)"
        t_end = max(iv.end for iv in self.intervals)
        if t_end == 0:
            return "(zero-length trace)"
        lines = []
        for node in self.nodes():
            for kind, char in (("send", "S"), ("recv", "r"), ("compute", "#")):
                ivs = self.by_node(node, kind)
                if not ivs:
                    continue
                row = ["."] * width
                for iv in ivs:
                    a = int(iv.start / t_end * width)
                    b = max(a + 1, int(iv.end / t_end * width))
                    for k in range(a, min(b, width)):
                        row[k] = char
                lines.append(f"{node:>8} {kind:>7} |{''.join(row)}|")
        return "\n".join(lines)
