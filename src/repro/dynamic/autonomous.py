"""Autonomous bandwidth-centric protocol on trees — section 5.5, solution 2.

"A second solution is more dynamic: each processor executes a load-
balancing algorithm to choose among several allocations" — the paper cites
the autonomous protocol of Carter, Casanova, Ferrante and Kreaseck [11] for
independent tasks on tree-shaped platforms.

Every node uses **only local information**: its own speed ``w``, the link
costs ``c`` to its children, and how much work each child's subtree can
absorb.  It serves children in increasing-``c`` order (bandwidth-centric)
until its send port saturates.  On trees this local fixed point equals the
global LP optimum — the theorem of [2, 11] that the test-suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..platform.graph import NodeId, Platform, PlatformError


@dataclass
class SubtreeReport:
    """Locally computed steady-state plan for one subtree."""

    node: NodeId
    #: tasks per time-unit the subtree absorbs when fed at full rate
    capacity: Fraction
    #: rate forwarded to each child
    child_rates: Dict[NodeId, Fraction]
    #: rate the node computes itself
    own_rate: Fraction


def subtree_capacity(
    platform: Platform,
    root: NodeId,
    children: Optional[Dict[NodeId, List[NodeId]]] = None,
) -> Dict[NodeId, SubtreeReport]:
    """Bottom-up bandwidth-centric capacities for every subtree.

    ``children`` defaults to the platform's successor structure, which must
    be a tree (each node one parent).  Returns a report per node; the
    root's ``capacity`` is the steady-state throughput of the whole tree
    when the root owns the task supply.
    """
    if children is None:
        children = {n: list(platform.successors(n)) for n in platform.nodes()}
        indeg: Dict[NodeId, int] = {n: 0 for n in platform.nodes()}
        for n, chs in children.items():
            for ch in chs:
                indeg[ch] += 1
        if any(d > 1 for d in indeg.values()):
            raise PlatformError(
                "platform is not a tree; pass an explicit children map"
            )

    reports: Dict[NodeId, SubtreeReport] = {}

    def visit(node: NodeId) -> SubtreeReport:
        spec = platform.node(node)
        own = Fraction(0) if not spec.can_compute else Fraction(1) / spec.w
        child_rates: Dict[NodeId, Fraction] = {}
        budget = Fraction(1)  # send-port time per time-unit
        # local decision: cheapest links first, never exceeding what the
        # child's subtree can absorb (its own recursive capacity)
        for ch in sorted(children[node], key=lambda c: (platform.c(node, c), c)):
            sub = visit(ch)
            if budget <= 0:
                child_rates[ch] = Fraction(0)
                continue
            c = platform.c(node, ch)
            rate = min(sub.capacity, budget / c)
            child_rates[ch] = rate
            budget -= rate * c
        capacity = own + sum(child_rates.values(), start=Fraction(0))
        report = SubtreeReport(
            node=node,
            capacity=capacity,
            child_rates=child_rates,
            own_rate=own,
        )
        reports[node] = report
        return report

    visit(root)
    return reports


def autonomous_throughput(
    platform: Platform,
    master: NodeId,
    children: Optional[Dict[NodeId, List[NodeId]]] = None,
) -> Fraction:
    """Steady-state rate reached by purely local decisions on a tree."""
    return subtree_capacity(platform, master, children)[master].capacity
