"""Phase-based adaptive steady-state scheduling — section 5.5, solution 1.

"A first solution is to recompute the solution of the linear program
periodically, based upon the information acquired during the current
period, and to determine the activity variables for the new period
accordingly."

:func:`run_adaptive` executes exactly that protocol against a
:class:`~repro.platform.monitoring.TimeVaryingPlatform`:

* **adaptive** — each epoch is planned with the parameters observed during
  the previous epoch (optionally smoothed by an NWS-style predictor);
* **static** — plan once on the epoch-0 platform, never replan;
* **oracle** — replan each epoch with the *true* current parameters
  (unattainable in practice; the upper reference).

Execution model: a plan drawn on an estimated platform runs on the true
platform with per-resource slowdown.  A transfer planned to take
``n * c_est`` takes ``n * c_true``; a node planned to compute ``n`` tasks
needs ``n * w_true``.  Per epoch, each resource's planned load is scaled by
``min(1, budget / needed)`` and the realised throughput is limited by flow
feasibility (bottleneck propagation), computed with the same fluid
machinery as the periodic runner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Literal, Optional, Sequence, Tuple

from ..core.master_slave import solve_master_slave
from ..platform.graph import Edge, NodeId, Platform
from ..platform.monitoring import SlidingWindowPredictor, TimeVaryingPlatform

Strategy = Literal["adaptive", "static", "oracle"]


@dataclass
class EpochOutcome:
    epoch: int
    planned_rate: Fraction
    achieved_rate: Fraction
    optimal_rate: Fraction  # LP optimum on the true epoch platform

    @property
    def efficiency(self) -> Fraction:
        if self.optimal_rate == 0:
            return Fraction(0)
        return self.achieved_rate / self.optimal_rate


@dataclass
class AdaptiveRunResult:
    strategy: str
    epochs: List[EpochOutcome]

    @property
    def total_achieved(self) -> Fraction:
        return sum((e.achieved_rate for e in self.epochs), start=Fraction(0))

    @property
    def total_optimal(self) -> Fraction:
        return sum((e.optimal_rate for e in self.epochs), start=Fraction(0))

    @property
    def mean_efficiency(self) -> Fraction:
        if self.total_optimal == 0:
            return Fraction(0)
        return self.total_achieved / self.total_optimal


def realized_rate(
    plan_platform: Platform,
    true_platform: Platform,
    master: NodeId,
    plan=None,
) -> Fraction:
    """Throughput of the ``plan_platform`` plan when run on the truth.

    The plan fixes per-edge task rates and per-node compute rates.  On the
    true platform each rate is first clipped by its own resource budget
    (ports, links, CPU under true costs), then flow conservation is
    restored by a downstream pass: a node cannot compute or forward tasks
    it does not receive.  Exact fluid computation.
    """
    if plan is None:
        plan = solve_master_slave(plan_platform, master)

    edge_rate: Dict[Edge, Fraction] = {}
    for (i, j) in plan.s:
        r = plan.edge_rate(i, j)
        if r > 0 and true_platform.has_edge(i, j):
            edge_rate[(i, j)] = r
    compute_rate: Dict[NodeId, Fraction] = {
        n: plan.compute_rate(n) for n in plan.alpha if plan.compute_rate(n) > 0
    }

    # 1. clip by true per-resource budgets
    for node in true_platform.nodes():
        out_edges = [
            (node, j) for j in true_platform.successors(node)
            if (node, j) in edge_rate
        ]
        busy = sum(
            (edge_rate[e] * true_platform.c(*e) for e in out_edges),
            start=Fraction(0),
        )
        if busy > 1:
            scale = Fraction(1) / busy
            for e in out_edges:
                edge_rate[e] *= scale
        in_edges = [
            (j, node) for j in true_platform.predecessors(node)
            if (j, node) in edge_rate
        ]
        busy = sum(
            (edge_rate[e] * true_platform.c(*e) for e in in_edges),
            start=Fraction(0),
        )
        if busy > 1:
            scale = Fraction(1) / busy
            for e in in_edges:
                edge_rate[e] *= scale
        if node in compute_rate:
            spec = true_platform.node(node)
            if not spec.can_compute:
                compute_rate[node] = Fraction(0)
            else:
                cap = Fraction(1) / spec.w
                compute_rate[node] = min(compute_rate[node], cap)

    # 2. restore conservation downstream, in topological order of the
    # *planned flow* (acyclic after SteadyStateSolution.simplify): a node's
    # outgoing + computed tasks cannot exceed its inflow.  Using the true
    # platform's BFS order here would be wrong — a flow-successor can sit
    # at a smaller BFS depth through some non-flow edge.
    indegree: Dict[NodeId, int] = {n: 0 for n in true_platform.nodes()}
    for (_i, j) in edge_rate:
        indegree[j] += 1
    order: List[NodeId] = [n for n, d in indegree.items() if d == 0]
    head = 0
    while head < len(order):
        u = order[head]
        head += 1
        for v in true_platform.successors(u):
            if (u, v) in edge_rate:
                indegree[v] -= 1
                if indegree[v] == 0:
                    order.append(v)
    if len(order) < true_platform.num_nodes:
        # residual cycle in the plan (foreign or unsimplified solution):
        # append the leftovers in arbitrary order; their factors simply
        # propagate conservatively.
        remaining = [n for n in true_platform.nodes() if n not in set(order)]
        order.extend(remaining)
    achieved = compute_rate.get(master, Fraction(0))
    inflow: Dict[NodeId, Fraction] = {n: Fraction(0) for n in true_platform.nodes()}
    for u in order:
        if u == master:
            supply = sum(
                (edge_rate.get((u, j), Fraction(0))
                 for j in true_platform.successors(u)),
                start=Fraction(0),
            )  # master supplies whatever it plans to send
            budget = supply
        else:
            budget = inflow[u]
        planned_out = sum(
            (edge_rate.get((u, j), Fraction(0))
             for j in true_platform.successors(u)),
            start=Fraction(0),
        )
        planned_comp = compute_rate.get(u, Fraction(0)) if u != master else Fraction(0)
        planned_total = planned_out + planned_comp
        factor = (
            Fraction(1)
            if planned_total <= budget or planned_total == 0
            else budget / planned_total
        )
        if u != master:
            achieved += planned_comp * factor
        for j in true_platform.successors(u):
            r = edge_rate.get((u, j), Fraction(0)) * factor
            inflow[j] += r
    return achieved


def run_adaptive(
    varying: TimeVaryingPlatform,
    master: NodeId,
    epochs: int,
    strategy: Strategy = "adaptive",
    predictor: Optional[SlidingWindowPredictor] = None,
    backend: str = "exact",
) -> AdaptiveRunResult:
    """Run one of the three strategies for ``epochs`` epochs."""
    if epochs < 1:
        raise ValueError("need at least one epoch")
    outcomes: List[EpochOutcome] = []
    initial = varying.snapshot()
    static_plan = solve_master_slave(initial, master, backend=backend)
    last_observed = initial
    if predictor is not None:
        predictor.observe(initial)
    for e in range(epochs):
        true_platform = varying.snapshot() if e == 0 else varying.advance()
        if strategy == "static":
            plan_platform, plan = initial, static_plan
        elif strategy == "oracle":
            plan_platform = true_platform
            plan = solve_master_slave(true_platform, master, backend=backend)
        else:
            if predictor is not None:
                plan_platform = predictor.predict(initial)
            else:
                plan_platform = last_observed
            plan = solve_master_slave(plan_platform, master, backend=backend)
        achieved = realized_rate(plan_platform, true_platform, master, plan)
        optimal = solve_master_slave(
            true_platform, master, backend=backend
        ).throughput
        outcomes.append(
            EpochOutcome(
                epoch=e,
                planned_rate=plan.throughput,
                achieved_rate=achieved,
                optimal_rate=optimal,
            )
        )
        last_observed = true_platform
        if predictor is not None:
            predictor.observe(true_platform)
    return AdaptiveRunResult(strategy=strategy, epochs=outcomes)
