"""Dynamic steady-state scheduling (section 5.5): phase-based LP re-solving
and the autonomous bandwidth-centric protocol on trees."""

from .adaptive import (
    AdaptiveRunResult,
    EpochOutcome,
    realized_rate,
    run_adaptive,
)
from .autonomous import SubtreeReport, autonomous_throughput, subtree_capacity

__all__ = [
    "AdaptiveRunResult",
    "EpochOutcome",
    "realized_rate",
    "run_adaptive",
    "SubtreeReport",
    "autonomous_throughput",
    "subtree_capacity",
]
