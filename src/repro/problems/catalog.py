"""The built-in problem catalog: every paper problem, registered once.

Each block below is the *whole* integration surface for a problem: a
typed spec (:mod:`repro.problems.specs`), a decorated uniform solver, a
capability declaration, and — where the LP admits the
structure-vs-coefficient split — a :class:`~repro.problems.registry.WarmModel`.
The CLI, JSON API, broker and incremental solver all pick these up through
the registry; nothing else needs editing to make a new problem servable.

The ``example`` factories build a minimal spec on a caller-supplied star
platform (root + workers with edges both ways); the registry consistency
check (``python -m repro problems --check`` and the mirror test in
``tests/test_problems.py``) runs every one of them end-to-end through
:func:`repro.service.broker.execute_request` to catch registration drift.
"""

from __future__ import annotations

from ..core.broadcast import solve_broadcast, solve_reduce
from ..core.dag import TaskGraph, solve_dag_collection
from ..core.master_slave import (
    build_ssms_lp,
    package_ssms_solution,
    patch_ssms_coefficients,
    solve_master_slave,
)
from ..core.multicast import solve_multicast
from ..core.port_models import (
    build_multiport_lp,
    build_send_or_receive_lp,
    package_port_model_solution,
    solve_master_slave_multiport,
    solve_master_slave_send_or_receive,
)
from ..core.scatter import (
    build_a2a_lp,
    build_ssps_lp,
    gather_from_scatter,
    package_a2a_solution,
    package_ssps_solution,
    patch_a2a_coefficients,
    patch_ssps_coefficients,
    reversed_platform,
    solve_all_to_all_solution,
    solve_gather,
    solve_scatter,
)
from .registry import Capabilities, WarmModel, register
from .specs import (
    AllToAllSpec,
    BroadcastSpec,
    DagSpec,
    GatherSpec,
    MasterSlaveSpec,
    MulticastSpec,
    MultiportSpec,
    ReduceSpec,
    ScatterSpec,
    SendOrReceiveSpec,
)

# ----------------------------------------------------------------------
# master-slave (SSMS, section 3.1)
# ----------------------------------------------------------------------
_SSMS_WARM = WarmModel(
    spec_key=lambda spec: ("master-slave", spec.master),
    build=lambda spec: build_ssms_lp(spec.platform, spec.master),
    patch=lambda lp, handles, spec: patch_ssms_coefficients(
        lp, handles, spec.platform, spec.master
    ),
    package=lambda spec, sol, handles, backend: package_ssms_solution(
        spec.platform, spec.master, sol, handles, backend=backend
    ),
)


@register(
    MasterSlaveSpec,
    capabilities=Capabilities(warm_resolve=True, reconstructs_schedule=True,
                              lp_structure="ssms"),
    entry_point=solve_master_slave,
    warm_model=_SSMS_WARM,
    example=lambda platform, root, others: MasterSlaveSpec(
        platform=platform, master=root
    ),
)
def _solve_master_slave(spec: MasterSlaveSpec, backend: str = "exact"):
    return solve_master_slave(spec.platform, spec.master, backend=backend)


# ----------------------------------------------------------------------
# scatter (SSPS, section 3.2 — port models of section 5.1)
# ----------------------------------------------------------------------
_SSPS_WARM = WarmModel(
    spec_key=lambda spec: ("scatter", spec.source,
                           tuple(sorted(spec.targets)),
                           spec.port_model, spec.ports),
    build=lambda spec: build_ssps_lp(
        spec.platform, spec.source, list(spec.targets),
        port_model=spec.port_model, ports=spec.ports,
    ),
    patch=lambda lp, handles, spec: patch_ssps_coefficients(
        lp, handles, spec.platform, spec.targets
    ),
    package=lambda spec, sol, handles, backend: package_ssps_solution(
        spec.platform, spec.source, list(spec.targets), sol, handles,
        backend=backend, port_model=spec.port_model,
    ),
)


@register(
    ScatterSpec,
    capabilities=Capabilities(warm_resolve=True, reconstructs_schedule=True,
                              lp_structure="ssps"),
    entry_point=solve_scatter,
    warm_model=_SSPS_WARM,
    example=lambda platform, root, others: ScatterSpec(
        platform=platform, source=root, targets=tuple(others)
    ),
)
def _solve_scatter(spec: ScatterSpec, backend: str = "exact"):
    return solve_scatter(
        spec.platform, spec.source, list(spec.targets), backend=backend,
        port_model=spec.port_model, ports=spec.ports,
    )


# ----------------------------------------------------------------------
# gather — scatter on the reversed platform (section 4.2).  The warm
# model works on the reversed platform throughout: the reversed topology
# is a pure function of the original topology, so the original's topology
# signature still keys the hot-model cache correctly.
# ----------------------------------------------------------------------
def _gather_build(spec: GatherSpec):
    return build_ssps_lp(reversed_platform(spec.platform), spec.sink,
                         list(spec.sources))


def _gather_patch(lp, handles, spec: GatherSpec) -> None:
    patch_ssps_coefficients(lp, handles, reversed_platform(spec.platform),
                            spec.sources)


def _gather_package(spec: GatherSpec, sol, handles, backend: str):
    rsol = package_ssps_solution(
        reversed_platform(spec.platform), spec.sink, list(spec.sources),
        sol, handles, backend=backend,
    )
    return gather_from_scatter(spec.platform, spec.sink, spec.sources, rsol)


_GATHER_WARM = WarmModel(
    spec_key=lambda spec: ("gather", spec.sink, tuple(sorted(spec.sources))),
    build=_gather_build,
    patch=_gather_patch,
    package=_gather_package,
)


@register(
    GatherSpec,
    capabilities=Capabilities(warm_resolve=True, reconstructs_schedule=True,
                              lp_structure="ssps"),
    entry_point=solve_gather,
    warm_model=_GATHER_WARM,
    example=lambda platform, root, others: GatherSpec(
        platform=platform, sink=root, sources=tuple(others)
    ),
)
def _solve_gather(spec: GatherSpec, backend: str = "exact"):
    return solve_gather(spec.platform, spec.sink, list(spec.sources),
                        backend=backend)


# ----------------------------------------------------------------------
# personalised all-to-all (end of section 4.2).  Like SSPS, only the
# occupation rows carry weights, so the multicommodity LP warm re-solves
# by patching the c_ij coefficients in place.
# ----------------------------------------------------------------------
_A2A_WARM = WarmModel(
    spec_key=lambda spec: ("all-to-all", tuple(sorted(spec.participants))),
    build=lambda spec: build_a2a_lp(spec.platform,
                                    list(spec.participants) or None),
    patch=lambda lp, handles, spec: patch_a2a_coefficients(
        lp, handles, spec.platform
    ),
    package=lambda spec, sol, handles, backend: package_a2a_solution(
        spec.platform, sol, handles, backend=backend,
        participants=spec.participants,  # the REQUESTER's ordering, not
        # the (sorted-key) hot model's first-build ordering
    ),
)


@register(
    AllToAllSpec,
    capabilities=Capabilities(warm_resolve=True, reconstructs_schedule=True,
                              lp_structure="multicommodity"),
    entry_point=solve_all_to_all_solution,
    warm_model=_A2A_WARM,
    example=lambda platform, root, others: AllToAllSpec(platform=platform),
)
def _solve_all_to_all(spec: AllToAllSpec, backend: str = "exact"):
    participants = list(spec.participants) or None
    return solve_all_to_all_solution(spec.platform, participants,
                                     backend=backend)


# ----------------------------------------------------------------------
# broadcast / reduce (sections 3.3 and 4.2)
# ----------------------------------------------------------------------
@register(
    BroadcastSpec,
    capabilities=Capabilities(lp_structure="tree-packing"),
    entry_point=solve_broadcast,
    example=lambda platform, root, others: BroadcastSpec(
        platform=platform, source=root
    ),
)
def _solve_broadcast(spec: BroadcastSpec, backend: str = "exact"):
    return solve_broadcast(spec.platform, spec.source, backend=backend,
                           tree_limit=spec.tree_limit)


@register(
    ReduceSpec,
    capabilities=Capabilities(lp_structure="tree-packing"),
    entry_point=solve_reduce,
    example=lambda platform, root, others: ReduceSpec(
        platform=platform, root=root
    ),
)
def _solve_reduce(spec: ReduceSpec, backend: str = "exact"):
    return solve_reduce(spec.platform, spec.root, backend=backend,
                        tree_limit=spec.tree_limit)


# ----------------------------------------------------------------------
# multicast bracket (section 4.3)
# ----------------------------------------------------------------------
@register(
    MulticastSpec,
    capabilities=Capabilities(lp_structure="tree-packing"),
    entry_point=solve_multicast,
    example=lambda platform, root, others: MulticastSpec(
        platform=platform, source=root, targets=tuple(others)
    ),
)
def _solve_multicast(spec: MulticastSpec, backend: str = "exact"):
    return solve_multicast(spec.platform, spec.source, list(spec.targets),
                           backend=backend, tree_limit=spec.tree_limit)


# ----------------------------------------------------------------------
# DAG collections (section 4.4)
# ----------------------------------------------------------------------
@register(
    DagSpec,
    capabilities=Capabilities(lp_structure="dag-collection"),
    entry_point=solve_dag_collection,
    example=lambda platform, root, others: DagSpec(
        platform=platform, master=root, dag=TaskGraph.chain([1, 2], [1])
    ),
)
def _solve_dag(spec: DagSpec, backend: str = "exact"):
    return solve_dag_collection(spec.platform, spec.dag, spec.master,
                                backend=backend)


# ----------------------------------------------------------------------
# alternative port models for master-slave (section 5.1).  Both share the
# SSMS conservation/objective block (the only weight-carrying rows — port
# budgets are weight-free), so patch_ssms_coefficients serves their warm
# models unchanged; only the build differs.
# ----------------------------------------------------------------------
_MULTIPORT_WARM = WarmModel(
    spec_key=lambda spec: ("multiport", spec.master, spec.ports),
    build=lambda spec: build_multiport_lp(spec.platform, spec.master,
                                          ports=spec.ports),
    patch=lambda lp, handles, spec: patch_ssms_coefficients(
        lp, handles, spec.platform, spec.master
    ),
    package=lambda spec, sol, handles, backend: package_port_model_solution(
        spec.platform, spec.master, sol, handles, backend=backend
    ),
)


@register(
    MultiportSpec,
    capabilities=Capabilities(warm_resolve=True,
                              lp_structure="ssms-multiport"),
    entry_point=solve_master_slave_multiport,
    warm_model=_MULTIPORT_WARM,
    example=lambda platform, root, others: MultiportSpec(
        platform=platform, master=root, ports=2
    ),
)
def _solve_multiport(spec: MultiportSpec, backend: str = "exact"):
    return solve_master_slave_multiport(spec.platform, spec.master,
                                        ports=spec.ports, backend=backend)


_SOR_WARM = WarmModel(
    spec_key=lambda spec: ("send-or-receive", spec.master),
    build=lambda spec: build_send_or_receive_lp(spec.platform, spec.master),
    patch=lambda lp, handles, spec: patch_ssms_coefficients(
        lp, handles, spec.platform, spec.master
    ),
    package=lambda spec, sol, handles, backend: package_port_model_solution(
        spec.platform, spec.master, sol, handles, backend=backend
    ),
)


@register(
    SendOrReceiveSpec,
    capabilities=Capabilities(warm_resolve=True,
                              lp_structure="ssms-send-or-receive"),
    entry_point=solve_master_slave_send_or_receive,
    warm_model=_SOR_WARM,
    example=lambda platform, root, others: SendOrReceiveSpec(
        platform=platform, master=root
    ),
)
def _solve_send_or_receive(spec: SendOrReceiveSpec, backend: str = "exact"):
    return solve_master_slave_send_or_receive(spec.platform, spec.master,
                                              backend=backend)
