"""repro.problems — typed specs + a capability-declaring solver registry.

One steady-state LP formulation covers every problem in the paper; this
package gives the code the same uniformity.  Each problem is a typed
:class:`~repro.problems.specs.ProblemSpec` (validated, JSON round-trip)
bound to a solver through the :mod:`~repro.problems.registry`, which also
records the solver's *capabilities*: whether its LP supports warm
re-solves on weight-only platform mutations (``warm_resolve`` + a
:class:`~repro.problems.registry.WarmModel`), whether its solutions
reconstruct into executable periodic schedules
(``reconstructs_schedule``), and which LP structure family it belongs to.

The CLI, the JSON API, the request broker and the incremental solver all
dispatch through :func:`~repro.problems.registry.resolve`; making a new
problem servable everywhere is one spec class plus one ``@register``-ed
solver in :mod:`~repro.problems.catalog`.

>>> from repro.platform import generators
>>> from repro.problems import MasterSlaveSpec, solve
>>> sol = solve(MasterSlaveSpec(platform=generators.star(3), master="M"))
>>> sol.throughput > 0
True
"""

from .specs import (
    SPEC_VERSION,
    AllToAllSpec,
    BroadcastSpec,
    DagSpec,
    GatherSpec,
    MasterSlaveSpec,
    MulticastSpec,
    MultiportSpec,
    ProblemSpec,
    ReduceSpec,
    ScatterSpec,
    SendOrReceiveSpec,
    SpecError,
    dag_from_dict,
    dag_to_dict,
)
from .registry import (
    Capabilities,
    SolverEntry,
    WarmModel,
    describe,
    legacy_entry_points,
    reconstructable_problems,
    register,
    registered_problems,
    resolve,
    solve,
    spec_from_request_fields,
    spec_from_wire,
)
from . import catalog  # noqa: F401  — registers the built-in problems

__all__ = [
    "SPEC_VERSION",
    "AllToAllSpec",
    "BroadcastSpec",
    "Capabilities",
    "DagSpec",
    "GatherSpec",
    "MasterSlaveSpec",
    "MulticastSpec",
    "MultiportSpec",
    "ProblemSpec",
    "ReduceSpec",
    "ScatterSpec",
    "SendOrReceiveSpec",
    "SolverEntry",
    "SpecError",
    "WarmModel",
    "dag_from_dict",
    "dag_to_dict",
    "describe",
    "legacy_entry_points",
    "reconstructable_problems",
    "register",
    "registered_problems",
    "resolve",
    "solve",
    "spec_from_request_fields",
    "spec_from_wire",
]
