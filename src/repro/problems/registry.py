"""Capability-declaring solver registry — one dispatch path for everything.

Every problem the library can solve is registered here exactly once, as a
:class:`SolverEntry` binding

* a typed spec class (:mod:`repro.problems.specs`),
* a uniform ``solve(spec, backend=...)`` callable,
* a :class:`Capabilities` declaration (can the solver's LP be warm
  re-solved on weight-only mutations?  can its solution be turned into a
  periodic schedule?  which LP structure family does it belong to?), and
* optionally a :class:`WarmModel` — the structure-vs-coefficient split
  that makes the ``warm_resolve`` capability executable — and an example
  factory used by the end-to-end registry consistency check
  (``python -m repro problems --check``).

The CLI, the JSON API, the request broker and the incremental solver all
route through :func:`resolve` — there is no per-problem branch ladder
anywhere downstream.  Registering a new problem (one spec + one decorated
solver in :mod:`repro.problems.catalog`) makes it servable everywhere at
once.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence, Tuple, Type

from ..platform.graph import NodeId, Platform
from .specs import ProblemSpec, SpecError


@dataclass(frozen=True)
class Capabilities:
    """What a registered solver declares about itself.

    ``warm_resolve``
        The solver's LP structure depends only on the platform topology;
        weight-only mutations can be re-solved by patching coefficients
        (requires a :class:`WarmModel` on the entry).
    ``reconstructs_schedule``
        The solution can be turned into an executable periodic schedule
        by :func:`repro.schedule.reconstruction.reconstruct_schedule`.
    ``lp_structure``
        Label of the LP family ("ssms", "ssps", "tree-packing", ...) —
        solvers sharing a structure share warm-model machinery.
    """

    warm_resolve: bool = False
    reconstructs_schedule: bool = False
    lp_structure: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class WarmModel:
    """The structure-vs-coefficient split behind ``warm_resolve``.

    ``spec_key(spec)``
        The structural part of the spec (distinguished nodes, target set,
        port model, ...) — together with the platform's topology signature
        it keys the hot-model cache.  Weights must NOT appear in it.
    ``build(spec)``
        Assemble the LP from scratch; returns ``(lp, handles)``.
    ``patch(lp, handles, spec)``
        Rewrite every weight-derived coefficient of an assembled model in
        place (the :class:`~repro.lp.model.LinearProgram` rebuild hook).
    ``package(spec, lp_solution, handles, backend)``
        Turn a solved model into the problem's public solution object.
    """

    spec_key: Callable[[ProblemSpec], Tuple]
    build: Callable[[ProblemSpec], Tuple[Any, Dict]]
    patch: Callable[[Any, Dict, ProblemSpec], None]
    package: Callable[[ProblemSpec, Any, Dict, str], Any]


#: example factory signature: (platform, root, other_nodes) -> spec — used
#: by the registry consistency check to prove each problem servable
ExampleFactory = Callable[[Platform, NodeId, Sequence[NodeId]], ProblemSpec]


@dataclass(frozen=True)
class SolverEntry:
    """One registered problem: spec type + solver + declared capabilities."""

    problem: str
    spec_type: Type[ProblemSpec]
    solve_fn: Callable[..., Any]
    capabilities: Capabilities
    entry_point: Callable[..., Any]
    warm_model: Optional[WarmModel] = None
    example: Optional[ExampleFactory] = None

    def solve(self, spec: ProblemSpec, backend: str = "exact") -> Any:
        """The uniform solve entry: typed spec in, solution object out."""
        if not isinstance(spec, self.spec_type):
            raise SpecError(
                f"{self.problem} expects a {self.spec_type.__name__}, got "
                f"{type(spec).__name__}"
            )
        return self.solve_fn(spec, backend=backend)


_REGISTRY: Dict[str, SolverEntry] = {}


def register(
    spec_type: Type[ProblemSpec],
    capabilities: Optional[Capabilities] = None,
    entry_point: Optional[Callable[..., Any]] = None,
    warm_model: Optional[WarmModel] = None,
    example: Optional[ExampleFactory] = None,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator registering ``fn(spec, backend=...)`` for a spec type.

    >>> @register(MySpec, capabilities=Capabilities(lp_structure="ssms"))
    ... def solve_my_problem(spec, backend="exact"):
    ...     return my_core_solver(spec.platform, spec.master, backend=backend)
    """
    caps = capabilities if capabilities is not None else Capabilities()
    problem = spec_type.problem
    if not problem:
        raise ValueError(f"{spec_type.__name__} declares no problem name")
    if caps.warm_resolve != (warm_model is not None):
        raise ValueError(
            f"{problem}: the warm_resolve capability and the warm model "
            f"must be declared together"
        )

    def decorator(fn: Callable[..., Any]) -> Callable[..., Any]:
        if problem in _REGISTRY:
            raise ValueError(f"problem {problem!r} is already registered")
        _REGISTRY[problem] = SolverEntry(
            problem=problem,
            spec_type=spec_type,
            solve_fn=fn,
            capabilities=caps,
            entry_point=entry_point if entry_point is not None else fn,
            warm_model=warm_model,
            example=example,
        )
        return fn

    return decorator


# ----------------------------------------------------------------------
# lookup + dispatch
# ----------------------------------------------------------------------
def resolve(problem: str) -> SolverEntry:
    """Look up a registered problem; raise :class:`SpecError` if unknown."""
    entry = _REGISTRY.get(problem)
    if entry is None:
        raise SpecError(
            f"unknown problem {problem!r}; known: {sorted(_REGISTRY)}"
        )
    return entry


def registered_problems() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def solve(spec: ProblemSpec, backend: str = "exact") -> Any:
    """Solve any typed spec through its registered solver."""
    return resolve(spec.problem).solve(spec, backend=backend)


def reconstructable_problems() -> frozenset:
    """Problems whose solutions reconstruct into periodic schedules."""
    return frozenset(
        name for name, entry in _REGISTRY.items()
        if entry.capabilities.reconstructs_schedule
    )


def spec_from_request_fields(
    problem: str,
    platform: Platform,
    source: Optional[NodeId] = None,
    targets: Any = (),
    dag: Any = None,
    options: Optional[Dict[str, Any]] = None,
) -> ProblemSpec:
    """Typed spec from the flat request fields of the legacy schema."""
    return resolve(problem).spec_type.from_request_fields(
        platform, source=source, targets=targets, dag=dag, options=options
    )


def spec_from_wire(platform: Platform, payload: Any) -> ProblemSpec:
    """Typed spec from a versioned wire envelope (``{"spec": ...}``)."""
    if not isinstance(payload, dict):
        raise SpecError(
            f"spec envelope must be an object, got {type(payload).__name__}"
        )
    problem = payload.get("problem")
    if not problem:
        raise SpecError("spec envelope needs a 'problem'")
    return resolve(str(problem)).spec_type.from_wire(platform, payload)


def legacy_entry_points() -> Dict[str, Callable[..., Any]]:
    """The deprecated ``SOLVER_ENTRY_POINTS`` table, built from the registry."""
    return {
        name: entry.entry_point for name, entry in sorted(_REGISTRY.items())
    }


def describe() -> Dict[str, Any]:
    """JSON-safe registry metadata (CLI ``problems`` command, API op)."""
    out: Dict[str, Any] = {}
    for name, entry in sorted(_REGISTRY.items()):
        spec_fields = []
        for f in entry.spec_type._spec_fields():
            required = entry.spec_type._field_required(f)
            default = None if required else f.default
            if isinstance(default, tuple):
                default = list(default)
            spec_fields.append({
                "name": f.name,
                "role": entry.spec_type._role(f.name),
                "required": required,
                "default": default,
            })
        out[name] = {
            "spec": entry.spec_type.__name__,
            "fields": spec_fields,
            "capabilities": entry.capabilities.as_dict(),
            "solver": getattr(entry.entry_point, "__qualname__",
                              repr(entry.entry_point)),
        }
    return out
