"""Typed problem specifications — one dataclass per steady-state problem.

The paper's "why" is that a single steady-state LP formulation covers
master-slave tasking, scatter/gather, broadcast/reduce, multicast and DAG
collections.  This module gives each of those problems a *typed spec*: a
frozen dataclass naming exactly the fields the problem needs (its
distinguished node, its commodity set, its structural options), with

* validation at construction time — a malformed spec raises
  :class:`SpecError`, never a downstream ``KeyError``/``TypeError``;
* an exact JSON wire codec (:meth:`ProblemSpec.to_wire` /
  :meth:`ProblemSpec.from_wire`) with explicit versioning;
* a lossless mapping to and from the service's flat request fields
  (``source``/``targets``/``dag``/``options``), so the legacy wire schema
  keeps working.

Specs are *data only*.  How a spec is solved — and which capabilities the
solver declares — lives in :mod:`repro.problems.registry` and the built-in
:mod:`repro.problems.catalog`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, fields
from fractions import Fraction
from typing import Any, ClassVar, Dict, Optional, Tuple

from ..core.dag import BEGIN, TaskGraph
from ..platform.graph import NodeId, Platform

#: wire-format version accepted by :meth:`ProblemSpec.from_wire`
SPEC_VERSION = 1


class SpecError(ValueError):
    """A malformed problem spec (missing, unknown or ill-typed fields)."""


# ----------------------------------------------------------------------
# task-graph wire codec (shared by DagSpec and the legacy request schema)
# ----------------------------------------------------------------------
def dag_from_dict(data: Any) -> TaskGraph:
    """Decode the wire form of a task graph; raise :class:`SpecError`."""
    try:
        dag = TaskGraph()
        for name, work in data.get("types", {}).items():
            dag.add_type(name, Fraction(str(work)))
        for rec in data.get("files", []):
            dag.add_file(rec["producer"], rec["consumer"],
                         Fraction(str(rec["size"])))
        if data.get("anchor", True):
            dag.anchor_at_master(Fraction(str(data.get("input_size", 1))))
        return dag
    except (AttributeError, KeyError, TypeError, ValueError,
            ZeroDivisionError) as exc:
        raise SpecError(f"malformed task graph spec: {exc}") from exc


def dag_to_dict(dag: TaskGraph) -> Dict[str, Any]:
    """Encode a task graph (inverse of :func:`dag_from_dict`)."""
    from ..platform.serialization import encode_weight

    return {
        "types": {
            t: encode_weight(w) for t, w in dag.types.items() if t != BEGIN
        },
        "files": [
            {"producer": a, "consumer": b, "size": encode_weight(sz)}
            for (a, b), sz in dag.files.items() if a != BEGIN
        ],
        "anchor": BEGIN in dag.types,
        "input_size": encode_weight(
            next(
                (sz for (a, _b), sz in dag.files.items() if a == BEGIN),
                Fraction(1),
            )
        ),
    }


# ----------------------------------------------------------------------
# the spec hierarchy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProblemSpec:
    """Base class: a platform plus problem-specific fields.

    Subclasses declare their fields as ordinary dataclass fields and steer
    the generic validation / codec machinery with class attributes:

    ``problem``
        The wire-level problem name (the registry key).
    ``_SOURCE_FIELD`` / ``_TARGETS_FIELD``
        Which spec field the flat request-level ``source`` (resp.
        ``targets``) maps onto — e.g. gather's sink arrives as ``source``.
    ``_ROLES``
        Human-readable field descriptions used in validation errors.
    ``_INT_FIELDS``
        Option fields coerced to ``int`` (wire JSON may carry strings).
    """

    platform: Platform

    problem: ClassVar[str] = ""
    _SOURCE_FIELD: ClassVar[Optional[str]] = None
    _TARGETS_FIELD: ClassVar[Optional[str]] = None
    _ROLES: ClassVar[Dict[str, str]] = {}
    _INT_FIELDS: ClassVar[Tuple[str, ...]] = ()

    # ------------------------------------------------------------------
    # construction-time validation
    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        if not isinstance(self.platform, Platform):
            raise SpecError(
                f"{self.problem} spec needs a Platform, got "
                f"{type(self.platform).__name__}"
            )
        for f in self._spec_fields():
            value = getattr(self, f.name)
            if f.name == self._SOURCE_FIELD:
                if value is None or (isinstance(value, str) and not value):
                    raise SpecError(
                        f"{self.problem} requests need {self._role(f.name)}"
                    )
            elif f.name == self._TARGETS_FIELD:
                if isinstance(value, (str, bytes)):
                    # tuple("P5") would silently become ('P', '5')
                    raise SpecError(
                        f"{self._role(f.name)} must be a sequence of node "
                        f"names, got the bare string {value!r}"
                    )
                try:
                    value = tuple(value)
                except TypeError:
                    raise SpecError(
                        f"{self._role(f.name)} must be a sequence of node "
                        f"names, got {value!r}"
                    ) from None
                object.__setattr__(self, f.name, value)
                if not value and self._field_required(f):
                    raise SpecError(
                        f"{self.problem} requests need {self._role(f.name)}"
                    )
            elif f.name in self._INT_FIELDS:
                try:
                    coerced = int(value)
                    # int() on a string already rejects "2.9"; for numeric
                    # input, refuse to truncate 2.9 -> 2 silently
                    if not isinstance(value, str) and coerced != value:
                        raise ValueError
                except (TypeError, ValueError):
                    raise SpecError(
                        f"{self.problem} option {f.name!r} must be an "
                        f"integer, got {value!r}"
                    ) from None
                object.__setattr__(self, f.name, coerced)
        self._validate()

    def _validate(self) -> None:
        """Subclass hook for problem-specific invariants."""

    # ------------------------------------------------------------------
    # generic introspection helpers
    # ------------------------------------------------------------------
    @classmethod
    def _spec_fields(cls):
        return [f for f in fields(cls) if f.name != "platform"]

    @staticmethod
    def _field_required(f) -> bool:
        return (f.default is dataclasses.MISSING
                and f.default_factory is dataclasses.MISSING)

    @classmethod
    def _role(cls, name: str) -> str:
        return cls._ROLES.get(name, name)

    def source_node(self) -> Optional[NodeId]:
        """The distinguished node (master / source / sink / root), if any."""
        if self._SOURCE_FIELD is None:
            return None
        return getattr(self, self._SOURCE_FIELD)

    def target_nodes(self) -> Tuple[NodeId, ...]:
        """The commodity set (targets / sources / participants), if any."""
        if self._TARGETS_FIELD is None:
            return ()
        return tuple(getattr(self, self._TARGETS_FIELD))

    def dag_graph(self) -> Optional[TaskGraph]:
        return getattr(self, "dag", None)

    def option_fields(self) -> Dict[str, Any]:
        """Spec fields that travel as request-level ``options``."""
        skip = {"platform", "dag", self._SOURCE_FIELD, self._TARGETS_FIELD}
        return {
            f.name: getattr(self, f.name)
            for f in fields(self) if f.name not in skip
        }

    # ------------------------------------------------------------------
    # flat request fields (the legacy wire schema / SolveRequest shape)
    # ------------------------------------------------------------------
    @classmethod
    def from_request_fields(
        cls,
        platform: Platform,
        source: Optional[NodeId] = None,
        targets: Any = (),
        dag: Optional[TaskGraph] = None,
        options: Optional[Dict[str, Any]] = None,
    ) -> "ProblemSpec":
        """Build a typed spec from the flat request fields.

        ``options["backend"]`` is an execution choice, not part of the
        problem, and is ignored here (the service keeps it on the request);
        any other unknown option is a typed error.
        """
        opts = dict(options or {})
        opts.pop("backend", None)
        kwargs: Dict[str, Any] = {}
        names = {f.name for f in cls._spec_fields()}
        if cls._SOURCE_FIELD is not None:
            kwargs[cls._SOURCE_FIELD] = source
        elif source is not None:
            raise SpecError(f"{cls.problem} requests take no source")
        if cls._TARGETS_FIELD is not None:
            kwargs[cls._TARGETS_FIELD] = targets
        elif targets:
            raise SpecError(f"{cls.problem} requests take no targets")
        if "dag" in names:
            kwargs["dag"] = dag
        elif dag is not None:
            raise SpecError(f"{cls.problem} requests take no task graph")
        for name in names - set(kwargs):
            if name in opts:
                kwargs[name] = opts.pop(name)
        if opts:
            raise SpecError(
                f"unknown option(s) for {cls.problem}: {sorted(opts)}"
            )
        return cls(platform=platform, **kwargs)

    # ------------------------------------------------------------------
    # wire codec (the versioned "spec" envelope)
    # ------------------------------------------------------------------
    def to_wire(self) -> Dict[str, Any]:
        """JSON-safe encoding; exact inverse of :meth:`from_wire`."""
        out: Dict[str, Any] = {"version": SPEC_VERSION, "problem": self.problem}
        for f in self._spec_fields():
            value = getattr(self, f.name)
            if isinstance(value, TaskGraph):
                value = dag_to_dict(value)
            elif isinstance(value, tuple):
                value = list(value)
            out[f.name] = value
        return out

    @classmethod
    def from_wire(cls, platform: Platform, payload: Any) -> "ProblemSpec":
        """Decode a spec envelope; raise :class:`SpecError` when malformed."""
        if not isinstance(payload, dict):
            raise SpecError(f"spec envelope must be an object, got "
                            f"{type(payload).__name__}")
        data = dict(payload)
        version = data.pop("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise SpecError(
                f"unsupported spec version {version!r} "
                f"(this build speaks version {SPEC_VERSION})"
            )
        problem = data.pop("problem", cls.problem)
        if problem != cls.problem:
            raise SpecError(
                f"spec envelope names problem {problem!r} but was decoded "
                f"as {cls.problem!r}"
            )
        names = {f.name for f in cls._spec_fields()}
        unknown = set(data) - names
        if unknown:
            raise SpecError(
                f"unknown spec field(s) for {cls.problem}: {sorted(unknown)}"
            )
        kwargs: Dict[str, Any] = {}
        for f in cls._spec_fields():
            if f.name not in data:
                if cls._field_required(f):
                    raise SpecError(
                        f"{cls.problem} requests need {cls._role(f.name)}"
                    )
                continue
            value = data[f.name]
            if f.name == "dag" and not isinstance(value, TaskGraph):
                value = dag_from_dict(value)
            kwargs[f.name] = value
        return cls(platform=platform, **kwargs)


# ----------------------------------------------------------------------
# the ten built-in problem kinds (sections 3-5 of the paper)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MasterSlaveSpec(ProblemSpec):
    """SSMS — master-slave tasking (section 3.1)."""

    master: NodeId

    problem = "master-slave"
    _SOURCE_FIELD = "master"
    _ROLES = {"master": "source/master"}


@dataclass(frozen=True)
class ScatterSpec(ProblemSpec):
    """SSPS — pipelined scatter (section 3.2), any port model (5.1)."""

    source: NodeId
    targets: Tuple[NodeId, ...]
    port_model: str = "one-port"
    ports: int = 1

    problem = "scatter"
    _SOURCE_FIELD = "source"
    _TARGETS_FIELD = "targets"
    _INT_FIELDS = ("ports",)

    def _validate(self) -> None:
        if self.port_model not in ("one-port", "send-or-receive", "multiport"):
            raise SpecError(f"unknown port model {self.port_model!r}")
        if self.ports < 1:
            raise SpecError("ports must be >= 1")


@dataclass(frozen=True)
class GatherSpec(ProblemSpec):
    """Pipelined gather — scatter on the reversed platform (section 4.2)."""

    sink: NodeId
    sources: Tuple[NodeId, ...]

    problem = "gather"
    _SOURCE_FIELD = "sink"
    _TARGETS_FIELD = "sources"
    _ROLES = {"sink": "source (the sink)", "sources": "targets (the sources)"}


@dataclass(frozen=True)
class AllToAllSpec(ProblemSpec):
    """Personalised all-to-all (end of section 4.2).

    An empty ``participants`` tuple means every platform node takes part.
    """

    participants: Tuple[NodeId, ...] = ()

    problem = "all-to-all"
    _TARGETS_FIELD = "participants"


@dataclass(frozen=True)
class BroadcastSpec(ProblemSpec):
    """Series of broadcasts — LP bound + arborescence packing (3.3, 4.2)."""

    source: NodeId
    tree_limit: int = 100_000

    problem = "broadcast"
    _SOURCE_FIELD = "source"
    _INT_FIELDS = ("tree_limit",)

    def _validate(self) -> None:
        if self.tree_limit < 1:
            raise SpecError("tree_limit must be >= 1")


@dataclass(frozen=True)
class ReduceSpec(ProblemSpec):
    """Series of reductions — reverse broadcast with combining (4.2)."""

    root: NodeId
    tree_limit: int = 100_000

    problem = "reduce"
    _SOURCE_FIELD = "root"
    _INT_FIELDS = ("tree_limit",)

    def _validate(self) -> None:
        if self.tree_limit < 1:
            raise SpecError("tree_limit must be >= 1")


@dataclass(frozen=True)
class MulticastSpec(ProblemSpec):
    """Multicast sum/packing/max bracket (section 4.3)."""

    source: NodeId
    targets: Tuple[NodeId, ...]
    tree_limit: int = 100_000

    problem = "multicast"
    _SOURCE_FIELD = "source"
    _TARGETS_FIELD = "targets"
    _INT_FIELDS = ("tree_limit",)

    def _validate(self) -> None:
        if self.tree_limit < 1:
            raise SpecError("tree_limit must be >= 1")


@dataclass(frozen=True)
class DagSpec(ProblemSpec):
    """Collections of identical task graphs (section 4.4)."""

    master: NodeId
    dag: TaskGraph

    problem = "dag"
    _SOURCE_FIELD = "master"
    _ROLES = {"master": "source/master"}

    def _validate(self) -> None:
        if not isinstance(self.dag, TaskGraph):
            raise SpecError("dag requests need a task graph")


@dataclass(frozen=True)
class MultiportSpec(ProblemSpec):
    """SSMS under the multiport model of section 5.1.2."""

    master: NodeId
    ports: int = 2

    problem = "multiport"
    _SOURCE_FIELD = "master"
    _ROLES = {"master": "source/master"}
    _INT_FIELDS = ("ports",)

    def _validate(self) -> None:
        if self.ports < 1:
            raise SpecError("ports must be >= 1")


@dataclass(frozen=True)
class SendOrReceiveSpec(ProblemSpec):
    """SSMS under the send-OR-receive model of section 5.1.1."""

    master: NodeId

    problem = "send-or-receive"
    _SOURCE_FIELD = "master"
    _ROLES = {"master": "source/master"}
