"""Turn a fractional tree packing into an executable periodic schedule.

Broadcast/multicast solutions come out as arborescence packings
(:mod:`repro.core.trees`).  During a period ``T`` (lcm of the rates'
denominators) tree ``T_k`` carries ``n_k = x_k * T`` operation instances;
distinct trees carry distinct instances, so an edge shared by several trees
pays each tree's transfers separately, while *within* one tree each edge
forwards each instance exactly once.  The per-edge busy time is therefore

    ``busy(i, j) = sum_k n_k * c_ij  over trees containing (i, j)``

and the packing's one-port feasibility makes every port load fit in ``T``;
the weighted edge colouring then orchestrates the slices exactly as for
master-slave (section 4.1).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Tuple

from .._rational import lcm_denominators
from ..platform.graph import Edge, NodeId, Platform
from .edge_coloring import weighted_edge_coloring
from .periodic import CommSlice, PeriodicSchedule, ScheduleError
from .reconstruction import RECV, SEND


def packing_to_schedule(
    platform: Platform,
    packing: Mapping[frozenset, Fraction],
    source: NodeId,
    problem: str = "broadcast",
) -> PeriodicSchedule:
    """Periodic schedule executing a tree packing at its full rate."""
    rates = [r for r in packing.values() if r > 0]
    if not rates:
        return PeriodicSchedule(
            platform=platform,
            problem=problem,
            period=Fraction(1),
            throughput=Fraction(0),
            slices=[],
            source=source,
        )
    T = lcm_denominators(rates)
    busy: Dict[Edge, Fraction] = {}
    messages: Dict[Edge, int] = {}
    for tree, rate in packing.items():
        if rate <= 0:
            continue
        n_k = rate * T
        assert n_k.denominator == 1
        for (i, j) in tree:
            busy[(i, j)] = busy.get((i, j), Fraction(0)) + n_k * platform.c(i, j)
            messages[(i, j)] = messages.get((i, j), 0) + int(n_k)

    bip_edges = [((SEND, i), (RECV, j), t) for (i, j), t in busy.items()]
    matchings = weighted_edge_coloring(bip_edges)
    slices: List[CommSlice] = []
    clock = Fraction(0)
    for m in matchings:
        transfers = {u[1]: v[1] for u, v in m.pairs.items()}
        slices.append(
            CommSlice(start=clock, duration=m.duration, transfers=transfers)
        )
        clock += m.duration
    throughput = sum(rates, start=Fraction(0))
    if clock > T:
        raise ScheduleError(
            f"packing needs {clock} > period {T}: packing infeasible"
        )
    schedule = PeriodicSchedule(
        platform=platform,
        problem=problem,
        period=Fraction(T),
        throughput=throughput,
        slices=slices,
        messages=messages,
        source=source,
    )
    schedule.validate()
    schedule.check_message_counts()
    return schedule


def tree_routes(
    packing: Mapping[frozenset, Fraction], source: NodeId
) -> List[Tuple[frozenset, Fraction]]:
    """The packing as (tree, rate) pairs sorted by decreasing rate."""
    return sorted(
        ((t, r) for t, r in packing.items() if r > 0),
        key=lambda tr: (-tr[1], sorted(tr[0])),
    )
