"""Start-up (latency) costs and asymptotic optimality — section 5.2.

Linear programs want linear costs; real links charge ``C_ij + c_ij * n``
for a message of ``n`` tasks.  The paper's four-step recipe circumvents
this:

1. ``Topt(n) >= n / ntask(G)`` — the start-up-free platform is stronger;
2. group ``m`` consecutive periods: each used edge pays **one** start-up
   per group, so a group lasts ``m*T + sum C_ij <= m*T + C*|E|`` and still
   ships ``m * T * ntask`` tasks;
3. initialisation sends every node its first-group working set serially
   (duration ``A1 * m``); clean-up drains in-flight work (``A2 * m``);
4. choosing ``m = ceil(sqrt(n / ntask))`` gives
   ``T(n)/Topt(n) <= 1 + O(1/sqrt(n))``.

:func:`grouped_schedule_makespan` evaluates the constructed schedule's
exact makespan; :func:`asymptotic_ratio` returns the guaranteed bound, and
benchmark C6 plots both against ``n``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Mapping, Optional, Tuple

from .._rational import RationalLike, as_fraction
from ..platform.graph import Edge
from .periodic import PeriodicSchedule


@dataclass
class StartupAnalysis:
    """Everything section 5.2 derives for a given ``n`` and ``m``."""

    n_tasks: int
    m: int
    period: Fraction              # elementary period T
    group_length: Fraction        # m*T + startup overhead
    tasks_per_group: Fraction     # m*T*ntask
    init_time: Fraction           # A1 * m
    cleanup_time: Fraction        # A2 * m
    total_time: Fraction          # T(n)
    lower_bound: Fraction         # n / ntask

    @property
    def ratio(self) -> Fraction:
        """``T(n) / Topt(n)`` upper bound actually achieved."""
        if self.lower_bound == 0:
            return Fraction(0)
        return self.total_time / self.lower_bound


def default_group_count(n_tasks: int, throughput: Fraction) -> int:
    """The paper's ``m = ceil(sqrt(n / ntask(G)))``."""
    if n_tasks <= 0:
        return 1
    val = Fraction(n_tasks) / throughput
    # repro-lint: allow(exactness) — isqrt/ceil are exact integer ops;
    # they pick the (integer) group count, not a result weight
    return max(1, math.isqrt(math.ceil(val)))


def grouped_schedule_makespan(
    schedule: PeriodicSchedule,
    startups: Mapping[Edge, RationalLike],
    n_tasks: int,
    m: Optional[int] = None,
) -> StartupAnalysis:
    """Makespan of the grouped periodic schedule for ``n_tasks`` tasks.

    ``startups[(i, j)]`` is ``C_ij``; missing edges default to 0.  The
    accounting follows section 5.2 verbatim:

    * every edge that carries messages pays one ``C_ij`` per group;
    * the initialisation phase serially ships one group's consumption to
      every node (one message per used edge: ``C_ij + (m n_ij) c_ij``);
    * the clean-up phase processes at most one group's tasks in place —
      we bound it by the slowest node draining its per-group allocation.
    """
    if n_tasks < 0:
        raise ValueError("n_tasks must be non-negative")
    T = schedule.period
    ntask = schedule.throughput
    if ntask <= 0:
        raise ValueError("schedule has zero throughput")
    if m is None:
        m = default_group_count(n_tasks, ntask)
    if m < 1:
        raise ValueError("m must be >= 1")

    used_edges = [(e, cnt) for e, cnt in schedule.messages.items() if cnt > 0]
    overhead = sum(
        (as_fraction(startups.get(e, 0)) for e, _ in used_edges),
        start=Fraction(0),
    )
    group_len = m * T + overhead
    per_group = m * T * ntask

    # A1 * m: serial shipment of one group's messages
    init = Fraction(0)
    for (i, j), cnt in used_edges:
        init += as_fraction(startups.get((i, j), 0))
        init += Fraction(cnt) * m * schedule.platform.c(i, j)
    # A2 * m: slowest drain of one group's compute allocation
    cleanup = Fraction(0)
    for node, cnt in schedule.compute.items():
        if cnt:
            spec = schedule.platform.node(node)
            cleanup = max(cleanup, Fraction(cnt) * m * spec.w)

    if per_group > 0:
        full_groups = int(Fraction(n_tasks) / per_group)
        remainder = Fraction(n_tasks) - per_group * full_groups
    else:  # pragma: no cover — guarded above
        full_groups, remainder = 0, Fraction(n_tasks)
    tail = remainder / ntask if remainder > 0 else Fraction(0)

    total = init + full_groups * group_len + tail + cleanup
    return StartupAnalysis(
        n_tasks=n_tasks,
        m=m,
        period=T,
        group_length=group_len,
        tasks_per_group=per_group,
        init_time=init,
        cleanup_time=cleanup,
        total_time=total,
        lower_bound=Fraction(n_tasks) / ntask,
    )


def asymptotic_ratio_bound(
    schedule: PeriodicSchedule,
    startups: Mapping[Edge, RationalLike],
    n_tasks: int,
) -> Fraction:
    """The closed-form bound of section 5.2:

    ``T(n)/Topt(n) <= 1 + sqrt(ntask/n) (A1 + A2 + C|E|/T) + O(1/n)``

    evaluated with this schedule's concrete constants (``A1``, ``A2`` per
    unit ``m``, total start-up overhead ``C|E|``).  Rational arithmetic
    except for the square root (returned as a float-backed Fraction).
    """
    T = schedule.period
    ntask = schedule.throughput
    used_edges = [(e, cnt) for e, cnt in schedule.messages.items() if cnt > 0]
    overhead = sum(
        (as_fraction(startups.get(e, 0)) for e, _ in used_edges),
        start=Fraction(0),
    )
    a1 = sum(
        (Fraction(cnt) * schedule.platform.c(i, j)
         for (i, j), cnt in used_edges),
        start=Fraction(0),
    )
    a2 = max(
        (Fraction(cnt) * schedule.platform.node(node).w
         for node, cnt in schedule.compute.items() if cnt),
        default=Fraction(0),
    )
    if n_tasks <= 0:
        return Fraction(1)
    # sqrt is irrational; this is the documented float-backed Fraction
    # approximation of the makespan *estimate* (section 4.2's
    # asymptotic bound), not a solver result
    sqrt_term = Fraction(
        math.sqrt(float(ntask) / float(n_tasks))  # repro-lint: allow(exactness)
    ).limit_denominator(10**9)
    return 1 + sqrt_term * (a1 + a2 + overhead / T)
