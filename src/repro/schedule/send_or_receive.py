"""Reconstruction under the send-OR-receive model (section 5.1.1).

The LP edit is easy; the hard part the paper highlights is orchestration:
extracting simultaneous communications now means edge colouring an
*arbitrary* conflict graph (NP-hard), so the polynomial greedy colouring
may need up to twice the port budget.  The reconstructed schedule therefore
stretches its period to the greedy colouring's length when that exceeds the
LP period, trading throughput for feasibility — and the measured stretch is
exactly the §5.1.1 price.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Tuple

from ..core.activities import SteadyStateSolution
from ..core.port_models import greedy_interval_coloring
from ..platform.graph import Edge, NodeId
from ..simulator.trace import Trace
from .periodic import CommSlice, PeriodicSchedule, ScheduleError


def reconstruct_send_or_receive_schedule(
    solution: SteadyStateSolution,
) -> Tuple[PeriodicSchedule, Fraction]:
    """Build a feasible send-or-receive schedule; returns it + the stretch.

    The stretch is ``period_used / T_LP`` in [1, 2]: 1 when the greedy
    colouring packs the communications within the LP period, up to 2 in the
    worst case (Shannon-type bound).  Message counts follow the LP, so the
    schedule's throughput is the LP optimum divided by the stretch.
    """
    if solution.problem != "master-slave" or solution.source is None:
        raise ScheduleError(
            "send-or-receive reconstruction implemented for master-slave"
        )
    T = Fraction(solution.period())
    busy = solution.edge_busy_time(int(T))
    slices_raw = greedy_interval_coloring(
        [(i, j, t) for (i, j), t in busy.items() if t > 0]
    )
    length = sum((d for _, d in slices_raw), start=Fraction(0))
    period = max(T, length)
    stretch = period / T

    slices: List[CommSlice] = []
    clock = Fraction(0)
    for batch, duration in slices_raw:
        slices.append(
            CommSlice(start=clock, duration=duration, transfers=dict(batch))
        )
        clock += duration

    compute = solution.tasks_per_period(int(T)) if solution.alpha else {}
    messages = solution.messages_per_period(int(T))
    throughput = solution.throughput * T / period

    schedule = PeriodicSchedule(
        platform=solution.platform,
        problem="master-slave",
        period=period,
        throughput=throughput,
        slices=slices,
        compute=compute,
        messages=messages,
        source=solution.source,
    )
    schedule.validate()
    schedule.check_message_counts()
    return schedule, stretch


def schedule_to_trace(schedule: PeriodicSchedule, periods: int = 1) -> Trace:
    """Expand a periodic schedule's slices into an activity trace.

    Lets the section 5.1 model validators certify the orchestration: the
    trace of a send-or-receive reconstruction passes
    ``validate("send-or-receive")``, which a one-port reconstruction's
    trace generally does not.
    """
    trace = Trace()
    for p in range(periods):
        offset = schedule.period * p
        for sl in schedule.slices:
            for i, j in sl.transfers.items():
                units = sl.duration / schedule.platform.c(i, j)
                trace.record(i, "send", offset + sl.start, offset + sl.end,
                             peer=j, units=units)
                trace.record(j, "recv", offset + sl.start, offset + sl.end,
                             peer=i, units=units)
    return trace
