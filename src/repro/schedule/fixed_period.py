"""Fixed-length periods — section 5.4.

The LP's natural period ``T`` (lcm of denominators) can be huge; practical
deployments prefer a caller-chosen period ``tau``.  Rounding the rational
activities *down* to integer message counts inside ``tau`` keeps the
schedule feasible at a small throughput cost that vanishes as ``tau``
grows — "it is possible to derive fixed-period schedules whose throughputs
tend to the optimum as the length of the period increases" [4].

Rounding is done on the **route decomposition**, not on raw edge counts:
flooring each route's per-period unit count preserves flow conservation by
construction (flooring edges independently would not).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from .._rational import RationalLike, as_fraction
from ..core.activities import SteadyStateSolution
from ..platform.graph import Edge, NodeId
from .edge_coloring import weighted_edge_coloring
from .flows import check_flow_conservation, decompose_flow
from .periodic import CommSlice, PeriodicSchedule, ScheduleError
from .reconstruction import RECV, SEND


def fixed_period_schedule(
    solution: SteadyStateSolution,
    tau: RationalLike,
) -> PeriodicSchedule:
    """Build a feasible master-slave schedule with period exactly ``tau``.

    Each route of the optimal flow ships ``floor(rate_r * tau)`` tasks per
    period; the master additionally computes ``floor(own_rate * tau)``
    tasks.  Throughput loss is at most ``(#routes + 1) / tau``.
    """
    if solution.problem != "master-slave" or solution.source is None:
        raise ScheduleError("fixed-period rounding implemented for master-slave")
    tau_f = as_fraction(tau)
    if tau_f <= 0:
        raise ScheduleError("tau must be positive")

    master = solution.source
    flow = {
        (i, j): solution.edge_rate(i, j)
        for (i, j) in solution.s
        if solution.s[(i, j)] > 0
    }
    demands = {
        n: solution.compute_rate(n)
        for n in solution.alpha
        if n != master and solution.compute_rate(n) > 0
    }
    check_flow_conservation(solution.platform, flow, master, demands)
    routes = decompose_flow(solution.platform, flow, master, demands)

    # floor the per-period units per route
    edge_units: Dict[Edge, int] = {}
    compute: Dict[NodeId, int] = {
        n: 0 for n in solution.platform.nodes()
        if solution.platform.node(n).can_compute
    }
    kept_routes: List[Tuple[Tuple[NodeId, ...], Fraction]] = []
    for path, rate in routes:
        units = int(rate * tau_f)  # floor for non-negative rationals
        if units <= 0:
            continue
        kept_routes.append((path, Fraction(units)))
        for a, b in zip(path, path[1:]):
            edge_units[(a, b)] = edge_units.get((a, b), 0) + units
        compute[path[-1]] = compute.get(path[-1], 0) + units

    master_rate = (
        solution.compute_rate(master)
        if solution.platform.node(master).can_compute
        else Fraction(0)
    )
    compute[master] = compute.get(master, 0) + int(master_rate * tau_f)

    bip_edges = [
        ((SEND, i), (RECV, j), Fraction(units) * solution.platform.c(i, j))
        for (i, j), units in edge_units.items()
    ]
    matchings = weighted_edge_coloring(bip_edges)
    slices: List[CommSlice] = []
    clock = Fraction(0)
    for m in matchings:
        transfers = {u[1]: v[1] for u, v in m.pairs.items()}
        slices.append(
            CommSlice(start=clock, duration=m.duration, transfers=transfers)
        )
        clock += m.duration
    if clock > tau_f:
        raise ScheduleError(
            f"rounded communications ({clock}) exceed tau ({tau_f})"
        )  # pragma: no cover — flooring guarantees feasibility

    throughput = Fraction(sum(compute.values())) / tau_f
    schedule = PeriodicSchedule(
        platform=solution.platform,
        problem="master-slave",
        period=tau_f,
        throughput=throughput,
        slices=slices,
        compute=compute,
        messages=dict(edge_units),
        routes={"task": kept_routes},
        source=master,
    )
    schedule.validate()
    schedule.check_message_counts()
    return schedule


def throughput_vs_period(
    solution: SteadyStateSolution,
    taus: Sequence[RationalLike],
) -> List[Tuple[Fraction, Fraction]]:
    """``(tau, achieved throughput)`` series for benchmark C7."""
    out = []
    for tau in taus:
        sched = fixed_period_schedule(solution, tau)
        out.append((as_fraction(tau), sched.throughput))
    return out


def rounding_loss_bound(
    solution: SteadyStateSolution, tau: RationalLike
) -> Fraction:
    """Upper bound on the throughput lost to flooring at period ``tau``.

    Each of the ``r`` routes plus the master's own compute loses strictly
    less than one task per period: loss < (r + 1) / tau.
    """
    master = solution.source
    flow = {
        (i, j): solution.edge_rate(i, j)
        for (i, j) in solution.s
        if solution.s[(i, j)] > 0
    }
    demands = {
        n: solution.compute_rate(n)
        for n in solution.alpha
        if n != master and solution.compute_rate(n) > 0
    }
    routes = decompose_flow(solution.platform, flow, master, demands)
    return Fraction(len(routes) + 1) / as_fraction(tau)
